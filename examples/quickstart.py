"""Quickstart: build an HFC service overlay and route one request.

Run:  python examples/quickstart.py [proxy_count] [seed]

Builds the full pipeline of the paper (transit-stub physical network,
landmark coordinate embedding, MST clustering, border selection), routes a
random composed-service request hierarchically, and compares the resulting
path against the mesh baseline and the true-delay optimum.
"""

import sys

from repro.core import HFCFramework
from repro.routing import validate_path


def main() -> None:
    proxy_count = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    print(f"Building an HFC overlay with {proxy_count} proxies (seed {seed})...")
    framework = HFCFramework.build(proxy_count=proxy_count, seed=seed)
    print(framework.describe())
    print()

    report = framework.embedding_report
    print(
        f"Distance map: {report.measurement_count} measurements for "
        f"{proxy_count} proxies (a direct map would need "
        f"~{proxy_count * (proxy_count - 1) // 2 * framework.config.probes})"
    )
    sizes = framework.clustering.sizes()
    print(f"Clusters: {sizes} (borders: {len(framework.hfc.all_border_nodes())})")
    print()

    request = framework.random_request(seed=seed + 1)
    print(f"Request: {request}")
    print()

    overlay = framework.overlay
    routers = {
        "hierarchical (HFC w/ aggregation)": framework.hierarchical_router(),
        "mesh baseline": framework.mesh_router(seed=seed + 2),
        "HFC w/o aggregation (full state)": framework.full_state_router(),
        "oracle (true-delay optimal)": framework.oracle_router(),
    }
    for name, router in routers.items():
        path = router.route(request)
        validate_path(path, request, overlay)
        print(f"{name}:")
        print(f"  path       : {path}")
        print(f"  true delay : {path.true_delay(overlay):.1f} ms "
              f"({path.overlay_hop_count} overlay hops, "
              f"{path.relay_count()} relays)")
        print()

    hier = framework.hierarchical_router()
    result = hier.route_detailed(request)
    print("Divide-and-conquer trace of the hierarchical route:")
    print(f"  cluster-level path (CSP): {result.csp.cluster_sequence()} "
          f"(estimated bound {result.csp.estimated_cost:.1f})")
    for child in result.child_requests:
        print(
            f"  child in cluster {child.cluster}: "
            f"{child.source_proxy} -{list(child.services)}-> "
            f"{child.destination_proxy}"
        )

    overhead = framework.coordinates_overhead()
    print()
    print(
        f"State kept per proxy (coordinates): flat={overhead['flat']:.0f}, "
        f"hierarchical={overhead['hierarchical']:.1f}"
    )


if __name__ == "__main__":
    main()
