"""Walkthrough of the Section-4 state protocol and Section-5 signaling.

Shows, on one built overlay:

1. what a proxy learns from the elected proxy P (paper Figure 4);
2. the state-distribution protocol converging (message counts, timing);
3. a mid-run service installation propagating (re-convergence);
4. the divide-and-conquer control exchange resolving a request (setup
   latency and messages).

Run:  python examples/protocol_walkthrough.py [seed]
"""

import sys

from repro.core import HFCFramework
from repro.routing import HierarchicalRouter
from repro.routing.signaling import SignalingSimulator
from repro.state import StateDistributionProtocol


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 37
    framework = HFCFramework.build(proxy_count=60, seed=seed)
    print(framework.describe())
    print()

    # 1. what one proxy learns from P (paper Figure 4)
    proxy = framework.overlay.proxies[0]
    hfc = framework.hfc
    cid = hfc.cluster_of(proxy)
    others = [p for p in hfc.members(cid) if p != proxy]
    print(f"Information proxy {proxy} learned from P:")
    print(f"  my cluster ID: C{cid}")
    print(f"  other intra-cluster members: {others}")
    print(f"  cluster pairs and border nodes (first 5):")
    shown = 0
    for (i, j), border in sorted(hfc.borders.items()):
        if i < j:
            print(f"    (C{i}, C{j}) -> ({border}, {hfc.borders[(j, i)]})")
            shown += 1
            if shown >= 5:
                break
    print(f"  coordinates of {len(hfc.members(cid))} members and "
          f"{len(hfc.all_border_nodes())} border proxies")
    print()

    # 2. the protocol converging
    protocol = StateDistributionProtocol(framework.hfc, seed=seed + 1)
    report = protocol.run(max_time=30000.0)
    print("State-distribution protocol:")
    print(f"  converged at t={report.converged_at}")
    for kind, count in sorted(report.messages_by_kind.items()):
        print(f"  {kind:<18} {count} messages")
    print(f"  total payload size: {report.total_size} service names")
    print()

    # 3. a new service appears mid-run
    victim = framework.overlay.proxies[0]
    old = framework.overlay.placement[victim]
    protocol.update_local_services(victim, old | {"brand-new-service"})
    second = protocol.run(max_time=protocol.sim.now + 30000.0)
    print(f"Installed 'brand-new-service' on proxy {victim}; "
          f"re-converged at t={second.converged_at}")
    framework.overlay.placement[victim] = old  # restore
    print()

    # 4. the signaled divide-and-conquer exchange
    router = HierarchicalRouter(framework.hfc)
    signaling = SignalingSimulator(router)
    request = framework.random_request(seed=seed + 2)
    result = signaling.resolve(request)
    print(f"Request {request}")
    print(f"  resolved via {result.remote_children} remote child requests "
          f"({result.control_messages} control messages)")
    print(f"  setup latency: {result.setup_latency:.1f} ms")
    print(f"  final path: {result.path}")
    print(f"  data-path delay: {result.path.true_delay(framework.overlay):.1f} ms")


if __name__ == "__main__":
    main()
