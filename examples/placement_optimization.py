"""Operator-side placement optimisation: where should services live?

The paper assumes services are statically installed wherever the operator
put them; this example shows what a demand-aware installation buys. It
builds an overlay with the usual uniform-random placement, measures a Zipf
workload hierarchically, then recomputes the placement with the greedy
k-median optimiser at the *same replica budget* and measures again.

Run:  python examples/placement_optimization.py [seed]
"""

import random
import sys

from repro.core import HFCFramework
from repro.overlay import OverlayNetwork, build_hfc
from repro.placement import optimize_placement
from repro.routing import HierarchicalRouter
from repro.services import ServiceRequest, linear_graph
from repro.util.errors import NoFeasiblePathError


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 47
    framework = HFCFramework.build(proxy_count=80, seed=seed)
    print(framework.describe())
    print()

    names = list(framework.catalog.names)
    weights = [1.0 / (i + 1) for i in range(len(names))]
    rng = random.Random(seed + 1)
    requests = []
    for _ in range(100):
        src, dst = rng.sample(framework.overlay.proxies, 2)
        services = rng.choices(names, weights=weights, k=rng.randint(4, 8))
        requests.append(ServiceRequest(src, linear_graph(services), dst))

    def measure(placement, label):
        overlay = OverlayNetwork(
            physical=framework.physical,
            proxies=framework.overlay.proxies,
            placement=placement,
            space=framework.space,
        )
        router = HierarchicalRouter(build_hfc(overlay, framework.clustering))
        total, count = 0.0, 0
        for request in requests:
            try:
                total += router.route(request).true_delay(overlay)
            except NoFeasiblePathError:
                continue
            count += 1
        mean = total / count
        print(f"  {label:<34} {mean:7.1f} ms ({count} routed)")
        return mean

    budget = sum(len(s) for s in framework.overlay.placement.values())
    print(f"replica budget: {budget} installations across "
          f"{framework.overlay.size} proxies")
    print("mean delay of a Zipf workload (most-popular services dominate):")
    base = measure(framework.overlay.placement, "uniform random (the paper's)")

    plan = optimize_placement(
        framework.overlay, framework.catalog, popularity="zipf",
        seed=seed + 2,
    )
    top = sorted(plan.replicas.items(), key=lambda kv: -kv[1])[:3]
    print(f"  (optimiser gives the top services {[c for _, c in top]} replicas)")
    optimized = measure(plan.placement, "demand-aware greedy k-median")
    print()
    print(f"saving from placement alone: {1 - optimized / base:.1%}")


if __name__ == "__main__":
    main()
