"""The paper's first motivating scenario: MPEG stream customisation.

An MPEG video stream travels from a media server's proxy to a client's
proxy and must undergo (Section 2.1):

    1. watermarking for copyright protection,
    2. MPEG -> H.261 transcoding to reduce bandwidth,
    3. background-music mixing (user request),
    4. a second compression pass.

Services are statically installed on proxies (no active services), so the
middleware must find which proxies to chain — this example shows the
hierarchical router doing exactly that, end to end.

Run:  python examples/multimedia_pipeline.py [seed]
"""

import sys

from repro.core import FrameworkConfig, HFCFramework
from repro.routing import validate_path
from repro.services import ServiceRequest, linear_graph, multimedia_catalog


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 11

    catalog = multimedia_catalog()
    config = FrameworkConfig(
        # the multimedia catalog is small, so install 2-4 services per proxy
        min_services_per_proxy=2,
        max_services_per_proxy=4,
    )
    framework = HFCFramework.build(
        proxy_count=80, config=config, catalog=catalog, seed=seed
    )
    print(framework.describe())
    print()
    print("Service catalog (media customisation services):")
    for name in catalog:
        print(f"  {name:<14} {catalog.describe(name)}")
    print()

    overlay = framework.overlay
    rng_proxies = overlay.proxies
    server_proxy, client_proxy = rng_proxies[0], rng_proxies[-1]

    pipeline = ["watermark", "mpeg_to_h261", "mix_audio", "compress"]
    request = ServiceRequest(server_proxy, linear_graph(pipeline), client_proxy)
    print(f"Media server proxy : {server_proxy}")
    print(f"Client proxy       : {client_proxy}")
    print(f"Pipeline           : {' -> '.join(pipeline)}")
    print()

    router = framework.hierarchical_router()
    result = router.route_detailed(request)
    validate_path(result.path, request, overlay)

    print("Cluster-level service path (the 'divide'):")
    assigned = {slot: cluster for slot, cluster in result.csp.assignment}
    for slot in request.service_graph.topological_order():
        print(f"  {request.service_graph.service_of(slot):<14} -> cluster "
              f"{assigned[slot]}")
    print()

    print("Concrete service path (the 'conquer'):")
    for hop in result.path.hops:
        role = hop.service if hop.service else "relay"
        print(f"  proxy {hop.proxy:<6} {role}")
    print()
    print(f"End-to-end true delay: {result.path.true_delay(overlay):.1f} ms")

    mesh_path = framework.mesh_router(seed=seed + 1).route(request)
    oracle_path = framework.oracle_router().route(request)
    print(f"Mesh baseline        : {mesh_path.true_delay(overlay):.1f} ms "
          f"({mesh_path.relay_count()} relays)")
    print(f"True-delay optimum   : {oracle_path.true_delay(overlay):.1f} ms")


if __name__ == "__main__":
    main()
