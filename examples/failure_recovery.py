"""Failure recovery: a streaming session survives a proxy crash.

Routes a composed-service request, streams a packet train along the path,
kills a mid-path service proxy part-way through, and shows the watchdog
detecting the loss, the overlay re-routing around the failed proxy (it is
treated as having left — its cluster shrinks, borders re-select), and the
stream resuming on the new path.

Run:  python examples/failure_recovery.py [seed]
"""

import sys

from repro.core import HFCFramework
from repro.dataplane import StreamingSession, make_rerouter, path_nominal_latency
from repro.routing import HierarchicalRouter


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 43
    framework = HFCFramework.build(proxy_count=80, seed=seed)
    print(framework.describe())
    print()

    router = HierarchicalRouter(framework.hfc)
    request = None
    path = None
    victim = None
    for attempt in range(50):
        candidate = framework.random_request(seed=seed + attempt)
        candidate_path = router.route(candidate)
        victims = [
            h.proxy
            for h in candidate_path.service_hops()
            if h.proxy
            not in (candidate.source_proxy, candidate.destination_proxy)
        ]
        if victims:
            request, path, victim = candidate, candidate_path, victims[0]
            break
    assert request is not None and path is not None and victim is not None

    print(f"request : {request}")
    print(f"path    : {path}")
    nominal = path_nominal_latency(path, framework.overlay, 1.0)
    print(f"nominal end-to-end latency: {nominal:.1f} ms")
    print(f"proxy {victim} will fail silently at t=60 ms")
    print()

    session = StreamingSession(
        framework.overlay,
        path,
        packet_count=max(60, int(nominal)),
        packet_interval=10.0,
    )
    report = session.run(
        failures={victim: 60.0},
        rerouter=make_rerouter(framework, request),
    )

    print(f"packets sent       : {len(report.records)}")
    print(f"packets delivered  : {report.delivered}")
    print(f"packets lost       : {report.lost} (in flight during the outage)")
    print(f"loss detected at   : t={report.recovery_started_at:.1f} ms")
    if report.recovered_at is not None:
        print(f"first packet on the new path delivered at t={report.recovered_at:.1f} ms")
        print(f"recovery took {report.recovered_at - 60.0:.1f} ms after the crash")
    print()
    print(f"new path (proxy {victim} routed around): {report.final_path}")
    assert victim not in set(report.final_path.proxies())


if __name__ == "__main__":
    main()
