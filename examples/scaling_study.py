"""Scaling study: regenerate Fig 9 and Fig 10 at a configurable scale.

Run:  python examples/scaling_study.py [scale]

``scale`` defaults to 0.2 (a fifth of the paper's Table 1 sizes); pass 1.0
for the full 250/500/750/1000-proxy sweep (slow in pure Python).
"""

import sys

from repro.experiments import (
    run_overhead_experiment,
    run_path_efficiency,
    scaled_table1,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    specs = scaled_table1(scale)
    sizes = [s.proxies for s in specs]
    print(f"Environments (scale {scale}): proxies {sizes}")
    print()

    print("Regenerating Fig 9 (state-maintenance overhead)...")
    overhead = run_overhead_experiment(specs, topologies_per_size=3, seed=1)
    print(overhead.render())
    print()

    print("Regenerating Fig 10 (service-path efficiency)...")
    efficiency = run_path_efficiency(
        specs,
        strategies=("mesh", "hfc_agg", "hfc_full"),
        topologies_per_size=2,
        requests_per_topology=150,
        seed=2,
    )
    print(efficiency.render())
    print()

    last = efficiency.points[-1]
    mesh, agg, full = (
        last.mean_delay["mesh"],
        last.mean_delay["hfc_agg"],
        last.mean_delay["hfc_full"],
    )
    print(f"At n={last.proxies}: mesh={mesh:.1f}, HFC w/ agg={agg:.1f}, "
          f"HFC w/o agg={full:.1f}")
    print(f"  HFC w/ aggregation vs mesh      : {(mesh - agg) / mesh:+.1%}")
    print(f"  price of aggregation (agg-full) : {(agg - full) / full:+.1%}")


if __name__ == "__main__":
    main()
