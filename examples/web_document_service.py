"""The paper's second motivating scenario: web-document customisation,
with a NON-LINEAR service graph (Figure 2(b) style).

A web document must reach the client formatted; on the way it is either

    translate -> merge -> format      (full treatment), or
    summarize -> format               (the short route),

and the router picks whichever *feasible configuration* maps onto a
shorter proxy path — the non-linear-SG capability of the [11] substrate
that the hierarchical framework inherits.

Run:  python examples/web_document_service.py [seed]
"""

import sys

from repro.core import FrameworkConfig, HFCFramework
from repro.routing import validate_path
from repro.services import ServiceGraph, ServiceRequest, web_catalog


def build_service_graph() -> ServiceGraph:
    """translate->merge->format | summarize->format as one SG."""
    return ServiceGraph(
        services={0: "translate", 1: "merge", 2: "summarize", 3: "format"},
        edges={(0, 1), (1, 3), (2, 3)},
    )


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 23

    catalog = web_catalog()
    config = FrameworkConfig(min_services_per_proxy=2, max_services_per_proxy=3)
    framework = HFCFramework.build(
        proxy_count=70, config=config, catalog=catalog, seed=seed
    )
    print(framework.describe())
    print()

    sg = build_service_graph()
    configs = sg.configurations()
    print("Feasible configurations of the request's service graph:")
    for config_slots in configs:
        print("  " + " -> ".join(sg.service_of(s) for s in config_slots))
    print()

    overlay = framework.overlay
    source, destination = overlay.proxies[2], overlay.proxies[-3]
    request = ServiceRequest(source, sg, destination)

    router = framework.hierarchical_router()
    path = router.route(request)
    validate_path(path, request, overlay)

    chosen = [hop.service for hop in path.service_hops()]
    print(f"Chosen configuration : {' -> '.join(chosen)}")
    print(f"Concrete path        : {path}")
    print(f"True delay           : {path.true_delay(overlay):.1f} ms")
    print()

    # Show why: price the best mapping of each configuration separately by
    # restricting the SG to that chain.
    from repro.services import linear_graph

    print("Per-configuration best paths (hierarchical). The router compares")
    print("configurations on its *estimated* lengths; true delays shown too:")
    for config_slots in configs:
        names = [sg.service_of(s) for s in config_slots]
        sub_request = ServiceRequest(source, linear_graph(names), destination)
        sub_path = router.route(sub_request)
        marker = " <= chosen" if names == chosen else ""
        print(
            f"  {' -> '.join(names):<36} "
            f"est {sub_path.estimated_length(overlay):8.1f}   "
            f"true {sub_path.true_delay(overlay):8.1f} ms{marker}"
        )


if __name__ == "__main__":
    main()
