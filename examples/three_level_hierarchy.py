"""A third hierarchy level: scaling the HFC design past bi-level.

Groups the paper's level-1 clusters into super-clusters, prints the state
footprint of flat / bi-level / three-level organisation side by side, and
routes the same requests through the bi-level and three-level routers to
show the path-quality price of the extra aggregation.

Run:  python examples/three_level_hierarchy.py [proxy_count] [seed]
"""

import sys

import numpy as np

from repro.core import HFCFramework
from repro.hierarchy import ThreeLevelRouter, build_multilevel
from repro.routing import HierarchicalRouter, validate_path
from repro.state import coordinates_node_states, service_node_states


def main() -> None:
    proxy_count = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    framework = HFCFramework.build(proxy_count=proxy_count, seed=seed)
    print(framework.describe())

    multilevel = build_multilevel(framework.hfc)
    sizes = {
        sid: len(members) for sid, members in multilevel.cluster_members.items()
    }
    print(f"super-clusters: {multilevel.super_count} "
          f"(clusters per super: {sorted(sizes.values())})")
    print(f"super-border proxies: {len(multilevel.all_super_borders())}")
    print()

    flat = framework.overlay.size
    coord2 = np.mean(list(coordinates_node_states(framework.hfc).values()))
    coord3 = np.mean(list(multilevel.coordinates_node_states().values()))
    svc2 = np.mean(list(service_node_states(framework.hfc).values()))
    svc3 = np.mean(list(multilevel.service_node_states().values()))
    print("per-proxy state (node-states):")
    print(f"  {'organisation':<14} {'coordinates':>12} {'service':>10}")
    print(f"  {'flat':<14} {flat:>12.1f} {flat:>10.1f}")
    print(f"  {'bi-level':<14} {coord2:>12.1f} {svc2:>10.1f}")
    print(f"  {'three-level':<14} {coord3:>12.1f} {svc3:>10.1f}")
    print()

    two = HierarchicalRouter(framework.hfc)
    three = ThreeLevelRouter(multilevel)
    d2, d3 = [], []
    for s in range(40):
        request = framework.random_request(seed=seed + 100 + s)
        p2 = two.route(request)
        p3 = three.route(request)
        validate_path(p3, request, framework.overlay)
        d2.append(p2.true_delay(framework.overlay))
        d3.append(p3.true_delay(framework.overlay))
    print(f"mean true path delay over 40 requests:")
    print(f"  bi-level    : {np.mean(d2):7.1f} ms")
    print(f"  three-level : {np.mean(d3):7.1f} ms "
          f"({(np.mean(d3) / np.mean(d2) - 1):+.1%})")
    print()
    print("the third level trades path quality for another round of state")
    print("aggregation — worthwhile only past the paper's Table 1 scales.")


if __name__ == "__main__":
    main()
