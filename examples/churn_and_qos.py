"""The paper's two future-work extensions, running together.

Part 1 — dynamic membership (Section 7): proxies join (deriving coordinates
from the landmarks, joining their nearest neighbour's cluster) and leave;
clustering quality is tracked and the overlay restructures when it decays.

Part 2 — QoS (Section 7): bandwidth capacities on physical links, and
hierarchical routing under a minimum-bandwidth requirement.

Run:  python examples/churn_and_qos.py [seed]
"""

import sys

from repro.core import HFCFramework
from repro.membership import DynamicOverlay
from repro.qos import BandwidthModel, QoSHierarchicalRouter
from repro.routing import HierarchicalRouter
from repro.util.errors import NoFeasiblePathError


def churn_demo(framework: HFCFramework, seed: int) -> None:
    import random

    print("=== Part 1: dynamic membership ===")
    dyn = DynamicOverlay(framework, restructure_tolerance=0.7)
    print(f"start: {dyn.size} proxies, {dyn.clustering.cluster_count} clusters, "
          f"quality {dyn.quality():.2f}")

    rng = random.Random(seed)
    free = [
        s for s in framework.physical.topology.stub_nodes
        if s not in set(dyn.proxies)
    ]
    rng.shuffle(free)
    catalog = list(framework.catalog.names)

    for step in range(12):
        if rng.random() < 0.5 and free:
            router_id = free.pop()
            services = frozenset(rng.sample(catalog, 4))
            dyn.join(router_id, services)
            action = f"join  proxy {router_id}"
        else:
            victim = rng.choice(dyn.proxies)
            dyn.leave(victim)
            action = f"leave proxy {victim}"
        event = dyn.history[-1]
        print(f"  step {step:2d}: {action:<22} -> {dyn.clustering.cluster_count} "
              f"clusters, quality {event.quality_after:.2f}")

    restructures = sum(1 for e in dyn.history if e.kind == "restructure")
    print(f"end: {dyn.size} proxies, quality {dyn.quality():.2f} "
          f"(fresh re-clustering would give {dyn.fresh_quality():.2f}); "
          f"{restructures} automatic restructurings")
    print()


def qos_demo(framework: HFCFramework, seed: int) -> None:
    print("=== Part 2: bandwidth-aware routing ===")
    model = BandwidthModel(framework.physical, seed=seed)
    request = framework.random_request(seed=seed + 1)
    print(f"request: {request}")

    best_effort = HierarchicalRouter(framework.hfc).route(request)
    print(f"  best-effort : delay {best_effort.true_delay(framework.overlay):7.1f} ms, "
          f"bottleneck {model.path_bandwidth(best_effort.proxies()):6.1f} Mbps")

    for floor in (10.0, 25.0, 50.0, 100.0):
        router = QoSHierarchicalRouter(framework.hfc, model, floor)
        try:
            path = router.route(request)
        except NoFeasiblePathError:
            print(f"  bw >= {floor:5.1f} : infeasible")
            continue
        print(f"  bw >= {floor:5.1f} : delay {path.true_delay(framework.overlay):7.1f} ms, "
              f"bottleneck {model.path_bandwidth(path.proxies()):6.1f} Mbps")


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 17
    framework = HFCFramework.build(proxy_count=80, seed=seed)
    print(framework.describe())
    print()
    churn_demo(framework, seed)
    qos_demo(framework, seed)


if __name__ == "__main__":
    main()
