"""Service multicast: one customised stream, many clients.

The authors' companion work ([3], [6] in the paper) streams one composed
service chain to a whole client group: the chain runs once, then the
processed stream is replicated along a distribution tree. This example
builds such a tree on the HFC overlay and compares its total delivery cost
against per-client unicast service paths.

Run:  python examples/service_multicast.py [group_size] [seed]
"""

import random
import sys

from repro.core import HFCFramework
from repro.multicast import (
    MulticastRequest,
    build_service_tree,
    unicast_baseline_cost,
)
from repro.routing import HierarchicalRouter


def main() -> None:
    group_size = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 29

    framework = HFCFramework.build(proxy_count=90, seed=seed)
    print(framework.describe())
    print()

    rng = random.Random(seed + 1)
    picked = rng.sample(framework.overlay.proxies, group_size + 1)
    services = [rng.choice(list(framework.catalog.names)) for _ in range(5)]
    from repro.services import linear_graph

    request = MulticastRequest(
        source_proxy=picked[0],
        service_graph=linear_graph(services),
        destinations=tuple(picked[1:]),
    )
    print(f"source      : {request.source_proxy}")
    print(f"services    : {' -> '.join(services)}")
    print(f"destinations: {list(request.destinations)}")
    print()

    router = HierarchicalRouter(framework.hfc)
    tree = build_service_tree(router, request)
    overlay = framework.overlay

    print(f"shared service chain: {tree.chain}")
    print(f"chain tail (replication point): proxy {tree.tail}")
    print()
    print("per-destination delivery:")
    for destination in request.destinations:
        latency = tree.destination_latency(overlay, destination)
        branch = tree.branch_of[destination]
        print(f"  proxy {destination:<6} latency {latency:7.1f} ms "
              f"(branch of {len(branch) - 1} hops)")
    print()

    tree_cost = tree.total_cost(overlay)
    unicast_cost = unicast_baseline_cost(router, request, overlay)
    print(f"tree total cost    : {tree_cost:8.1f} ms of links+chain, paid once")
    print(f"unicast total cost : {unicast_cost:8.1f} ms across {group_size} paths")
    print(f"saving             : {1 - tree_cost / unicast_cost:7.1%}")


if __name__ == "__main__":
    main()
