"""Protocol-cost bench — the Section 4 state-distribution protocol.

Not a figure in the paper, but the natural cost companion to Fig 9: how
many messages (and service-name units) the hierarchical protocol needs to
reach a converged partial-global state, per overlay size.
"""

from repro.experiments import ascii_table, build_environment, scaled_table1
from repro.state import StateDistributionProtocol


def test_protocol_convergence_cost(benchmark, emit):
    specs = scaled_table1()[:2]  # the two smaller sizes keep this bench quick

    def run():
        rows = []
        for i, spec in enumerate(specs):
            env = build_environment(spec, seed=300 + i)
            protocol = StateDistributionProtocol(env.framework.hfc, seed=301 + i)
            report = protocol.run(max_time=30000.0)
            rows.append(
                [
                    spec.proxies,
                    env.framework.clustering.cluster_count,
                    report.converged_at if report.converged_at is not None else -1,
                    report.messages_by_kind.get("local_state", 0),
                    report.messages_by_kind.get("aggregate_state", 0),
                    report.messages_by_kind.get("aggregate_forward", 0),
                    report.total_size,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "protocol",
        "Section 4 protocol — cost to converged partial-global state\n"
        + ascii_table(
            ["proxies", "clusters", "converged@",
             "local msgs", "aggregate msgs", "forward msgs", "total size"],
            rows,
        ),
    )
    assert all(r[2] >= 0 for r in rows)  # every run converged
