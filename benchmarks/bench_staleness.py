"""Extension bench E6 — routing under stale aggregate state.

Sweeps the size of a placement-change burst and reports routing outcomes
against the stale SCT_C versus after re-convergence.
"""

from repro.experiments.report import ascii_table
from repro.experiments.staleness import run_staleness_experiment


def test_staleness_burst_sweep(benchmark, emit):
    bursts = (5, 20, 40)

    def run():
        rows = []
        for burst in bursts:
            outcome = run_staleness_experiment(
                change_count=burst, request_count=60, seed=1000 + burst
            )
            by = {r.state: r for r in outcome}
            rows.append(
                [
                    burst,
                    by["stale tables"].infeasible,
                    by["stale tables"].mean_delay,
                    by["re-converged"].infeasible,
                    by["re-converged"].mean_delay,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "staleness",
        "E6 — routing vs SCT_C staleness (placement-change burst size)\n"
        + ascii_table(
            ["burst", "stale infeasible", "stale delay",
             "fresh infeasible", "fresh delay"],
            rows,
        ),
    )
    # fresh tables never fail (capability preserved by construction)
    assert all(r[3] == 0 for r in rows)
