"""Extension bench E8 — demand-aware service placement.

Routes the same Zipf workload hierarchically over three placements at equal
replica budget: the original uniform-random installation, a demand-aware
greedy k-median placement, and a demand-aware placement optimised for a
mismatched (uniform) demand model. What placement alone buys routing.
"""

import random

from repro.core import HFCFramework
from repro.experiments import ascii_table, scaled_table1
from repro.overlay import OverlayNetwork, build_hfc
from repro.placement import optimize_placement
from repro.routing import HierarchicalRouter
from repro.services import ServiceRequest, linear_graph
from repro.util.errors import NoFeasiblePathError


def test_placement_optimisation_value(benchmark, emit):
    spec = scaled_table1()[0]

    def run():
        framework = HFCFramework.build(proxy_count=spec.proxies, seed=1201)
        names = list(framework.catalog.names)
        weights = [1.0 / (i + 1) for i in range(len(names))]
        rng = random.Random(1202)
        requests = []
        for _ in range(80):
            src, dst = rng.sample(framework.overlay.proxies, 2)
            services = rng.choices(names, weights=weights, k=rng.randint(4, 8))
            requests.append(ServiceRequest(src, linear_graph(services), dst))

        def routed_mean(placement):
            overlay = OverlayNetwork(
                physical=framework.physical,
                proxies=framework.overlay.proxies,
                placement=placement,
                space=framework.space,
            )
            hfc = build_hfc(overlay, framework.clustering)
            router = HierarchicalRouter(hfc)
            total, count = 0.0, 0
            for request in requests:
                try:
                    total += router.route(request).true_delay(overlay)
                except NoFeasiblePathError:
                    continue
                count += 1
            return total / count if count else float("nan"), count

        rows = []
        original, n0 = routed_mean(framework.overlay.placement)
        rows.append(["original (uniform random)", original, n0])
        zipf_plan = optimize_placement(
            framework.overlay, framework.catalog, popularity="zipf", seed=1203
        )
        zipf_mean, n1 = routed_mean(zipf_plan.placement)
        rows.append(["demand-aware (matching zipf)", zipf_mean, n1])
        uniform_plan = optimize_placement(
            framework.overlay, framework.catalog, popularity="uniform", seed=1204
        )
        uniform_mean, n2 = routed_mean(uniform_plan.placement)
        rows.append(["demand-oblivious k-median", uniform_mean, n2])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "placement",
        "E8 — placement optimisation under a Zipf workload (equal budget)\n"
        + ascii_table(["placement", "mean delay", "routed"], rows),
    )
    assert rows[1][1] < rows[0][1]  # demand-aware beats random
