"""Micro-benchmarks of the core primitives.

These use pytest-benchmark's statistical timing (multiple rounds) since the
functions are cheap: Dijkstra on the physical substrate, the vectorised
Euclidean MST, the landmark embedding step, and one service-DAG solve.
They guard against performance regressions in the inner loops that the
figure-level benches amplify by thousands of calls.
"""

import numpy as np
import pytest

from repro.coords import embed_landmarks, locate_host
from repro.core import FrameworkConfig, HFCFramework
from repro.graph import euclidean_mst
from repro.graph.shortest_paths import dijkstra
from repro.netsim import PhysicalNetwork, transit_stub
from repro.routing import solve_vectorised
from repro.routing.providers import CoordinateProvider


@pytest.fixture(scope="module")
def physical():
    return PhysicalNetwork(transit_stub(300, seed=61), noise=0.1, seed=62)


@pytest.fixture(scope="module")
def framework():
    return HFCFramework.build(
        proxy_count=60, config=FrameworkConfig(physical_nodes=200), seed=63
    )


def test_bench_dijkstra_300_nodes(benchmark, physical):
    source = physical.graph.nodes()[0]
    dist, _ = benchmark(dijkstra, physical.graph, source)
    assert len(dist) == 300


def test_bench_euclidean_mst_500_points(benchmark):
    rng = np.random.default_rng(7)
    points = rng.uniform(0, 1000, size=(500, 2))
    edges = benchmark(euclidean_mst, points)
    assert len(edges) == 499


def test_bench_embed_landmarks(benchmark, physical):
    landmarks = physical.graph.nodes()[:10]
    measured = np.array(
        [[physical.delay(a, b) for b in landmarks] for a in landmarks]
    )
    coords = benchmark(embed_landmarks, measured, 2, seed=1)
    assert coords.shape == (10, 2)


def test_bench_locate_host(benchmark, physical):
    landmarks = physical.graph.nodes()[:10]
    host = physical.graph.nodes()[50]
    landmark_coords = np.random.default_rng(3).uniform(0, 100, size=(10, 2))
    measured = [physical.delay(host, lm) for lm in landmarks]
    result = benchmark(locate_host, landmark_coords, measured)
    assert result.shape == (2,)


def test_bench_service_dag_solve(benchmark, framework):
    request = framework.random_request(min_length=8, max_length=8, seed=5)
    provider = CoordinateProvider(framework.space)
    candidates = {
        slot: framework.overlay.providers_of(
            request.service_graph.service_of(slot)
        )
        for slot in request.service_graph.slots()
    }
    solution = benchmark(
        solve_vectorised,
        request.service_graph,
        candidates,
        request.source_proxy,
        request.destination_proxy,
        provider.block,
    )
    assert solution.cost > 0


def test_bench_hierarchical_route(benchmark, framework):
    router = framework.hierarchical_router()
    request = framework.random_request(seed=9)
    path = benchmark(router.route, request)
    assert path.source == request.source_proxy
