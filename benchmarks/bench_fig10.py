"""Fig 10 — average service-path length: Mesh vs HFC w/ and w/o aggregation.

Paper shape: HFC with state aggregation is comparable to (slightly better
than) the single-level mesh despite its aggregation imprecision; HFC without
aggregation (full state) is the best of the three. An oracle series (true
delay optimal routing) is added as the unreachable lower bound.
"""

from repro.experiments import run_path_efficiency, series_block

from conftest import fig10_topologies, requests_per_topology


def test_fig10_path_efficiency(benchmark, emit):
    def run():
        return run_path_efficiency(
            strategies=("mesh", "hfc_agg", "hfc_full", "oracle"),
            topologies_per_size=fig10_topologies(),
            requests_per_topology=requests_per_topology(),
            seed=100,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    xs = [p.proxies for p in result.points]
    emit(
        "fig10",
        series_block(
            "Fig 10 — avg. service path length in true-delay units "
            f"({fig10_topologies()} topologies x "
            f"{requests_per_topology()} requests per size)",
            {
                name: [p.mean_delay[name] for p in result.points]
                for name in ("mesh", "hfc_agg", "hfc_full", "oracle")
            },
            xs,
        ),
    )
    for point in result.points:
        # no failed requests, and the oracle bound holds
        assert all(v == 0 for v in point.failures.values())
        assert point.mean_delay["oracle"] <= point.mean_delay["hfc_full"]
