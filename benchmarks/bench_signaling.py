"""Setup-latency bench — the control-plane price of divide-and-conquer.

Single-node routing (flat, mesh, HFC-full-state) computes paths locally;
the hierarchical scheme distributes child requests and waits for replies.
This bench measures that setup latency and message count across overlay
sizes — the latency the framework trades for Fig 9's state savings.
"""

import numpy as np

from repro.experiments import (
    WorkloadConfig,
    ascii_table,
    build_environment,
    generate_requests,
    scaled_table1,
)
from repro.routing import HierarchicalRouter
from repro.routing.signaling import SignalingSimulator

from conftest import requests_per_topology


def test_signaling_setup_latency(benchmark, emit):
    specs = scaled_table1()[:3]
    count = max(30, requests_per_topology() // 4)

    def run():
        rows = []
        for i, spec in enumerate(specs):
            env = build_environment(spec, seed=801 + i)
            router = HierarchicalRouter(env.framework.hfc)
            signaling = SignalingSimulator(router)
            requests = generate_requests(
                env, WorkloadConfig(request_count=count), seed=802 + i
            )
            latencies, messages, path_delays = [], [], []
            for request in requests:
                report = signaling.resolve(request)
                latencies.append(report.setup_latency)
                messages.append(report.control_messages)
                path_delays.append(report.path.true_delay(env.framework.overlay))
            rows.append(
                [
                    spec.proxies,
                    float(np.mean(latencies)),
                    float(np.max(latencies)),
                    float(np.mean(messages)),
                    float(np.mean(path_delays)),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "signaling",
        "Setup latency of hierarchical route resolution\n"
        + ascii_table(
            ["proxies", "mean setup (ms)", "max setup (ms)",
             "mean ctrl msgs", "mean path delay (ms)"],
            rows,
        ),
    )
    # setup is one round trip to the slowest child: same order as a path delay
    for row in rows:
        assert row[1] < row[4] * 3
