"""Extension bench E7 — per-request stretch distributions vs the oracle."""

from repro.experiments.stretch import render_stretch, run_stretch_analysis

from conftest import requests_per_topology


def test_stretch_distribution(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: run_stretch_analysis(
            request_count=max(100, requests_per_topology()), seed=1100
        ),
        rounds=1, iterations=1,
    )
    emit("stretch", "E7 — per-request stretch vs true-delay optimum\n"
         + render_stretch(rows))
    by = {r.strategy: r for r in rows}
    # every strategy's stretch is >= 1 by definition of the oracle
    assert all(r.median >= 1.0 for r in rows)
    # HFC keeps a better median than the mesh (the Fig 10 story, per request)
    assert by["hfc_agg"].median <= by["mesh"].median * 1.1
