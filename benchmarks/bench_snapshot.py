"""Snapshot bench — versioned binary save/load vs a cold rebuild.

The warm-start acceptance bench for the columnar snapshot layer. One
framework is built cold (landmark Dijkstra, embedding, clustering,
border election — the full construction pipeline), saved to the
``.npz``-backed snapshot format, and loaded back. The restored overlay
must be bit-identical to the source — same routing matrices, same query
tables — so the save/load timings are like-for-like against the cold
build they replace.

Results land in ``BENCH_snapshot.json`` at the repo root, keyed by scale
(``small`` for the CI smoke entry, ``full`` for the paper-scale n=1000
entry); entries for the other scale are preserved on rewrite.
``scripts/check_bench_regression.py --metric warm_start`` gates the
dimensionless cold/load ratio against the committed baseline.
``REPRO_SCALE=full`` runs the acceptance workload (n=1000, warm start
>= 10x faster than the cold build).
"""

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import HFCFramework
from repro.experiments import ascii_table
from repro.membership import DynamicOverlay
from repro.persistence import load_snapshot, save_snapshot
from repro.routing.batch import query_tables

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_snapshot.json"
SEED = 7


def _workload():
    """(scale, proxies) for the current scale."""
    full = os.environ.get("REPRO_SCALE", "small").strip().lower()
    if full in ("full", "1", "1.0"):
        return "full", 1000
    return "small", 250


def _merge_result(scale, entry):
    """Rewrite BENCH_snapshot.json, preserving the other scales' entries."""
    existing = {}
    if RESULT_PATH.exists():
        existing = json.loads(RESULT_PATH.read_text()).get("entries", {})
    existing[scale] = entry
    snapshot = {
        "bench": "snapshot",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "entries": existing,
    }
    RESULT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")


def test_snapshot_warm_start(benchmark, emit):
    scale, proxy_count = _workload()

    def run():
        start = time.perf_counter()
        framework = HFCFramework.build(proxy_count=proxy_count, seed=SEED)
        cold_seconds = time.perf_counter() - start

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "overlay.npz")
            save_times, load_times = [], []
            snap = None
            for _ in range(3):
                start = time.perf_counter()
                save_snapshot(framework, path)
                save_times.append(time.perf_counter() - start)
                start = time.perf_counter()
                snap = load_snapshot(path)
                load_times.append(time.perf_counter() - start)
            snapshot_bytes = os.path.getsize(path)

        # Bit-exactness: the restored overlay is the built overlay.
        route, true = framework.hfc.routing_matrices()
        route2, true2 = snap.framework.hfc.routing_matrices()
        assert np.array_equal(route, route2) and np.array_equal(true, true2)
        cold_tables = query_tables(framework.hfc)
        warm_tables = query_tables(snap.framework.hfc)
        assert np.array_equal(cold_tables.ext, warm_tables.ext)
        assert np.array_equal(cold_tables.d_border, warm_tables.d_border)

        # The dynamic layer resumes from the snapshot at its saved version.
        dyn = DynamicOverlay.from_snapshot(
            snap, restructure_tolerance=None, track_quality=False
        )
        assert dyn.version == snap.version

        return framework, cold_seconds, min(save_times), min(load_times), snapshot_bytes

    framework, cold_seconds, save_seconds, load_seconds, snapshot_bytes = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    warm_start = cold_seconds / load_seconds
    save_load = cold_seconds / (save_seconds + load_seconds)
    emit(
        "snapshot",
        f"Snapshot warm start — n={proxy_count}, "
        f"{snapshot_bytes / 1024:.0f} KiB on disk\n"
        + ascii_table(
            ["metric", "seconds", "vs cold build"],
            [
                ["cold build", f"{cold_seconds:.3f}", "1.0x"],
                ["save", f"{save_seconds:.4f}", "-"],
                ["load (warm start)", f"{load_seconds:.4f}", f"{warm_start:.1f}x"],
                ["save + load", f"{save_seconds + load_seconds:.4f}", f"{save_load:.1f}x"],
            ],
        ),
    )

    entry = {
        "proxies": proxy_count,
        "cold_build_seconds": round(cold_seconds, 4),
        "save_seconds": round(save_seconds, 4),
        "load_seconds": round(load_seconds, 4),
        "snapshot_bytes": snapshot_bytes,
        "speedup": {
            "total": round(warm_start, 2),
            "warm_start": round(warm_start, 2),
            "save_load": round(save_load, 2),
        },
    }
    _merge_result(scale, entry)

    assert save_load > 1.0, (
        f"save+load round trip slower than a cold build ({save_load:.2f}x)"
    )
    if scale == "full":
        # The PR's acceptance bar: warm start >= 10x at n=1000.
        assert warm_start >= 10.0, (
            f"full-scale warm start only {warm_start:.2f}x faster (< 10x)"
        )
    else:
        assert warm_start > 1.0, (
            f"warm start slower than a cold build ({warm_start:.2f}x)"
        )
