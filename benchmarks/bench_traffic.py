"""Extension bench E8 — sustained open-loop traffic and saturation.

Three parts, all on the :mod:`repro.traffic` engine:

* a steady-state run at the operating rate (offered vs. completed load,
  p50/p95/p99 sojourn, in-flight sessions), with the request trace dumped
  to ``benchmarks/out/traffic_<scale>.trace.jsonl``;
* a rate sweep that must locate the overlay's saturation point (the first
  rate where goodput falls below 90% or p95 blows past 3x the unloaded
  baseline);
* a sustained-load-under-faults scenario: a border-proxy crash/restart
  plan executes while traffic flows, the convergence auditor must pass,
  and delivery continuity through the fault window is reported.

Results land in ``BENCH_traffic.json`` at the repo root, keyed by scale.
Both gated metrics are deterministic simulated-clock ratios, so CI runs
compare like for like across hardware:

* ``steady_throughput`` — the goodput ratio (admitted x delivered) at the
  operating rate; a drop means the overlay now rejects or loses load it
  used to carry;
* ``p95_latency`` — unloaded-baseline p95 divided by operating-rate p95
  (higher is better); a drop means the operating point moved toward the
  latency knee.

``scripts/check_bench_regression.py --metric steady_throughput --metric
p95_latency`` gates both at 25% tolerance.
"""

import json
import math
import os
import time
from pathlib import Path

from repro.core import HFCFramework
from repro.experiments import ascii_table
from repro.faults import crash_restart_plan
from repro.traffic import (
    Poisson,
    SessionConfig,
    TrafficConfig,
    TrafficEngine,
    rate_sweep,
    run_traffic_under_faults,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_traffic.json"
OUT_DIR = Path(__file__).parent / "out"

#: the fault-continuity part runs at this fixed size at every scale, so the
#: committed full-scale entry stays comparable with CI's small runs
FAULT_PROXIES = 48


def _workload():
    """(scale, proxies, operating_rate, max_in_flight, sweep) for the scale."""
    full = os.environ.get("REPRO_SCALE", "small").strip().lower()
    if full in ("full", "1", "1.0"):
        return "full", 1000, 0.03, 400, [0.03, 0.06, 0.12, 0.24, 0.48]
    return "small", 120, 0.02, 150, [0.02, 0.04, 0.08, 0.16]


def _config(rate, max_in_flight):
    return TrafficConfig(
        arrival=Poisson(rate=rate),
        duration=6_000.0,
        warmup=1_000.0,
        max_in_flight=max_in_flight,
        service_time=4.0,
        session=SessionConfig(mean_lifetime=2_000.0, mean_gap=400.0),
    )


def _merge_result(scale, entry):
    """Rewrite BENCH_traffic.json, preserving the other scales' entries."""
    existing = {}
    if RESULT_PATH.exists():
        existing = json.loads(RESULT_PATH.read_text()).get("entries", {})
    existing[scale] = entry
    snapshot = {
        "bench": "traffic",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "entries": existing,
    }
    RESULT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")


def test_sustained_traffic_saturation(benchmark, emit):
    scale, proxy_count, rate, max_in_flight, sweep_rates = _workload()
    config = _config(rate, max_in_flight)

    def run():
        framework = HFCFramework.build(proxy_count=proxy_count, seed=11)
        router = framework.cached_hierarchical_router()
        engine = TrafficEngine(framework, config, router=router, seed=1)
        steady = engine.run()
        sweep = rate_sweep(
            framework, sweep_rates, config=config, seed=1, router=router
        )
        fault_framework = HFCFramework.build(proxy_count=FAULT_PROXIES, seed=3)
        faulted = run_traffic_under_faults(
            fault_framework,
            crash_restart_plan(fault_framework.hfc, seed=37),
            config=TrafficConfig(
                arrival=Poisson(rate=0.01),
                duration=6_000.0,
                warmup=1_000.0,
                session=SessionConfig(mean_lifetime=1_500.0, mean_gap=300.0),
            ),
            traffic_seed=8,
        )
        return engine, steady, sweep, faulted

    engine, steady, sweep, faulted = benchmark.pedantic(run, rounds=1, iterations=1)

    OUT_DIR.mkdir(exist_ok=True)
    engine.dump_trace(str(OUT_DIR / f"traffic_{scale}.trace.jsonl"))

    base_p95 = sweep.base_p95
    p95_ratio = base_p95 / steady.latency_p95

    emit(
        "traffic",
        f"E8 — sustained traffic, n={proxy_count}, operating rate {rate} "
        f"sessions/ms (cap {max_in_flight})\n"
        + ascii_table(
            ["sessions/ms", "offered req/s", "completed req/s", "goodput",
             "p50 ms", "p95 ms", "p99 ms", "in-flight peak"],
            sweep.rows(),
        )
        + f"\nsaturation rate: {sweep.saturation_rate} sessions/ms"
        + f"\nunder faults: passed={faulted.passed} "
        f"calm={faulted.calm_continuity:.3f} "
        f"fault-window={faulted.fault_continuity:.3f}",
    )

    entry = {
        "proxies": proxy_count,
        "operating_rate": rate,
        "max_in_flight": max_in_flight,
        "steady": steady.to_dict(),
        "sweep": {
            "rates": sweep_rates,
            "saturation_rate": sweep.saturation_rate,
            "base_p95": round(base_p95, 3),
            "goodput": [round(p.report.goodput_ratio, 4) for p in sweep.points],
            "p95": [round(p.report.latency_p95, 3) for p in sweep.points],
        },
        "under_faults": {
            "proxies": FAULT_PROXIES,
            "passed": faulted.passed,
            "calm_continuity": round(faulted.calm_continuity, 4),
            "fault_continuity": round(faulted.fault_continuity, 4),
            "reconverged_at": faulted.scenario.reconverged_at,
        },
        "speedup": {
            "total": round(steady.goodput_ratio, 4),
            "steady_throughput": round(steady.goodput_ratio, 4),
            "p95_latency": round(p95_ratio, 4),
        },
    }
    _merge_result(scale, entry)

    # the operating point must be comfortably inside the stable region ...
    assert steady.goodput_ratio >= 0.9
    assert steady.latency_p50 <= steady.latency_p95 <= steady.latency_p99
    assert not math.isnan(steady.latency_p95)
    # ... and the sweep must actually find the knee
    assert sweep.saturation_rate is not None
    # the control plane reconverges under load, and traffic keeps flowing
    assert faulted.passed
    assert faulted.fault_continuity > 0.5
