"""Extension bench E9 — sharded event simulation at scale.

Runs :func:`repro.traffic.shardload.run_shard_load` — deterministic
periodic request traffic over a synthetic grid-of-clusters overlay — on
the sharded engine, at the scale the monolithic single-heap simulator
cannot reach in the nightly wall-clock budget (ROADMAP item 1):

* small (CI): n=400 over 8 clusters, shards=2, plus a workers=2 process
  run that must reproduce the in-process counters exactly;
* full (nightly): n=100_000 over 256 clusters, shards=4 — steady-state
  traffic at 100k proxies.

Results land in ``BENCH_shard.json`` at the repo root, keyed by scale.
Both gated metrics are deterministic simulated-clock ratios (the same
value on any hardware, any shard count, any worker count):

* ``completed_ratio`` — completed / issued requests; the workload is
  sized so every request finishes inside the horizon, so this is
  exactly 1.0 and any dip means the sharded exchange lost or duplicated
  messages;
* ``locality`` — the fraction of hop deliveries that stayed shard-local;
  it measures how well the contiguous cluster partition preserves the
  paper's containment locality, and a drop means the partitioner
  regressed.

``event_rate`` (events per wall-clock second) is reported but not gated
— wall-clock numbers are hardware-bound.

``scripts/check_bench_regression.py --metric completed_ratio --metric
locality`` gates both at 25% tolerance.
"""

import json
import os
import time
from pathlib import Path

from repro.experiments import ascii_table
from repro.traffic.shardload import run_shard_load, synthetic_overlay

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_shard.json"


def _workload():
    """(scale, proxies, clusters, shards, duration) for the scale."""
    full = os.environ.get("REPRO_SCALE", "small").strip().lower()
    if full in ("full", "1", "1.0"):
        return "full", 100_000, 256, 4, 2_000.0
    return "small", 400, 8, 2, 2_000.0


def _merge_result(scale, entry):
    """Rewrite BENCH_shard.json, preserving the other scales' entries."""
    existing = {}
    if RESULT_PATH.exists():
        existing = json.loads(RESULT_PATH.read_text()).get("entries", {})
    existing[scale] = entry
    snapshot = {
        "bench": "shard",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "entries": existing,
    }
    RESULT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")


def test_sharded_simulation_scale(benchmark, emit):
    scale, proxies, clusters, shards, duration = _workload()
    state = synthetic_overlay(proxies, clusters, seed=11)

    def run():
        return run_shard_load(
            state, shards=shards, period=500.0, duration=duration, seed=11
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    # worker-process mode must reproduce the in-process counters exactly;
    # run it at CI size only (process startup dominates at small n and the
    # nightly budget is for the 100k in-process sweep)
    workers_entry = None
    if scale == "small":
        worker_result = run_shard_load(
            state, shards=shards, workers=shards, period=500.0,
            duration=duration, seed=11,
        )
        assert worker_result.requests == result.requests
        assert worker_result.completed == result.completed
        assert worker_result.hops_intra == result.hops_intra
        assert worker_result.hops_cross == result.hops_cross
        assert worker_result.events == result.events
        workers_entry = {
            "workers": worker_result.workers,
            "event_rate": round(worker_result.event_rate, 1),
            "wall_seconds": round(worker_result.wall_seconds, 3),
        }

    emit(
        "shard",
        f"E9 — sharded simulation, n={proxies} over {clusters} clusters, "
        f"{shards} shards\n"
        + ascii_table(
            ["proxies", "shards", "events", "windows", "exchanged",
             "completed", "locality", "events/s", "wall s"],
            [[result.proxies, result.shards, result.events, result.windows,
              result.exchanged, f"{result.completed_ratio:.3f}",
              f"{result.locality:.3f}", f"{result.event_rate:.0f}",
              f"{result.wall_seconds:.2f}"]],
        ),
    )

    entry = {
        "proxies": proxies,
        "clusters": clusters,
        "shards": shards,
        "duration": duration,
        "events": result.events,
        "windows": result.windows,
        "exchanged": result.exchanged,
        "requests": result.requests,
        "completed": result.completed,
        "event_rate": round(result.event_rate, 1),
        "wall_seconds": round(result.wall_seconds, 3),
        "worker_mode": workers_entry,
        "speedup": {
            "total": round(result.completed_ratio, 4),
            "completed_ratio": round(result.completed_ratio, 4),
            "locality": round(result.locality, 4),
        },
    }
    _merge_result(scale, entry)

    # every issued request completes — the conservation-backed invariant
    assert result.completed_ratio == 1.0
    # the contiguous cluster partition must preserve containment locality
    assert result.locality > 0.5
    # the run actually sharded: cross-shard batches flowed at the barriers
    assert result.shards == shards
    assert result.exchanged > 0
