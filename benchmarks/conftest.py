"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation) and prints the same rows/series the paper reports. Scale is
controlled by ``REPRO_SCALE`` (see ``repro.experiments.environments``):
the default "small" keeps a full ``pytest benchmarks/ --benchmark-only``
run in minutes; ``REPRO_SCALE=full`` reproduces Table 1 exactly.

Two further knobs bound the heavy experiments:

* ``REPRO_TOPOLOGIES`` — physical topologies per size (paper: 10 for
  Fig 9, 5 for Fig 10);
* ``REPRO_REQUESTS`` — client requests per topology (paper: 1000).

Rendered outputs are also written to ``benchmarks/out/<name>.txt`` so the
results survive pytest's capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def env_int(name: str, default: int) -> int:
    """Integer environment override with a default."""
    raw = os.environ.get(name)
    return int(raw) if raw else default


def is_full_scale() -> bool:
    return os.environ.get("REPRO_SCALE", "small").strip().lower() in ("full", "1", "1.0")


def fig9_topologies() -> int:
    return env_int("REPRO_TOPOLOGIES", 10 if is_full_scale() else 3)


def fig10_topologies() -> int:
    return env_int("REPRO_TOPOLOGIES", 5 if is_full_scale() else 2)


def requests_per_topology() -> int:
    return env_int("REPRO_REQUESTS", 1000 if is_full_scale() else 150)


@pytest.fixture
def emit():
    """Print a rendered experiment block and persist it under benchmarks/out."""

    def _emit(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _emit
