"""Construction-pipeline bench — vectorized kernels vs the reference loops.

Times the full Section-3 construction (landmark embedding, MST clustering,
border selection) twice over the *same* workload: once through the batched
numpy kernels (the default) and once through the original per-host /
per-pair reference path (``vectorized=False``). Each mode gets a fresh,
identically-seeded :class:`PhysicalNetwork` so Dijkstra caches and RNG
streams start from the same state — the comparison is code path only.

The two modes must produce identical clusters and identical border pairs
(the equivalence suite pins this property; the bench re-asserts it on the
benchmarked workload), so the speedup is a pure like-for-like number.

Results land in ``BENCH_construction.json`` at the repo root, keyed by
scale (``small`` for the CI smoke entry, ``full`` for the paper-scale
n=2000 entry); entries for the other scale are preserved on rewrite.
``scripts/check_bench_regression.py`` compares a fresh run of this bench
against the committed file and fails CI when the speedup ratio regresses
by more than its tolerance. The gate is on the dimensionless ratio, not
wall-clock, so it is portable across runner hardware.

Scale knobs: ``REPRO_SCALE=full`` runs n=2000 (the acceptance workload);
``REPRO_BENCH_PROXIES`` overrides n directly (the entry is then labelled
``custom`` and ignored by the regression gate).
"""

import json
import os
import time
from pathlib import Path

from repro.cluster.mstcluster import cluster_nodes
from repro.coords.embedding import build_coordinate_space
from repro.experiments import ascii_table
from repro.graph.mst import euclidean_mst, euclidean_mst_reference
from repro.netsim import PhysicalNetwork, transit_stub
from repro.overlay.hfc import build_hfc
from repro.overlay.network import OverlayNetwork
from repro.services.catalog import scaled_catalog
from repro.services.placement import install_services

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_construction.json"
SEED = 7
MODES = ("reference", "vectorized")


def _workload_size():
    override = os.environ.get("REPRO_BENCH_PROXIES")
    if override:
        return "custom", int(override)
    full = os.environ.get("REPRO_SCALE", "small").strip().lower()
    if full in ("full", "1", "1.0"):
        return "full", 2000
    return "small", 300


def _construct(topo, proxies, noise, vectorized):
    """One full construction pass; returns (clusters, borders, phase timings)."""
    # Fresh network per pass: empty delay cache, virgin noise stream.
    physical = PhysicalNetwork(topo, noise=noise, seed=SEED)
    timings = {}

    start = time.perf_counter()
    space, report = build_coordinate_space(
        physical, proxies, seed=SEED, vectorized=vectorized
    )
    timings["embedding"] = time.perf_counter() - start

    start = time.perf_counter()
    clustering = cluster_nodes(
        space,
        proxies,
        mst=euclidean_mst if vectorized else euclidean_mst_reference,
    )
    timings["clustering"] = time.perf_counter() - start

    catalog = scaled_catalog(len(proxies))
    placement = install_services(
        proxies, catalog, max_per_proxy=min(10, len(catalog)), seed=SEED
    )
    overlay = OverlayNetwork(
        physical=physical, proxies=proxies, placement=placement, space=space
    )
    start = time.perf_counter()
    hfc = build_hfc(
        overlay, clustering, engine="vectorized" if vectorized else "reference"
    )
    timings["borders"] = time.perf_counter() - start

    timings["total"] = sum(timings.values())
    return clustering, hfc, timings


def _merge_result(scale, entry):
    """Rewrite BENCH_construction.json, preserving the other scales' entries."""
    existing = {}
    if RESULT_PATH.exists():
        existing = json.loads(RESULT_PATH.read_text()).get("entries", {})
    existing[scale] = entry
    snapshot = {
        "bench": "construction",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "entries": existing,
    }
    RESULT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")


def test_construction_speedup(benchmark, emit):
    scale, proxy_count = _workload_size()
    repeats = 1 if scale == "full" else 2
    topo = transit_stub(max(int(proxy_count * 1.2), 160), seed=SEED)
    seeder = PhysicalNetwork(topo, seed=SEED)
    proxies = seeder.pick_overlay_nodes(proxy_count, seed=SEED)

    def run():
        results, phase_best = {}, {}
        for mode in MODES:
            vectorized = mode == "vectorized"
            best = None
            for _ in range(repeats):
                clustering, hfc, timings = _construct(
                    topo, proxies, 0.10, vectorized
                )
                if best is None or timings["total"] < best["total"]:
                    best = timings
            results[mode] = (clustering, hfc)
            phase_best[mode] = best
        return results, phase_best

    results, phase_best = benchmark.pedantic(run, rounds=1, iterations=1)

    ref_cl, ref_hfc = results["reference"]
    vec_cl, vec_hfc = results["vectorized"]
    # Like-for-like: both modes build the exact same HFC topology.
    assert vec_cl.clusters == ref_cl.clusters
    assert vec_hfc.borders == ref_hfc.borders

    speedup = {
        phase: phase_best["reference"][phase] / phase_best["vectorized"][phase]
        for phase in ("embedding", "clustering", "borders", "total")
    }
    rows = [
        [
            phase,
            f"{phase_best['reference'][phase]:.3f}",
            f"{phase_best['vectorized'][phase]:.3f}",
            f"{speedup[phase]:.1f}x",
        ]
        for phase in ("embedding", "clustering", "borders", "total")
    ]
    emit(
        "construction_speedup",
        f"Construction pipeline — n={proxy_count} proxies, "
        f"{topo.graph.node_count} routers, {vec_cl.cluster_count} clusters\n"
        + ascii_table(
            ["phase", "reference (s)", "vectorized (s)", "speedup"], rows
        ),
    )

    entry = {
        "proxies": proxy_count,
        "routers": topo.graph.node_count,
        "clusters": vec_cl.cluster_count,
        "repeats": repeats,
        "reference_seconds": {
            k: round(v, 4) for k, v in phase_best["reference"].items()
        },
        "vectorized_seconds": {
            k: round(v, 4) for k, v in phase_best["vectorized"].items()
        },
        "speedup": {k: round(v, 2) for k, v in speedup.items()},
    }
    _merge_result(scale, entry)

    assert speedup["total"] > 1.0, (
        f"vectorized construction slower than reference ({speedup['total']:.2f}x)"
    )
    if scale == "full":
        # The PR's acceptance bar: >=5x end-to-end at n=2000.
        assert speedup["total"] >= 5.0, (
            f"full-scale construction speedup {speedup['total']:.2f}x < 5x"
        )
