"""Churn bench — incremental maintenance vs full rebuild, delta vs full state.

Two extension benches around the dynamic-membership machinery:

* ``test_churn_quality_with_and_without_restructuring`` — the original E1
  quality study (restructuring policy vs clustering quality).
* ``test_incremental_churn_speedup`` — the incremental-overlay acceptance
  bench. One pre-scripted join/leave workload (coordinates measured once,
  outside the timed region) is replayed twice on identically built
  overlays: once with ``incremental=False`` (every event rebuilds borders
  from scratch) and once with ``incremental=True`` (only the touched
  cluster is patched). Both replicas must end bit-identical — the speedup
  is a pure like-for-like number. The same test also runs the Section-4
  state protocol in ``full`` and ``delta`` modes over the same topology
  and seed, comparing total bytes at a fixed steady-state horizon.

Results land in ``BENCH_churn.json`` at the repo root, keyed by scale
(``small`` for the CI smoke entry, ``full`` for the paper-scale n=1000
entry); entries for the other scale are preserved on rewrite.
``scripts/check_bench_regression.py --metric maintenance --metric
state_bytes`` gates the two dimensionless ratios against the committed
baseline. ``REPRO_SCALE=full`` runs the acceptance workload (n=1000,
200 events, >=5x maintenance speedup, >=2x byte savings).
"""

import json
import os
import time
from pathlib import Path

from repro.core import HFCFramework
from repro.experiments import ascii_table, scaled_table1
from repro.membership import DynamicOverlay, run_churn_session
from repro.state.protocol import StateDistributionProtocol
from repro.util.rng import ensure_rng

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_churn.json"
SEED = 7


def _workload():
    """(scale, proxies, events, protocol_proxies) for the current scale."""
    full = os.environ.get("REPRO_SCALE", "small").strip().lower()
    if full in ("full", "1", "1.0"):
        return "full", 1000, 200, 200
    return "small", 250, 80, 120


def _script_events(framework, events, seed):
    """Pre-script a churn workload with coordinates measured up front.

    Joins are located once here (one cached-Dijkstra batch per landmark)
    and replayed by coordinates, so the timed comparison below measures
    pure topology maintenance, not measurement.
    """
    rng = ensure_rng(seed)
    probe = DynamicOverlay(
        framework, restructure_tolerance=None, track_quality=False
    )
    catalog = list(framework.catalog.names)
    free = [
        s
        for s in framework.physical.topology.stub_nodes
        if not probe.is_member(s)
    ]
    rng.shuffle(free)
    script = []
    for _ in range(events):
        if (rng.random() < 0.5 and free) or probe.size <= 3:
            router = free.pop()
            services = frozenset(
                rng.sample(catalog, rng.randint(4, min(10, len(catalog))))
            )
            coords = probe.locate(router)
            probe.join(router, services, coords=coords)
            script.append(("join", router, services, coords))
        else:
            proxy = rng.choice(probe.proxies)
            probe.leave(proxy)
            script.append(("leave", proxy, None, None))
    return script


def _replay(framework, script, incremental):
    """Replay *script* on a fresh overlay; returns (overlay, seconds)."""
    start = time.perf_counter()
    dyn = DynamicOverlay(
        framework,
        restructure_tolerance=None,
        track_quality=False,
        incremental=incremental,
    )
    for kind, target, services, coords in script:
        if kind == "join":
            dyn.join(target, services, coords=coords)
        else:
            dyn.leave(target)
    return dyn, time.perf_counter() - start


def _protocol_bytes(framework, mode, horizon=12000.0):
    """Total protocol bytes at a fixed steady-state horizon."""
    protocol = StateDistributionProtocol(framework.hfc, seed=SEED, mode=mode)
    report = protocol.run(max_time=horizon, stop_on_convergence=False)
    assert report.converged_at is not None, f"{mode} mode did not converge"
    return report


def _merge_result(scale, entry):
    """Rewrite BENCH_churn.json, preserving the other scales' entries."""
    existing = {}
    if RESULT_PATH.exists():
        existing = json.loads(RESULT_PATH.read_text()).get("entries", {})
    existing[scale] = entry
    snapshot = {
        "bench": "churn",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "entries": existing,
    }
    RESULT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")


def test_incremental_churn_speedup(benchmark, emit):
    scale, proxy_count, events, protocol_proxies = _workload()
    framework = HFCFramework.build(proxy_count=proxy_count, seed=SEED)
    script = _script_events(framework, events, seed=SEED + 1)
    state_framework = (
        framework
        if proxy_count == protocol_proxies
        else HFCFramework.build(proxy_count=protocol_proxies, seed=SEED)
    )

    def run():
        full_dyn, full_seconds = _replay(framework, script, incremental=False)
        inc_dyn, inc_seconds = _replay(framework, script, incremental=True)
        full_report = _protocol_bytes(state_framework, "full")
        delta_report = _protocol_bytes(state_framework, "delta")
        return full_dyn, full_seconds, inc_dyn, inc_seconds, full_report, delta_report

    full_dyn, full_seconds, inc_dyn, inc_seconds, full_report, delta_report = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    # Like-for-like: the patched overlay is the rebuilt overlay.
    assert inc_dyn.clustering.labels == full_dyn.clustering.labels
    assert inc_dyn.clustering.clusters == full_dyn.clustering.clusters
    assert inc_dyn.hfc.borders == full_dyn.hfc.borders

    maintenance = full_seconds / inc_seconds
    bytes_ratio = full_report.total_size / delta_report.total_size
    emit(
        "churn_speedup",
        f"Incremental overlay maintenance — n={proxy_count}, {events} events; "
        f"state protocol at n={protocol_proxies}\n"
        + ascii_table(
            ["metric", "full", "incremental", "ratio"],
            [
                [
                    "maintenance (s)",
                    f"{full_seconds:.3f}",
                    f"{inc_seconds:.3f}",
                    f"{maintenance:.1f}x",
                ],
                [
                    "events/s",
                    f"{events / full_seconds:.1f}",
                    f"{events / inc_seconds:.1f}",
                    f"{maintenance:.1f}x",
                ],
                [
                    "protocol bytes",
                    f"{full_report.total_size}",
                    f"{delta_report.total_size}",
                    f"{bytes_ratio:.1f}x",
                ],
            ],
        ),
    )

    entry = {
        "proxies": proxy_count,
        "events": events,
        "protocol_proxies": protocol_proxies,
        "full_seconds": round(full_seconds, 4),
        "incremental_seconds": round(inc_seconds, 4),
        "events_per_second": round(events / inc_seconds, 1),
        "bytes_full": full_report.total_size,
        "bytes_delta": delta_report.total_size,
        "speedup": {
            "total": round(maintenance, 2),
            "maintenance": round(maintenance, 2),
            "state_bytes": round(bytes_ratio, 2),
        },
    }
    _merge_result(scale, entry)

    assert bytes_ratio >= 2.0, (
        f"delta protocol saved only {bytes_ratio:.2f}x bytes (< 2x)"
    )
    if scale == "full":
        # The PR's acceptance bar: >=5x join/leave throughput at n=1000.
        assert maintenance >= 5.0, (
            f"full-scale incremental speedup {maintenance:.2f}x < 5x"
        )
    else:
        assert maintenance > 1.0, (
            f"incremental maintenance slower than rebuild ({maintenance:.2f}x)"
        )


def test_churn_quality_with_and_without_restructuring(benchmark, emit):
    spec = scaled_table1()[0]

    def run():
        rows = []
        for label, tolerance in (("no restructuring", None), ("tolerance 0.7", 0.7)):
            framework = HFCFramework.build(
                proxy_count=spec.proxies, seed=401,
            )
            dyn = run_churn_session(
                framework, events=40, seed=402, restructure_tolerance=tolerance
            )
            restructures = sum(1 for e in dyn.history if e.kind == "restructure")
            rows.append(
                [
                    label,
                    dyn.size,
                    dyn.clustering.cluster_count,
                    restructures,
                    dyn.quality(),
                    dyn.fresh_quality(),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "churn",
        "E1 — churn (40 events): clustering quality vs restructuring policy\n"
        + ascii_table(
            ["policy", "size", "clusters", "restructures",
             "quality", "fresh quality"],
            rows,
        ),
    )
