"""Extension bench E1 — dynamic membership (paper Section 7 future work).

Drives a churn session (joins + leaves) against a built framework and
reports clustering quality with and without the automatic restructuring
mechanism the paper calls for.
"""

from repro.core import HFCFramework
from repro.experiments import ascii_table, scaled_table1
from repro.membership import run_churn_session


def test_churn_quality_with_and_without_restructuring(benchmark, emit):
    spec = scaled_table1()[0]

    def run():
        rows = []
        for label, tolerance in (("no restructuring", None), ("tolerance 0.7", 0.7)):
            framework = HFCFramework.build(
                proxy_count=spec.proxies, seed=401,
            )
            dyn = run_churn_session(
                framework, events=40, seed=402, restructure_tolerance=tolerance
            )
            restructures = sum(1 for e in dyn.history if e.kind == "restructure")
            rows.append(
                [
                    label,
                    dyn.size,
                    dyn.clustering.cluster_count,
                    restructures,
                    dyn.quality(),
                    dyn.fresh_quality(),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "churn",
        "E1 — churn (40 events): clustering quality vs restructuring policy\n"
        + ascii_table(
            ["policy", "size", "clusters", "restructures",
             "quality", "fresh quality"],
            rows,
        ),
    )
