"""Extension bench E2 — bandwidth-aware routing (paper Section 7 future work).

Sweeps the minimum-bandwidth requirement and reports, for hierarchical QoS
routing: satisfaction rate, mean true delay of satisfied paths, and the mean
bottleneck bandwidth actually delivered.
"""

from repro.core import HFCFramework
from repro.experiments import ascii_table, scaled_table1
from repro.qos import BandwidthModel, QoSHierarchicalRouter
from repro.util.errors import NoFeasiblePathError

import numpy as np


def test_qos_requirement_sweep(benchmark, emit):
    spec = scaled_table1()[0]
    floors = (0.0, 15.0, 30.0, 60.0)

    def run():
        framework = HFCFramework.build(proxy_count=spec.proxies, seed=501)
        model = BandwidthModel(framework.physical, seed=502)
        requests = [framework.random_request(seed=s) for s in range(60)]
        rows = []
        for floor in floors:
            router = QoSHierarchicalRouter(framework.hfc, model, floor)
            delays, bandwidths, satisfied = [], [], 0
            for request in requests:
                try:
                    path = router.route(request)
                except NoFeasiblePathError:
                    continue
                satisfied += 1
                delays.append(path.true_delay(framework.overlay))
                bandwidths.append(model.path_bandwidth(path.proxies()))
            rows.append(
                [
                    floor,
                    f"{satisfied}/{len(requests)}",
                    float(np.mean(delays)) if delays else float("nan"),
                    float(np.mean(bandwidths)) if bandwidths else float("nan"),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "qos",
        "E2 — hierarchical QoS routing vs bandwidth floor (Mbps)\n"
        + ascii_table(
            ["min bandwidth", "satisfied", "mean delay", "mean bottleneck bw"],
            rows,
        ),
    )
