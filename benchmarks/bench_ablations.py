"""Ablation benches A1-A5 (see DESIGN.md's per-experiment index).

* A1 — coordinate-space dimension k (the paper's own future-work question);
* A2 — Zahn inconsistency factor;
* A3 — closest-pair vs random border selection;
* A4 — CSP relaxation method (external / backtrack / exact);
* A5 — mesh link-information quality (coords vs true).
"""

from repro.experiments.ablations import (
    render_border_ablation,
    render_dimension_ablation,
    render_inconsistency_ablation,
    render_mesh_information_ablation,
    render_method_ablation,
    run_border_ablation,
    run_dimension_ablation,
    run_inconsistency_ablation,
    run_mesh_information_ablation,
    run_method_ablation,
)

from conftest import requests_per_topology


def _requests() -> int:
    return max(50, requests_per_topology() // 2)


def test_ablation_a1_dimensions(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: run_dimension_ablation(requests=_requests(), seed=201),
        rounds=1, iterations=1,
    )
    emit("ablation_a1_dimensions",
         "A1 — coordinate-space dimension\n" + render_dimension_ablation(rows))


def test_ablation_a2_inconsistency_factor(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: run_inconsistency_ablation(requests=_requests(), seed=202),
        rounds=1, iterations=1,
    )
    emit("ablation_a2_factor",
         "A2 — MST inconsistency factor\n" + render_inconsistency_ablation(rows))


def test_ablation_a3_border_rule(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: run_border_ablation(requests=_requests(), seed=203),
        rounds=1, iterations=1,
    )
    emit("ablation_a3_borders",
         "A3 — border-selection rule\n" + render_border_ablation(rows))


def test_ablation_a4_csp_method(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: run_method_ablation(requests=_requests(), seed=204),
        rounds=1, iterations=1,
    )
    emit("ablation_a4_methods",
         "A4 — CSP relaxation method\n" + render_method_ablation(rows))


def test_ablation_a5_mesh_information(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: run_mesh_information_ablation(requests=_requests(), seed=205),
        rounds=1, iterations=1,
    )
    emit("ablation_a5_mesh_info",
         "A5 — mesh link-information quality\n"
         + render_mesh_information_ablation(rows))


def test_ablation_a6_aggregation_representation(benchmark, emit):
    from repro.experiments.ablations import (
        render_aggregation_ablation,
        run_aggregation_ablation,
    )

    rows = benchmark.pedantic(
        lambda: run_aggregation_ablation(requests=_requests(), seed=206),
        rounds=1, iterations=1,
    )
    emit("ablation_a6_aggregation",
         "A6 — cluster representation (all borders vs single logical node)\n"
         + render_aggregation_ablation(rows))


def test_ablation_a7_landmark_placement(benchmark, emit):
    from repro.experiments.ablations import (
        render_landmark_ablation,
        run_landmark_ablation,
    )

    rows = benchmark.pedantic(
        lambda: run_landmark_ablation(requests=_requests(), seed=207),
        rounds=1, iterations=1,
    )
    emit("ablation_a7_landmarks",
         "A7 — landmark placement (k-center vs random)\n"
         + render_landmark_ablation(rows))


def test_ablation_a8_mesh_family(benchmark, emit):
    from repro.experiments.ablations import (
        render_mesh_family_ablation,
        run_mesh_family_ablation,
    )

    rows = benchmark.pedantic(
        lambda: run_mesh_family_ablation(requests=_requests(), seed=208),
        rounds=1, iterations=1,
    )
    emit("ablation_a8_mesh_family",
         "A8 — overlay topology family\n" + render_mesh_family_ablation(rows))
