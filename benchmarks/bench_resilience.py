"""Extension bench E4 — failure resilience of streaming sessions.

One mid-path service proxy fails per session; delivery rate is compared
with and without watchdog-triggered hierarchical re-routing.
"""

from repro.experiments.resilience import render_resilience, run_resilience_experiment


def test_resilience_recovery_value(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: run_resilience_experiment(sessions=8, seed=701),
        rounds=1, iterations=1,
    )
    emit("resilience", "E4 — session delivery under proxy failure\n"
         + render_resilience(rows))
    by_policy = {r.policy: r for r in rows}
    assert (
        by_policy["reroute"].delivery_rate.mean
        >= by_policy["no recovery"].delivery_rate.mean
    )
