"""Extension bench E4 — failure resilience of streaming sessions & protocol.

Two resilience benches:

* ``test_resilience_recovery_value`` — the original E4 study: one
  mid-path service proxy fails per session; delivery rate is compared
  with and without watchdog-triggered hierarchical re-routing.
* ``test_fault_matrix_recovery`` — the fault-injection acceptance bench.
  Every plan in :func:`repro.faults.standard_fault_matrix` (30% loss
  burst, cluster partition that heals, border-proxy crash/restart with
  state wipe, reorder+duplicate) runs under the convergence auditor,
  which must pass all checks with reconvergence inside the K-period
  budget.

Results land in ``BENCH_resilience.json`` at the repo root, keyed by
scale; both gated metrics are deterministic dimensionless ratios, so CI
runs compare like for like across hardware:

* ``delivery_recovery`` — reroute delivery rate / no-recovery delivery
  rate (how much the data plane's recovery machinery is worth);
* ``reconverge_margin`` — the auditor's K-period reconvergence budget
  divided by the worst observed reconvergence time across the fault
  matrix (floored at one check interval); a drop means some fault now
  takes longer to recover from.

``scripts/check_bench_regression.py --metric delivery_recovery --metric
reconverge_margin`` gates both at 25% tolerance.
"""

import json
import os
import time
from pathlib import Path

from repro.core import HFCFramework
from repro.experiments import ascii_table
from repro.experiments.resilience import render_resilience, run_resilience_experiment
from repro.faults import run_fault_scenario, standard_fault_matrix

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_resilience.json"
AUDIT_CHECK_INTERVAL = 250.0
K_PERIODS = 3


def _workload():
    """(scale, proxies, sessions) for the current scale."""
    full = os.environ.get("REPRO_SCALE", "small").strip().lower()
    if full in ("full", "1", "1.0"):
        return "full", 200, 16
    return "small", 48, 8


def _merge_result(scale, entry):
    """Rewrite BENCH_resilience.json, preserving the other scales' entries."""
    existing = {}
    if RESULT_PATH.exists():
        existing = json.loads(RESULT_PATH.read_text()).get("entries", {})
    existing[scale] = entry
    snapshot = {
        "bench": "resilience",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "entries": existing,
    }
    RESULT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")


def test_resilience_recovery_value(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: run_resilience_experiment(sessions=8, seed=701),
        rounds=1, iterations=1,
    )
    emit("resilience", "E4 — session delivery under proxy failure\n"
         + render_resilience(rows))
    by_policy = {r.policy: r for r in rows}
    assert (
        by_policy["reroute"].delivery_rate.mean
        >= by_policy["no recovery"].delivery_rate.mean
    )


def test_fault_matrix_recovery(benchmark, emit):
    scale, proxy_count, sessions = _workload()

    def run():
        framework = HFCFramework.build(proxy_count=proxy_count, seed=3)
        matrix = {
            name: run_fault_scenario(
                framework,
                plan,
                k_periods=K_PERIODS,
                check_interval=AUDIT_CHECK_INTERVAL,
            )
            for name, plan in standard_fault_matrix(framework.hfc).items()
        }
        rows = run_resilience_experiment(
            proxy_count=proxy_count, sessions=sessions, seed=701
        )
        return matrix, rows

    matrix, rows = benchmark.pedantic(run, rounds=1, iterations=1)

    by_policy = {r.policy: r for r in rows}
    delivery_recovery = (
        by_policy["reroute"].delivery_rate.mean
        / by_policy["no recovery"].delivery_rate.mean
    )
    budget = next(iter(matrix.values())).deadline - next(
        iter(matrix.values())
    ).horizon
    worst_recovery = max(
        max(result.recovery_time or 0.0, AUDIT_CHECK_INTERVAL)
        for result in matrix.values()
    )
    reconverge_margin = budget / worst_recovery

    table_rows = [
        [
            name,
            f"{result.recovery_time:.0f}" if result.recovery_time is not None else "-",
            f"{sum(c.passed for c in result.checks)}/{len(result.checks)}",
            result.counters.get("faults.dropped.loss", 0)
            + result.counters.get("faults.dropped.partition", 0)
            + result.counters.get("faults.dropped.crash_sender", 0)
            + result.counters.get("faults.dropped.crash_recipient", 0),
            result.counters.get("faults.duplicated", 0),
        ]
        for name, result in matrix.items()
    ]
    emit(
        "fault_matrix",
        f"Fault matrix under the convergence auditor — n={proxy_count}, "
        f"K={K_PERIODS} refresh periods (budget {budget:.0f})\n"
        + ascii_table(
            ["plan", "recovery time", "checks", "dropped", "duplicated"],
            table_rows,
        ),
    )

    entry = {
        "proxies": proxy_count,
        "sessions": sessions,
        "k_periods": K_PERIODS,
        "budget": budget,
        "worst_recovery": worst_recovery,
        "delivery_no_recovery": round(
            by_policy["no recovery"].delivery_rate.mean, 4
        ),
        "delivery_reroute": round(by_policy["reroute"].delivery_rate.mean, 4),
        "plans": {
            name: {
                "passed": result.passed,
                "recovery_time": result.recovery_time,
                "reconverged_at": result.reconverged_at,
            }
            for name, result in matrix.items()
        },
        "speedup": {
            "total": round(delivery_recovery, 3),
            "delivery_recovery": round(delivery_recovery, 3),
            "reconverge_margin": round(reconverge_margin, 3),
        },
    }
    _merge_result(scale, entry)

    for name, result in matrix.items():
        assert result.passed, (
            f"{name}: {[c.detail for c in result.failures()]}"
        )
    assert delivery_recovery >= 1.0
