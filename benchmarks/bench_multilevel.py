"""Hierarchy-depth bench — state vs path quality across recursive levels.

Extends Fig 9's argument recursively: every extra hierarchy level shrinks
per-proxy state again, at a path-quality price. This bench sweeps depth
L = 2 (the paper's bi-level HFC), 3, and 4 over one overlay and measures
all three sides per level: build time of the level stack, the mean
per-proxy state footprint under the level-generic accounting
(:meth:`HierarchyLevels.mean_state_bytes`), and the mean routed true
delay over one shared request set (batched ``route_many`` at every
depth, averaged over the requests feasible at all depths, so the delay
column is like-for-like).

Results land in ``BENCH_hierarchy.json`` at the repo root, keyed by scale
(``small`` for the CI smoke entry, ``full`` for the paper-scale n=1000
entry); entries for the other scale are preserved on rewrite.
``scripts/check_bench_regression.py --metric state_l3 --metric delay_l3``
gates the dimensionless L2/L3 state ratio (must stay > 1: the third
level keeps shrinking state) and the L2/L3 delay ratio (path-quality
cost of the third level must not regress) against the committed
baseline. ``REPRO_SCALE=full`` runs the acceptance workload (n=1000,
where per-proxy state must *strictly* decrease from L=2 to L=3).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import HFCFramework
from repro.experiments import ascii_table
from repro.hierarchy import RecursiveRouter, build_levels
from repro.routing import HierarchicalRouter

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_hierarchy.json"
SEED = 7
DEPTHS = (2, 3, 4)
REQUESTS = 60


def _workload():
    """(scale, proxies) for the current scale."""
    full = os.environ.get("REPRO_SCALE", "small").strip().lower()
    if full in ("full", "1", "1.0"):
        return "full", 1000
    return "small", 250


def _merge_result(scale, entry):
    """Rewrite BENCH_hierarchy.json, preserving the other scales' entries."""
    existing = {}
    if RESULT_PATH.exists():
        existing = json.loads(RESULT_PATH.read_text()).get("entries", {})
    existing[scale] = entry
    snapshot = {
        "bench": "hierarchy",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "entries": existing,
    }
    RESULT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")


def test_hierarchy_depth_sweep(benchmark, emit):
    scale, proxy_count = _workload()

    def run():
        framework = HFCFramework.build(proxy_count=proxy_count, seed=SEED)
        requests = [
            framework.random_request(seed=1000 + i) for i in range(REQUESTS)
        ]
        per_depth = {}
        for depth in DEPTHS:
            start = time.perf_counter()
            hierarchy = build_levels(framework.hfc, depth)
            build_seconds = time.perf_counter() - start
            router = (
                HierarchicalRouter(framework.hfc)
                if depth == 2
                else RecursiveRouter(hierarchy)
            )
            result = router.route_many_detailed(requests)
            per_depth[depth] = {
                "hierarchy": hierarchy,
                "build_seconds": build_seconds,
                "state_bytes": hierarchy.mean_state_bytes(),
                "paths": result.paths,
            }
        # like-for-like delay: only requests feasible at every depth
        feasible = [
            i
            for i in range(REQUESTS)
            if all(per_depth[d]["paths"][i] is not None for d in DEPTHS)
        ]
        for depth in DEPTHS:
            delays = [
                per_depth[depth]["paths"][i].true_delay(framework.overlay)
                for i in feasible
            ]
            per_depth[depth]["mean_delay"] = float(np.mean(delays))
        return framework, per_depth, len(feasible)

    framework, per_depth, feasible_count = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = []
    for depth in DEPTHS:
        stats = per_depth[depth]
        hierarchy = stats["hierarchy"]
        rows.append(
            [
                depth,
                hierarchy.top_count,
                f"{stats['build_seconds']:.4f}",
                f"{stats['state_bytes']:.0f}",
                f"{stats['mean_delay']:.1f}",
            ]
        )
    emit(
        "multilevel",
        f"Recursive hierarchy depth sweep — n={proxy_count}, "
        f"{feasible_count}/{REQUESTS} requests feasible at every depth\n"
        + ascii_table(
            ["depth", "top groups", "build s", "state B/proxy", "mean delay"],
            rows,
        ),
    )

    b2 = per_depth[2]["state_bytes"]
    b3 = per_depth[3]["state_bytes"]
    b4 = per_depth[4]["state_bytes"]
    d2 = per_depth[2]["mean_delay"]
    d3 = per_depth[3]["mean_delay"]
    entry = {
        "proxies": proxy_count,
        "feasible_requests": feasible_count,
        "levels": {
            str(depth): {
                "top_groups": per_depth[depth]["hierarchy"].top_count,
                "build_seconds": round(per_depth[depth]["build_seconds"], 4),
                "state_bytes": round(per_depth[depth]["state_bytes"], 1),
                "mean_delay": round(per_depth[depth]["mean_delay"], 2),
            }
            for depth in DEPTHS
        },
        "speedup": {
            "total": round(b2 / b3, 3),
            "state_l3": round(b2 / b3, 3),
            "state_l4": round(b2 / b4, 3),
            "delay_l3": round(d2 / d3, 3),
        },
    }
    _merge_result(scale, entry)

    # the third level must keep shrinking per-proxy state — strictly
    assert b3 < b2, f"L=3 state {b3:.0f} B not below L=2 state {b2:.0f} B"
    assert b4 <= b3 + 1e-9, f"L=4 state {b4:.0f} B above L=3 {b3:.0f} B"
