"""Extension bench E5 — a third hierarchy level: state vs path quality.

Extends Fig 9's argument one level up: grouping clusters into
super-clusters shrinks per-proxy state again, at a path-quality price.
The bench quantifies both sides at the two larger environment sizes.
"""

import numpy as np

from repro.experiments import (
    WorkloadConfig,
    ascii_table,
    build_environment,
    generate_requests,
    scaled_table1,
)
from repro.hierarchy import ThreeLevelRouter, build_multilevel
from repro.routing import HierarchicalRouter
from repro.state import coordinates_node_states, service_node_states


def test_third_level_state_vs_paths(benchmark, emit):
    specs = scaled_table1()[-2:]

    def run():
        rows = []
        for i, spec in enumerate(specs):
            env = build_environment(spec, seed=901 + i)
            fw = env.framework
            ml = build_multilevel(fw.hfc)
            requests = generate_requests(
                env, WorkloadConfig(request_count=60), seed=902 + i
            )
            two_router = HierarchicalRouter(fw.hfc)
            three_router = ThreeLevelRouter(ml)
            d2 = np.mean(
                [two_router.route(r).true_delay(fw.overlay) for r in requests]
            )
            d3 = np.mean(
                [three_router.route(r).true_delay(fw.overlay) for r in requests]
            )
            c2 = np.mean(list(coordinates_node_states(fw.hfc).values()))
            c3 = np.mean(list(ml.coordinates_node_states().values()))
            s2 = np.mean(list(service_node_states(fw.hfc).values()))
            s3 = np.mean(list(ml.service_node_states().values()))
            rows.append(
                [
                    spec.proxies,
                    fw.clustering.cluster_count,
                    ml.super_count,
                    float(c2), float(c3),
                    float(s2), float(s3),
                    float(d2), float(d3),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "multilevel",
        "E5 — third hierarchy level: per-proxy state vs path quality\n"
        + ascii_table(
            ["proxies", "clusters", "supers",
             "coord 2L", "coord 3L", "svc 2L", "svc 3L",
             "delay 2L", "delay 3L"],
            rows,
        ),
    )
    for row in rows:
        assert row[4] <= row[3] + 1e-9  # the third level never inflates state
