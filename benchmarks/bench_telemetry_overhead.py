"""Telemetry overhead bench — the price of default-on instrumentation.

Runs the identical Section-4 protocol workload (same topology, same seed,
fixed horizon so every mode delivers the same messages) under three
telemetry configurations:

* ``off``     — ``NULL_TELEMETRY`` (every handle a no-op): the
                pre-instrumentation baseline;
* ``on``      — the default: per-kind counters + latency histograms live,
                no sink attached (the shipping configuration);
* ``on+sink`` — a JSONL sink attached to the run's event log.

The acceptance bar is ``on``/``off`` <= 1.05 (instrumentation must be
near-free when nobody is listening). Results are written to
``BENCH_telemetry.json`` at the repo root — the seed point of the
telemetry perf trajectory — and rendered to ``benchmarks/out``.
"""

import json
import time
from pathlib import Path

from repro.core import HFCFramework
from repro.experiments import ascii_table
from repro.state.protocol import StateDistributionProtocol
from repro.telemetry import NULL_TELEMETRY, JsonlSink, Telemetry

REPO_ROOT = Path(__file__).resolve().parent.parent
MODES = ("off", "on", "on+sink")
REPEATS = 7
#: fixed horizon (no convergence checks mid-run) => identical event counts
MAX_TIME, CHECK_INTERVAL = 6000.0, 3000.0


def _telemetry_for(mode, tmp_path, repeat):
    if mode == "off":
        return NULL_TELEMETRY
    telemetry = Telemetry()
    if mode == "on+sink":
        telemetry.events.attach(
            JsonlSink(str(tmp_path / f"events-{repeat}.jsonl"))
        )
    return telemetry


def test_telemetry_overhead(benchmark, emit, tmp_path):
    framework = HFCFramework.build(proxy_count=80, seed=7)

    def run():
        timings = {mode: [] for mode in MODES}
        delivered = {}
        # interleave modes so slow drift (thermal, page cache) hits all alike
        for repeat in range(REPEATS):
            for mode in MODES:
                protocol = StateDistributionProtocol(
                    framework.hfc, seed=11,
                    telemetry=_telemetry_for(mode, tmp_path, repeat),
                )
                start = time.perf_counter()
                protocol.run(
                    max_time=MAX_TIME,
                    check_interval=CHECK_INTERVAL,
                    stop_on_convergence=False,
                )
                timings[mode].append(time.perf_counter() - start)
                delivered[mode] = protocol.sim.messages_delivered
        return timings, delivered

    timings, delivered = benchmark.pedantic(run, rounds=1, iterations=1)
    best = {mode: min(ts) for mode, ts in timings.items()}
    overhead = {mode: best[mode] / best["off"] for mode in MODES}

    rows = [
        [mode, f"{best[mode] * 1000:.1f}",
         f"{overhead[mode]:.3f}", delivered[mode]]
        for mode in MODES
    ]
    emit(
        "telemetry_overhead",
        "Telemetry overhead — identical protocol workload per mode\n"
        + ascii_table(
            ["telemetry", "best of 7 (ms)", "vs off", "messages counted"],
            rows,
        ),
    )

    snapshot = {
        "bench": "telemetry_overhead",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": {
            "proxies": 80,
            "max_time": MAX_TIME,
            "messages_delivered": delivered["on"],
            "repeats": REPEATS,
        },
        "best_seconds": best,
        "overhead_vs_off": overhead,
    }
    (REPO_ROOT / "BENCH_telemetry.json").write_text(
        json.dumps(snapshot, indent=2) + "\n"
    )

    # the default-on configuration counts every message...
    assert delivered["on"] == delivered["on+sink"] > 0
    # ...and the no-op baseline records none of them
    assert delivered["off"] == 0
    # the acceptance bar: default-on instrumentation is near-free
    assert overhead["on"] <= 1.05, (
        f"default-on telemetry costs {overhead['on']:.1%} over baseline"
    )
