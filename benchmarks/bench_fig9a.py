"""Fig 9(a) — coordinates-related node-states per proxy, flat vs HFC.

Paper shape: flat grows linearly (slope 1); hierarchical stays dramatically
lower and grows slowly.
"""

from repro.experiments import run_overhead_experiment, series_block

from conftest import fig9_topologies


def test_fig9a_coordinates_overhead(benchmark, emit):
    def run():
        return run_overhead_experiment(
            topologies_per_size=fig9_topologies(), seed=91
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    xs = [p.proxies for p in result.coordinates]
    emit(
        "fig9a",
        series_block(
            "Fig 9(a) — coordinates-related node-states per proxy "
            f"(mean of {fig9_topologies()} topologies)",
            {
                "flat": [p.flat for p in result.coordinates],
                "hierarchical": [p.hierarchical for p in result.coordinates],
                "hier std": [p.hierarchical_std for p in result.coordinates],
            },
            xs,
        ),
    )
    # the paper's qualitative claim must hold at any scale
    assert all(p.hierarchical < p.flat for p in result.coordinates)
