"""Fig 9(b) — service-capability node-states per proxy, flat vs HFC.

Paper shape: flat is exactly n; hierarchical is |own cluster| + #clusters,
far smaller and slowly growing.
"""

from repro.experiments import run_overhead_experiment, series_block

from conftest import fig9_topologies


def test_fig9b_service_overhead(benchmark, emit):
    def run():
        return run_overhead_experiment(
            topologies_per_size=fig9_topologies(), seed=92
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    xs = [p.proxies for p in result.service]
    emit(
        "fig9b",
        series_block(
            "Fig 9(b) — service-related node-states per proxy "
            f"(mean of {fig9_topologies()} topologies)",
            {
                "flat": [p.flat for p in result.service],
                "hierarchical": [p.hierarchical for p in result.service],
                "hier std": [p.hierarchical_std for p in result.service],
            },
            xs,
        ),
    )
    assert all(p.hierarchical < p.flat for p in result.service)
