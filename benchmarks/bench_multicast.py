"""Extension bench E3 — service multicast trees vs per-destination unicast.

Total delivery cost (service chain paid once + shared distribution links)
against the unicast baseline, as the destination count grows. The shared
chain amortises, so the saving ratio must widen with the group size.
"""

import random

from repro.core import HFCFramework
from repro.experiments import ascii_table, scaled_table1
from repro.multicast import MulticastRequest, build_service_tree, unicast_baseline_cost
from repro.routing import HierarchicalRouter
from repro.services import linear_graph


def test_multicast_saving_vs_group_size(benchmark, emit):
    spec = scaled_table1()[0]
    group_sizes = (2, 4, 8, 16)

    def run():
        framework = HFCFramework.build(proxy_count=spec.proxies, seed=601)
        router = HierarchicalRouter(framework.hfc)
        rng = random.Random(602)
        rows = []
        for size in group_sizes:
            tree_costs, unicast_costs = [], []
            for _ in range(10):
                picked = rng.sample(framework.overlay.proxies, size + 1)
                names = [
                    rng.choice(list(framework.catalog.names)) for _ in range(5)
                ]
                request = MulticastRequest(
                    picked[0], linear_graph(names), tuple(picked[1:])
                )
                tree = build_service_tree(router, request)
                tree_costs.append(tree.total_cost(framework.overlay))
                unicast_costs.append(
                    unicast_baseline_cost(router, request, framework.overlay)
                )
            mean_tree = sum(tree_costs) / len(tree_costs)
            mean_unicast = sum(unicast_costs) / len(unicast_costs)
            rows.append(
                [size, mean_tree, mean_unicast, mean_tree / mean_unicast]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "multicast",
        "E3 — service multicast tree vs unicast (total delivery cost)\n"
        + ascii_table(
            ["destinations", "tree cost", "unicast cost", "ratio"], rows
        ),
    )
    ratios = [r[3] for r in rows]
    assert ratios[-1] < ratios[0]  # amortisation widens with group size
