"""Table 1 — simulation test environments.

Regenerates the paper's environment table at the active scale and builds one
instance of each row, reporting the measured system shape (cluster count,
border proxies, catalog size) alongside the specified parameters.
"""

from repro.experiments import ascii_table, build_environment, scaled_table1

from conftest import fig9_topologies  # noqa: F401  (shared scale plumbing)


def test_table1_environments(benchmark, emit):
    specs = scaled_table1()

    def run():
        rows = []
        for i, spec in enumerate(specs):
            env = build_environment(spec, seed=1000 + i)
            fw = env.framework
            rows.append(
                [
                    spec.physical_nodes,
                    spec.landmarks,
                    spec.proxies,
                    spec.clients,
                    f"{spec.min_services}-{spec.max_services}",
                    f"{spec.min_request_length}-{spec.max_request_length}",
                    fw.clustering.cluster_count,
                    len(fw.hfc.all_border_nodes()),
                    len(fw.catalog),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table1",
        ascii_table(
            [
                "physical", "landmarks", "proxies", "clients",
                "services/proxy", "req. length",
                "clusters*", "borders*", "catalog*",
            ],
            rows,
        )
        + "\n(* measured on one built instance; paper columns left of them)",
    )
