"""Query bench — batched route_many vs per-request scalar routing.

The batched-query acceptance bench. One fixed workload (Table-1-style
requests, 4-10 services each) is resolved three ways on identically built
frameworks:

* **scalar** — the pre-batching configuration: per-request ``route`` calls
  through the reference CSP relaxation with a non-memoizing coordinate
  provider (every call re-derives provider lists and coordinate blocks);
* **single** — per-request ``route`` calls through the vectorized CSP
  relaxation (numpy helps little at this granularity; the number is kept
  honest, not gated);
* **batch** — one ``route_many`` call sharing the per-batch precompute
  (query tables, provider index, CSP memo, padded chain kernels).

All three must produce bit-identical paths — the speedup is a pure
like-for-like number. Every engine is timed best-of-N (the gated ratios
are steady-state throughput, robust against allocator warm-up and timer
noise); the batch engine's first, cold call — the one paying the
query-table construction — is reported alongside.

Results land in ``BENCH_query.json`` keyed by scale
(``small`` for the CI smoke entry, ``full`` for the paper-scale n=1000
entry); ``scripts/check_bench_regression.py --metric batch_throughput
--metric single_query`` gates the ratios against the committed baseline.
``REPRO_SCALE=full`` runs the acceptance workload (n=1000, 400 requests,
>=5x batch throughput over scalar).
"""

import json
import os
import time
from pathlib import Path

from repro.core import HFCFramework
from repro.experiments import WorkloadConfig, ascii_table, generate_requests
from repro.routing.providers import CoordinateProvider

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_query.json"
SEED = 7


def _workload():
    """(scale, proxies, requests) for the current scale."""
    full = os.environ.get("REPRO_SCALE", "small").strip().lower()
    if full in ("full", "1", "1.0"):
        return "full", 1000, 400
    return "small", 250, 120


class _Environment:
    """Minimal environment view for generate_requests (no client set)."""

    def __init__(self, framework):
        self.framework = framework
        self.client_proxies = []


ROUNDS = 3


def _best_of(route, requests, rounds=ROUNDS):
    """Route the workload *rounds* times; returns (paths, [seconds...]).

    The paths of every round must match — a cheap internal determinism
    check on top of the cross-engine comparison below.
    """
    paths, seconds = None, []
    for _ in range(rounds):
        start = time.perf_counter()
        result = route(requests)
        seconds.append(time.perf_counter() - start)
        assert paths is None or result == paths
        paths = result
    return paths, seconds


def _route_serial(router, requests):
    return _best_of(
        lambda batch: [router.route(request) for request in batch], requests
    )


def _route_batch(router, requests):
    return _best_of(router.route_many, requests)


def _merge_result(scale, entry):
    """Rewrite BENCH_query.json, preserving the other scales' entries."""
    existing = {}
    if RESULT_PATH.exists():
        existing = json.loads(RESULT_PATH.read_text()).get("entries", {})
    existing[scale] = entry
    snapshot = {
        "bench": "query",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "entries": existing,
    }
    RESULT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")


def test_batched_query_speedup(benchmark, emit):
    scale, proxy_count, request_count = _workload()
    framework = HFCFramework.build(proxy_count=proxy_count, seed=SEED)
    requests = generate_requests(
        _Environment(framework),
        WorkloadConfig(request_count=request_count),
        seed=SEED + 1,
    )

    # the pre-batching configuration: scalar relaxation, no block memo
    scalar_router = framework.hierarchical_router(csp_engine="reference")
    scalar_router._provider = CoordinateProvider(framework.hfc.space, memoize=False)
    single_router = framework.hierarchical_router()
    batch_router = framework.hierarchical_router()

    def run():
        scalar_paths, scalar_times = _route_serial(scalar_router, requests)
        single_paths, single_times = _route_serial(single_router, requests)
        batch_paths, batch_times = _route_batch(batch_router, requests)
        return (
            scalar_paths, scalar_times,
            single_paths, single_times,
            batch_paths, batch_times,
        )

    (
        scalar_paths, scalar_times,
        single_paths, single_times,
        batch_paths, batch_times,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    # Like-for-like: every engine resolves every request to the same path.
    assert single_paths == scalar_paths
    assert batch_paths == scalar_paths

    scalar_seconds = min(scalar_times)
    single_seconds = min(single_times)
    batch_seconds = min(batch_times)
    cold_seconds = batch_times[0]
    single_ratio = scalar_seconds / single_seconds
    batch_ratio = scalar_seconds / batch_seconds
    cold_ratio = scalar_seconds / cold_seconds
    emit(
        "query_speedup",
        f"Batched query engine — n={proxy_count}, {request_count} requests, "
        f"best of {ROUNDS} (bit-identical paths)\n"
        + ascii_table(
            ["engine", "seconds", "requests/s", "vs scalar"],
            [
                [
                    "scalar per-request",
                    f"{scalar_seconds:.3f}",
                    f"{request_count / scalar_seconds:.0f}",
                    "1.0x",
                ],
                [
                    "vectorized per-request",
                    f"{single_seconds:.3f}",
                    f"{request_count / single_seconds:.0f}",
                    f"{single_ratio:.2f}x",
                ],
                [
                    "route_many",
                    f"{batch_seconds:.3f}",
                    f"{request_count / batch_seconds:.0f}",
                    f"{batch_ratio:.2f}x",
                ],
                [
                    "route_many (cold call)",
                    f"{cold_seconds:.3f}",
                    f"{request_count / cold_seconds:.0f}",
                    f"{cold_ratio:.2f}x",
                ],
            ],
        ),
    )

    entry = {
        "proxies": proxy_count,
        "requests": request_count,
        "rounds": ROUNDS,
        "scalar_seconds": round(scalar_seconds, 4),
        "single_seconds": round(single_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "batch_cold_seconds": round(cold_seconds, 4),
        "requests_per_second": round(request_count / batch_seconds, 1),
        "speedup": {
            "total": round(batch_ratio, 2),
            "batch_throughput": round(batch_ratio, 2),
            "single_query": round(single_ratio, 2),
        },
    }
    _merge_result(scale, entry)

    if scale == "full":
        # The PR's acceptance bar: >=5x batch throughput at n=1000.
        assert batch_ratio >= 5.0, (
            f"full-scale batch speedup {batch_ratio:.2f}x < 5x"
        )
    else:
        assert batch_ratio > 1.0, (
            f"batched routing slower than scalar ({batch_ratio:.2f}x)"
        )
