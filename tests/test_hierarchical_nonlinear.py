"""Hierarchical routing with NON-LINEAR service graphs.

The paper notes (Section 5.1) that the inter-cluster solution "can be
easily extended to also consider non-linear service graphs, as shown in
[11]" — our cluster-level relaxations operate on arbitrary service DAGs, so
these tests exercise that extension end to end.
"""

import random

import pytest

from repro.routing import HierarchicalRouter, validate_path
from repro.services import ServiceGraph, ServiceRequest, branching_graph
from repro.util.errors import NoFeasiblePathError


def random_branching_request(framework, rng):
    names = list(framework.catalog.names)
    sg = branching_graph(
        chains=[
            [rng.choice(names) for _ in range(rng.randint(1, 2))],
            [rng.choice(names) for _ in range(rng.randint(1, 2))],
        ],
        tail=[rng.choice(names) for _ in range(rng.randint(1, 3))],
    )
    src, dst = rng.sample(framework.overlay.proxies, 2)
    return ServiceRequest(src, sg, dst)


class TestNonLinearHierarchical:
    @pytest.mark.parametrize("method", ["backtrack", "exact", "external"])
    def test_paths_validate(self, framework, method):
        router = HierarchicalRouter(framework.hfc, method=method)
        rng = random.Random(61)
        for _ in range(10):
            request = random_branching_request(framework, rng)
            path = router.route(request)
            validate_path(path, request, framework.overlay)

    def test_chosen_slots_form_configuration(self, framework):
        router = HierarchicalRouter(framework.hfc)
        rng = random.Random(62)
        for _ in range(10):
            request = random_branching_request(framework, rng)
            result = router.route_detailed(request)
            slots = [slot for slot, _ in result.csp.assignment]
            assert request.service_graph.is_configuration(slots)

    def test_dead_branch_routed_around(self, framework):
        """A branch containing an unavailable service must be avoided, not
        fatal, when an alternative configuration exists."""
        available = next(iter(framework.overlay.placement[framework.overlay.proxies[0]]))
        sg = branching_graph(
            chains=[["ghost-service"], [available]],
            tail=[available],
        )
        src, dst = framework.overlay.proxies[0], framework.overlay.proxies[1]
        request = ServiceRequest(src, sg, dst)
        router = HierarchicalRouter(framework.hfc)
        path = router.route(request)
        validate_path(path, request, framework.overlay)
        assert all(h.service != "ghost-service" for h in path.service_hops())

    def test_all_branches_dead_is_infeasible(self, framework):
        sg = branching_graph(chains=[["ghost-a"], ["ghost-b"]], tail=["ghost-c"])
        request = ServiceRequest(
            framework.overlay.proxies[0], sg, framework.overlay.proxies[1]
        )
        with pytest.raises(NoFeasiblePathError):
            HierarchicalRouter(framework.hfc).route(request)

    def test_skip_edges_honoured(self, framework):
        """A direct head->sink edge may be used, skipping the middle slot."""
        proxies = framework.overlay.proxies
        a = next(iter(framework.overlay.placement[proxies[0]]))
        c = next(iter(framework.overlay.placement[proxies[1]]))
        sg = ServiceGraph(
            services={0: a, 1: "ghost-middle", 2: c},
            edges={(0, 1), (1, 2), (0, 2)},
        )
        request = ServiceRequest(proxies[2], sg, proxies[3])
        path = HierarchicalRouter(framework.hfc).route(request)
        validate_path(path, request, framework.overlay)
        assert [h.slot for h in path.service_hops()] == [0, 2]

    def test_nonlinear_matches_best_linearisation(self, framework):
        """On the CSP *estimate*, solving the non-linear SG at once must be
        at least as good as the best per-configuration linear solve."""
        from repro.services import linear_graph

        router = HierarchicalRouter(framework.hfc)
        rng = random.Random(63)
        for _ in range(5):
            request = random_branching_request(framework, rng)
            whole = router.cluster_level_path(request).estimated_cost
            per_config = []
            for config in request.service_graph.configurations():
                names = [request.service_graph.service_of(s) for s in config]
                sub = ServiceRequest(
                    request.source_proxy, linear_graph(names),
                    request.destination_proxy,
                )
                try:
                    per_config.append(router.cluster_level_path(sub).estimated_cost)
                except NoFeasiblePathError:
                    continue
            assert per_config
            assert whole <= min(per_config) + 1e-9
