"""Tests for framework persistence (JSON and binary snapshot round trips)."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.membership import DynamicOverlay
from repro.persistence import (
    FORMAT_VERSION,
    SNAPSHOT_FORMAT_VERSION,
    framework_from_dict,
    framework_to_dict,
    load_framework,
    load_snapshot,
    save_framework,
    save_snapshot,
)
from repro.routing import HierarchicalRouter, validate_path
from repro.routing.batch import query_tables
from repro.state.protocol import StateDistributionProtocol
from repro.util.errors import ReproError
from repro.util.rng import ensure_rng


@pytest.fixture(scope="module")
def restored(tiny_framework, tmp_path_factory):
    path = tmp_path_factory.mktemp("artifacts") / "framework.json"
    save_framework(tiny_framework, str(path))
    return load_framework(str(path))


class TestRoundTrip:
    def test_structure_preserved(self, tiny_framework, restored):
        assert restored.overlay.proxies == tiny_framework.overlay.proxies
        assert restored.overlay.placement == tiny_framework.overlay.placement
        assert restored.clustering.labels == tiny_framework.clustering.labels
        assert restored.hfc.borders == tiny_framework.hfc.borders
        assert list(restored.catalog.names) == list(tiny_framework.catalog.names)

    def test_physical_graph_preserved(self, tiny_framework, restored):
        a = tiny_framework.physical.graph
        b = restored.physical.graph
        assert a.node_count == b.node_count
        assert sorted(a.edges()) == sorted(b.edges())

    def test_coordinates_preserved(self, tiny_framework, restored):
        for proxy in tiny_framework.overlay.proxies:
            assert restored.space.coordinate(proxy) == pytest.approx(
                tiny_framework.space.coordinate(proxy)
            )

    def test_embedding_report_preserved(self, tiny_framework, restored):
        assert (
            restored.embedding_report.landmark_ids
            == tiny_framework.embedding_report.landmark_ids
        )
        assert restored.embedding_report.measurement_count == (
            tiny_framework.embedding_report.measurement_count
        )

    def test_routing_identical(self, tiny_framework, restored):
        """Same overlay, same coordinates, same borders -> same paths."""
        original = HierarchicalRouter(tiny_framework.hfc)
        loaded = HierarchicalRouter(restored.hfc)
        for seed in range(8):
            request = tiny_framework.random_request(seed=seed)
            a = original.route(request)
            b = loaded.route(request)
            assert a.hops == b.hops
            validate_path(b, request, restored.overlay)

    def test_describe_matches(self, tiny_framework, restored):
        assert restored.describe() == tiny_framework.describe()

    def test_config_preserved(self, tiny_framework, restored):
        assert restored.config == tiny_framework.config


class TestFormatGuard:
    def test_wrong_version_rejected(self, tiny_framework):
        payload = framework_to_dict(tiny_framework)
        payload["format_version"] = 999
        with pytest.raises(ReproError):
            framework_from_dict(payload)

    def test_version_constant_written(self, tiny_framework):
        payload = framework_to_dict(tiny_framework)
        assert payload["format_version"] == FORMAT_VERSION


# -- binary snapshots --------------------------------------------------------------


@pytest.fixture(scope="module")
def binary_snapshot(tiny_framework, tmp_path_factory):
    path = tmp_path_factory.mktemp("artifacts") / "overlay.npz"
    save_snapshot(tiny_framework, str(path))
    return load_snapshot(str(path))


class TestBinarySnapshot:
    def test_routing_matrices_bit_exact(self, tiny_framework, binary_snapshot):
        route_a, true_a = tiny_framework.hfc.routing_matrices()
        route_b, true_b = binary_snapshot.framework.hfc.routing_matrices()
        assert np.array_equal(route_a, route_b)
        assert np.array_equal(true_a, true_b)

    def test_query_tables_bit_exact(self, tiny_framework, binary_snapshot):
        a = query_tables(tiny_framework.hfc)
        b = query_tables(binary_snapshot.framework.hfc)
        assert a.border_list == b.border_list
        assert np.array_equal(a.ext, b.ext)
        assert np.array_equal(a.d_border, b.d_border)

    def test_structure_preserved(self, tiny_framework, binary_snapshot):
        restored = binary_snapshot.framework
        assert restored.overlay.proxies == tiny_framework.overlay.proxies
        assert restored.overlay.placement == tiny_framework.overlay.placement
        assert restored.hfc.borders == tiny_framework.hfc.borders
        assert restored.describe() == tiny_framework.describe()

    def test_columnar_attached(self, binary_snapshot):
        state = binary_snapshot.framework.hfc.columnar
        assert state is binary_snapshot.columnar
        state.validate()

    def test_no_state_plane_by_default(self, binary_snapshot):
        assert binary_snapshot.state_plane is None

    def test_wrong_version_rejected(self, tiny_framework, tmp_path):
        path = tmp_path / "overlay.npz"
        save_snapshot(tiny_framework, str(path))
        with np.load(str(path), allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        meta = json.loads(str(arrays["meta"]))
        assert meta["format_version"] == SNAPSHOT_FORMAT_VERSION
        meta["format_version"] = 999
        arrays["meta"] = np.array(json.dumps(meta))
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ReproError):
            load_snapshot(str(path))


class TestStatePlaneRoundTrip:
    """Post-PR3 state survives a snapshot: revisions, incarnations, streams."""

    @pytest.fixture(scope="class")
    def protocol(self, tiny_framework):
        protocol = StateDistributionProtocol(
            tiny_framework.hfc, seed=11, mode="delta"
        )
        protocol.run(max_time=6000.0, stop_on_convergence=False)
        return protocol

    @pytest.fixture(scope="class")
    def plane(self, protocol):
        return protocol.snapshot_state_plane()

    def test_plane_embeds_exactly(self, tiny_framework, plane, tmp_path_factory):
        path = tmp_path_factory.mktemp("artifacts") / "warm.npz"
        save_snapshot(tiny_framework, str(path), state_plane=plane)
        snap = load_snapshot(str(path))
        assert snap.state_plane == plane

    def test_capability_revisions_preserved(self, protocol, plane):
        for proxy, state in protocol.states.items():
            capture = plane[str(proxy)]["state"]
            assert capture["sct_p"]["revision"] == state.sct_p.revision
            assert capture["sct_c"]["revision"] == state.sct_c.revision

    def test_emitter_incarnations_captured(self, protocol, plane):
        for proxy in protocol.hfc.overlay.proxies:
            agent = protocol._agent_of[proxy]
            assert (
                plane[str(proxy)]["emitter"]["incarnation"]
                == agent.emitter.incarnation
            )

    def test_warm_restore_keeps_learned_tables(self, tiny_framework, plane):
        fresh = StateDistributionProtocol(
            tiny_framework.hfc, seed=12, mode="delta"
        )
        proxy = tiny_framework.overlay.proxies[0]
        capture = plane[str(proxy)]
        fresh.restore_state(proxy, capture)
        restored = fresh.states[proxy]
        saved_keys = {
            tuple(k["tuple"]) if isinstance(k, dict) else k
            for k, _, _ in capture["state"]["sct_c"]["entries"]
        }
        assert set(restored.sct_c._entries) == saved_keys
        # The emitter does not resume mid-stream: its incarnation advances
        # past the saved one so peers accept the post-restart streams.
        saved_incarnation = capture["emitter"]["incarnation"]
        agent = fresh._agent_of[proxy]
        assert agent.emitter.incarnation > saved_incarnation
        assert agent.emitter._seq == {}


class TestTwinOverlay:
    """Hypothesis: a churned overlay and its snapshot restore are twins."""

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16 - 1), leaves=st.integers(1, 6))
    def test_restore_is_bit_exact(
        self, tiny_framework, tmp_path_factory, seed, leaves
    ):
        rng = ensure_rng(seed)
        dyn = DynamicOverlay(
            tiny_framework, restructure_tolerance=None, track_quality=False
        )
        for _ in range(leaves):
            if dyn.size <= 4:
                break
            dyn.leave(rng.choice(dyn.proxies))

        path = tmp_path_factory.mktemp("twin") / f"overlay-{seed}.npz"
        save_snapshot(dyn, str(path))
        snap = load_snapshot(str(path))
        twin = DynamicOverlay.from_snapshot(
            snap, restructure_tolerance=None, track_quality=False
        )

        assert twin.version == dyn.version
        assert twin.hfc.borders == dyn.hfc.borders
        route_a, true_a = dyn.hfc.routing_matrices()
        route_b, true_b = twin.hfc.routing_matrices()
        assert np.array_equal(route_a, route_b)
        assert np.array_equal(true_a, true_b)

        # Same topology + same seed => identical delta streams on the wire.
        report_a = StateDistributionProtocol(
            dyn.hfc, seed=21, mode="delta"
        ).run(max_time=4000.0, stop_on_convergence=False)
        report_b = StateDistributionProtocol(
            twin.hfc, seed=21, mode="delta"
        ).run(max_time=4000.0, stop_on_convergence=False)
        assert report_a.total_messages == report_b.total_messages
        assert report_a.total_size == report_b.total_size
        assert report_a.messages_by_kind == report_b.messages_by_kind
        assert report_a.converged_at == report_b.converged_at
