"""Tests for framework persistence (JSON save/load round trips)."""

import pytest

from repro.persistence import (
    FORMAT_VERSION,
    framework_from_dict,
    framework_to_dict,
    load_framework,
    save_framework,
)
from repro.routing import HierarchicalRouter, validate_path
from repro.util.errors import ReproError


@pytest.fixture(scope="module")
def restored(tiny_framework, tmp_path_factory):
    path = tmp_path_factory.mktemp("artifacts") / "framework.json"
    save_framework(tiny_framework, str(path))
    return load_framework(str(path))


class TestRoundTrip:
    def test_structure_preserved(self, tiny_framework, restored):
        assert restored.overlay.proxies == tiny_framework.overlay.proxies
        assert restored.overlay.placement == tiny_framework.overlay.placement
        assert restored.clustering.labels == tiny_framework.clustering.labels
        assert restored.hfc.borders == tiny_framework.hfc.borders
        assert list(restored.catalog.names) == list(tiny_framework.catalog.names)

    def test_physical_graph_preserved(self, tiny_framework, restored):
        a = tiny_framework.physical.graph
        b = restored.physical.graph
        assert a.node_count == b.node_count
        assert sorted(a.edges()) == sorted(b.edges())

    def test_coordinates_preserved(self, tiny_framework, restored):
        for proxy in tiny_framework.overlay.proxies:
            assert restored.space.coordinate(proxy) == pytest.approx(
                tiny_framework.space.coordinate(proxy)
            )

    def test_embedding_report_preserved(self, tiny_framework, restored):
        assert (
            restored.embedding_report.landmark_ids
            == tiny_framework.embedding_report.landmark_ids
        )
        assert restored.embedding_report.measurement_count == (
            tiny_framework.embedding_report.measurement_count
        )

    def test_routing_identical(self, tiny_framework, restored):
        """Same overlay, same coordinates, same borders -> same paths."""
        original = HierarchicalRouter(tiny_framework.hfc)
        loaded = HierarchicalRouter(restored.hfc)
        for seed in range(8):
            request = tiny_framework.random_request(seed=seed)
            a = original.route(request)
            b = loaded.route(request)
            assert a.hops == b.hops
            validate_path(b, request, restored.overlay)

    def test_describe_matches(self, tiny_framework, restored):
        assert restored.describe() == tiny_framework.describe()

    def test_config_preserved(self, tiny_framework, restored):
        assert restored.config == tiny_framework.config


class TestFormatGuard:
    def test_wrong_version_rejected(self, tiny_framework):
        payload = framework_to_dict(tiny_framework)
        payload["format_version"] = 999
        with pytest.raises(ReproError):
            framework_from_dict(payload)

    def test_version_constant_written(self, tiny_framework):
        payload = framework_to_dict(tiny_framework)
        assert payload["format_version"] == FORMAT_VERSION
