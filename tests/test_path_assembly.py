"""Unit tests for path assembly internals (merge_consecutive_hops).

Every router funnels its hops through this helper; its contract is subtle
(relays collapse into adjacent hops on the same proxy, service hops never
disappear), so it gets its own adversarial test set.
"""

from repro.routing.path import Hop, merge_consecutive_hops


def hops(*specs):
    """specs: (proxy, service) pairs; service None means relay."""
    return [Hop(proxy=p, service=s, slot=(i if s else None))
            for i, (p, s) in enumerate(specs)]


class TestMergeConsecutive:
    def test_distinct_proxies_untouched(self):
        sequence = hops((1, None), (2, "a"), (3, None))
        assert merge_consecutive_hops(sequence) == sequence

    def test_relay_then_service_same_proxy_keeps_service(self):
        merged = merge_consecutive_hops(hops((1, None), (1, "a")))
        assert len(merged) == 1
        assert merged[0].service == "a"

    def test_service_then_relay_same_proxy_keeps_service(self):
        merged = merge_consecutive_hops(hops((1, "a"), (1, None)))
        assert len(merged) == 1
        assert merged[0].service == "a"

    def test_two_services_same_proxy_both_kept(self):
        merged = merge_consecutive_hops(hops((1, "a"), (1, "b")))
        assert [h.service for h in merged] == ["a", "b"]

    def test_double_relay_same_proxy_collapses(self):
        merged = merge_consecutive_hops(hops((1, None), (1, None)))
        assert len(merged) == 1
        assert merged[0].service is None

    def test_relay_sandwich(self):
        """relay, service, relay on one proxy -> just the service."""
        merged = merge_consecutive_hops(hops((1, None), (1, "a"), (1, None)))
        assert len(merged) == 1
        assert merged[0].service == "a"

    def test_triple_service_run(self):
        merged = merge_consecutive_hops(hops((1, "a"), (1, "b"), (1, "c")))
        assert [h.service for h in merged] == ["a", "b", "c"]

    def test_composition_junction_scenario(self):
        """Child paths meeting at a border: ...-/b | -/b, s/x... merges the
        duplicated border relay but keeps everything else."""
        child1 = hops((10, None), (11, "a"), (12, None))
        child2 = hops((12, None), (13, "b"), (14, None))
        merged = merge_consecutive_hops(child1 + child2)
        proxies = [h.proxy for h in merged]
        assert proxies == [10, 11, 12, 13, 14]

    def test_service_count_always_preserved(self):
        """No merge may ever drop a service application."""
        import random

        rng = random.Random(3)
        for _ in range(200):
            sequence = []
            for i in range(rng.randint(1, 10)):
                proxy = rng.randint(1, 3)
                service = rng.choice([None, "a", "b"])
                sequence.append(Hop(proxy=proxy, service=service,
                                    slot=i if service else None))
            merged = merge_consecutive_hops(sequence)
            assert (
                [h.service for h in merged if h.service is not None]
                == [h.service for h in sequence if h.service is not None]
            )
            # no consecutive relay duplicates survive
            for a, b in zip(merged, merged[1:]):
                assert not (
                    a.proxy == b.proxy
                    and a.service is None
                    and b.service is None
                )

    def test_empty_input(self):
        assert merge_consecutive_hops([]) == []
