"""Tests for the HFCFramework facade and FrameworkConfig."""

import pytest

from repro.core import FrameworkConfig, HFCFramework
from repro.routing import validate_path
from repro.util.errors import ReproError


class TestConfig:
    def test_defaults_are_paper_values(self):
        config = FrameworkConfig()
        assert config.landmark_count == 10
        assert config.dimension == 2
        assert config.min_services_per_proxy == 4
        assert config.max_services_per_proxy == 10
        assert config.mesh_weight == "coords"

    def test_landmarks_must_cover_dimension(self):
        with pytest.raises(ReproError):
            FrameworkConfig(landmark_count=2, dimension=5)

    def test_bad_probes(self):
        with pytest.raises(ReproError):
            FrameworkConfig(probes=0)

    def test_bad_services_bounds(self):
        with pytest.raises(ReproError):
            FrameworkConfig(min_services_per_proxy=9, max_services_per_proxy=3)

    def test_bad_mesh_weight(self):
        with pytest.raises(ReproError):
            FrameworkConfig(mesh_weight="psychic")

    def test_physical_size_ratio(self):
        config = FrameworkConfig()
        assert config.physical_size_for(1000) == 1200
        assert config.physical_size_for(250) == 300

    def test_physical_size_explicit_override(self):
        config = FrameworkConfig(physical_nodes=500)
        assert config.physical_size_for(10) == 500

    def test_physical_size_floor_for_tiny_overlays(self):
        config = FrameworkConfig()
        # must remain generatable: >= transit + 2 per stub domain
        assert config.physical_size_for(10) >= 84


class TestBuild:
    def test_build_pipeline_complete(self, framework):
        assert framework.overlay.size == 80
        assert framework.space.dimension == 2
        assert framework.clustering.cluster_count >= 1
        assert framework.hfc.cluster_count == framework.clustering.cluster_count
        assert len(framework.catalog) > 0

    def test_every_proxy_clustered_and_placed(self, framework):
        for proxy in framework.overlay.proxies:
            framework.clustering.cluster_of(proxy)
            assert len(framework.overlay.placement[proxy]) >= 4

    def test_describe_mentions_key_facts(self, framework):
        text = framework.describe()
        assert "80 proxies" in text
        assert "clusters" in text

    def test_too_small_rejected(self):
        with pytest.raises(ReproError):
            HFCFramework.build(proxy_count=1)

    def test_deterministic_for_seed(self):
        a = HFCFramework.build(
            proxy_count=40, config=FrameworkConfig(physical_nodes=150), seed=3
        )
        b = HFCFramework.build(
            proxy_count=40, config=FrameworkConfig(physical_nodes=150), seed=3
        )
        assert a.overlay.proxies == b.overlay.proxies
        assert a.clustering.labels == b.clustering.labels
        assert a.hfc.borders == b.hfc.borders

    def test_seeds_differ(self):
        a = HFCFramework.build(
            proxy_count=40, config=FrameworkConfig(physical_nodes=150), seed=3
        )
        b = HFCFramework.build(
            proxy_count=40, config=FrameworkConfig(physical_nodes=150), seed=4
        )
        assert a.overlay.proxies != b.overlay.proxies


class TestRouters:
    def test_all_routers_route_the_same_request(self, tiny_framework):
        request = tiny_framework.random_request(seed=5)
        overlay = tiny_framework.overlay
        routers = [
            tiny_framework.hierarchical_router(),
            tiny_framework.mesh_router(seed=1),
            tiny_framework.full_state_router(),
            tiny_framework.flat_router(),
            tiny_framework.oracle_router(),
        ]
        for router in routers:
            validate_path(router.route(request), request, overlay)

    def test_oracle_is_lower_bound(self, tiny_framework):
        """No strategy may beat true-delay optimal routing on average."""
        overlay = tiny_framework.overlay
        oracle = tiny_framework.oracle_router()
        others = [
            tiny_framework.hierarchical_router(),
            tiny_framework.mesh_router(seed=1),
            tiny_framework.full_state_router(),
        ]
        requests = [tiny_framework.random_request(seed=s) for s in range(25)]
        oracle_total = sum(
            oracle.route(r).true_delay(overlay) for r in requests
        )
        for router in others:
            total = sum(router.route(r).true_delay(overlay) for r in requests)
            assert total >= oracle_total - 1e-6


class TestRequestsAndState:
    def test_random_request_length_bounds(self, tiny_framework):
        for s in range(20):
            request = tiny_framework.random_request(
                min_length=2, max_length=5, seed=s
            )
            assert 2 <= request.length <= 5

    def test_random_request_distinct_endpoints(self, tiny_framework):
        for s in range(20):
            request = tiny_framework.random_request(seed=s)
            assert request.source_proxy != request.destination_proxy

    def test_overhead_shapes(self, framework):
        coords = framework.coordinates_overhead()
        service = framework.service_overhead()
        assert coords["flat"] == framework.overlay.size
        assert coords["hierarchical"] < coords["flat"]
        assert service["hierarchical"] < service["flat"]

    def test_run_state_protocol(self, tiny_framework):
        report = tiny_framework.run_state_protocol(seed=2)
        assert report.converged_at is not None
