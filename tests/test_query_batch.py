"""Batched query engine: equivalence, plumbing, and provider-memo tests.

``route_many`` must be observationally indistinguishable from a per-request
``route()`` loop — same paths bit-for-bit, same error types and messages
for infeasible requests, same cache statistics — for every CSP method and
engine, with and without the process-pool conquer fan-out. The property
tests drive fully synthetic overlays (arbitrary coordinates, placements,
clusterings) through both code paths; the framework tests cover the
production wiring (cached router, flat routers, telemetry counters,
``resolve_requests``).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.mstcluster import Clustering
from repro.coords.space import CoordinateSpace
from repro.experiments import resolve_requests
from repro.netsim.physical import PhysicalNetwork
from repro.netsim.topology import waxman
from repro.overlay.hfc import build_hfc
from repro.overlay.network import OverlayNetwork
from repro.routing import BatchRouteResult, HierarchicalRouter
from repro.routing.cache import CachedHierarchicalRouter
from repro.routing.providers import CoordinateProvider, TrueDelayProvider
from repro.services import ServiceRequest, linear_graph
from repro.services.graph import branching_graph
from repro.telemetry import Telemetry
from repro.util.errors import NoFeasiblePathError

#: one shared physical substrate; synthetic overlays draw proxies from it
_PHYSICAL = PhysicalNetwork(waxman(40, seed=1234), noise=0.0, seed=99)

METHODS = ("backtrack", "exact", "external")


@st.composite
def batch_case(draw):
    """A synthetic overlay plus a small batch of requests.

    The batch mixes linear and branching service graphs and (sometimes)
    requests naming a service no proxy offers — the infeasible outcome
    must round-trip through the batch engine unchanged.
    """
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    n = draw(st.integers(min_value=4, max_value=14))
    proxies = _PHYSICAL.graph.nodes()[:n]

    coords = {
        p: (
            draw(st.floats(-100, 100, allow_nan=False, allow_infinity=False)),
            draw(st.floats(-100, 100, allow_nan=False, allow_infinity=False)),
        )
        for p in proxies
    }
    space = CoordinateSpace(coords)

    catalog = [f"s{i}" for i in range(draw(st.integers(2, 6)))]
    placement = {
        p: frozenset(rng.sample(catalog, rng.randint(1, len(catalog))))
        for p in proxies
    }
    overlay = OverlayNetwork(
        physical=_PHYSICAL, proxies=list(proxies), placement=placement, space=space
    )

    cluster_count = draw(st.integers(1, min(4, n)))
    labels = {}
    for i, p in enumerate(proxies):
        labels[p] = i if i < cluster_count else rng.randrange(cluster_count)
    clusters = [[] for _ in range(cluster_count)]
    for p in proxies:
        clusters[labels[p]].append(p)
    clustering = Clustering(clusters=[sorted(c) for c in clusters], labels=labels)
    hfc = build_hfc(overlay, clustering)

    requests = []
    for _ in range(draw(st.integers(1, 5))):
        length = rng.randint(1, 4)
        names = [rng.choice(catalog) for _ in range(length)]
        if rng.random() < 0.2:
            # a service nobody offers: the request must come back infeasible
            names[rng.randrange(length)] = "nowhere"
        if rng.random() < 0.25 and length >= 3:
            sg = branching_graph(chains=[[names[0]], [names[1]]], tail=names[2:])
        else:
            sg = linear_graph(names)
        src, dst = rng.sample(list(proxies), 2)
        requests.append(ServiceRequest(src, sg, dst))
    return hfc, requests


def _scalar_outcomes(router, requests):
    """(paths, errors) of a per-request route() loop."""
    paths, errors = [], []
    for request in requests:
        try:
            paths.append(router.route(request))
            errors.append(None)
        except NoFeasiblePathError as exc:
            paths.append(None)
            errors.append(exc)
    return paths, errors


def _assert_same_outcomes(result, expected_paths, expected_errors):
    assert list(result.paths) == list(expected_paths)
    assert len(result.errors) == len(expected_errors)
    for got, want in zip(result.errors, expected_errors):
        assert (got is None) == (want is None)
        if got is not None:
            assert type(got) is type(want)
            assert str(got) == str(want)


# -- property: batch == scalar on arbitrary structures -------------------------


@settings(max_examples=30, deadline=None)
@given(batch_case())
def test_route_many_matches_scalar_loop(case):
    """Property: route_many == a scalar reference-engine loop, per method."""
    hfc, requests = case
    for method in METHODS:
        scalar = HierarchicalRouter(hfc, method=method, csp_engine="reference")
        batch = HierarchicalRouter(hfc, method=method)
        expected_paths, expected_errors = _scalar_outcomes(scalar, requests)
        result = batch.route_many_detailed(requests)
        _assert_same_outcomes(result, expected_paths, expected_errors)
        assert result.ok_count == sum(1 for p in expected_paths if p is not None)
        assert result.infeasible_count == sum(
            1 for e in expected_errors if e is not None
        )


@settings(max_examples=30, deadline=None)
@given(batch_case())
def test_vectorized_csp_matches_reference(case):
    """Property: both CSP engines return identical cluster-level paths."""
    hfc, requests = case
    vectorized = HierarchicalRouter(hfc)
    reference = HierarchicalRouter(hfc, csp_engine="reference")
    for request in requests:
        try:
            expected = reference.cluster_level_path(request)
        except NoFeasiblePathError as exc:
            with pytest.raises(NoFeasiblePathError) as caught:
                vectorized.cluster_level_path(request)
            assert str(caught.value) == str(exc)
            continue
        assert vectorized.cluster_level_path(request) == expected


@settings(max_examples=15, deadline=None)
@given(batch_case())
def test_route_many_with_conquer_pool(case):
    """Property: the process-pool conquer fan-out is result-invariant."""
    hfc, requests = case
    serial = HierarchicalRouter(hfc)
    pooled = HierarchicalRouter(hfc, query_workers=2)
    expected = serial.route_many_detailed(requests)
    result = pooled.route_many_detailed(requests, workers=2)
    _assert_same_outcomes(result, expected.paths, expected.errors)


# -- framework wiring ----------------------------------------------------------


def _workload(framework, count=25, infeasible=False):
    requests = [framework.random_request(seed=seed) for seed in range(count)]
    if infeasible:
        src, dst = framework.overlay.proxies[:2]
        requests.insert(
            3, ServiceRequest(src, linear_graph(["no-such-service"]), dst)
        )
    return requests


def test_route_many_matches_route_on_framework(framework):
    requests = _workload(framework)
    router = framework.hierarchical_router()
    expected = [framework.hierarchical_router().route(r) for r in requests]
    assert router.route_many(requests) == expected


def test_route_many_empty_batch(framework):
    router = framework.hierarchical_router()
    assert router.route_many([]) == []
    detailed = router.route_many_detailed([])
    assert len(detailed) == 0
    assert detailed.ok_count == detailed.infeasible_count == 0


def test_route_many_raises_like_route(framework):
    requests = _workload(framework, count=8, infeasible=True)
    router = framework.hierarchical_router()
    with pytest.raises(NoFeasiblePathError) as scalar_err:
        for request in requests:
            router.route(request)
    with pytest.raises(NoFeasiblePathError) as batch_err:
        router.route_many(requests)
    assert str(batch_err.value) == str(scalar_err.value)

    detailed = router.route_many_detailed(requests)
    assert detailed.infeasible_count == 1
    assert detailed.paths[3] is None  # the inserted infeasible request
    assert detailed.ok_count == len(requests) - 1
    with pytest.raises(NoFeasiblePathError):
        detailed.raise_first()


def test_cached_router_batch_reuse(framework):
    requests = _workload(framework)
    plain = framework.hierarchical_router()
    cached = framework.cached_hierarchical_router()
    first = cached.route_many(requests)
    assert first == plain.route_many(requests)
    misses = cached.stats.misses
    hits_before = cached.stats.hits
    # the second pass replays every CSP from the cache
    assert cached.route_many(requests) == first
    assert cached.stats.misses == misses
    assert cached.stats.hits > hits_before


def test_flat_route_many_matches_loop(framework):
    for router in (framework.flat_router(), framework.full_state_router()):
        requests = _workload(framework, count=15)
        expected_paths, expected_errors = _scalar_outcomes(router, requests)
        result = router.route_many_detailed(requests)
        _assert_same_outcomes(result, expected_paths, expected_errors)


def test_resolve_requests_dispatch(framework):
    requests = _workload(framework, count=10)
    batched = resolve_requests(framework.hierarchical_router(), requests)
    assert isinstance(batched, BatchRouteResult)
    assert batched.ok_count == len(requests)

    # mesh has no route_many: resolve_requests falls back to a scalar loop
    mesh = framework.mesh_router(seed=3)
    fallback = resolve_requests(mesh, requests)
    assert isinstance(fallback, BatchRouteResult)
    expected_paths, expected_errors = _scalar_outcomes(mesh, requests)
    _assert_same_outcomes(fallback, expected_paths, expected_errors)


def test_route_many_telemetry_counters(framework):
    telemetry = Telemetry()
    requests = _workload(framework, count=6, infeasible=True)
    router = HierarchicalRouter(framework.hfc, telemetry=telemetry)
    result = router.route_many_detailed(requests)
    registry = telemetry.registry
    assert registry.counter("routing.batch.batches", router="hierarchical").value == 1
    assert registry.counter(
        "routing.batch.requests", router="hierarchical"
    ).value == len(requests)
    assert registry.counter(
        "routing.requests", router="hierarchical", outcome="ok"
    ).value == result.ok_count
    assert registry.counter(
        "routing.requests", router="hierarchical", outcome="infeasible"
    ).value == result.infeasible_count == 1


# -- provider block memoization ------------------------------------------------


def test_coordinate_provider_memoizes_blocks(framework):
    provider = CoordinateProvider(framework.hfc.space)
    us = framework.overlay.proxies[:5]
    vs = framework.overlay.proxies[5:9]
    first = provider.block(us, vs)
    assert provider.block(us, vs) is first  # served from the memo

    plain = CoordinateProvider(framework.hfc.space, memoize=False)
    again = plain.block(us, vs)
    assert again is not plain.block(us, vs)
    assert np.array_equal(first, again)


def test_coordinate_provider_memo_drops_on_new_space(framework):
    provider = CoordinateProvider(framework.hfc.space)
    us = framework.overlay.proxies[:4]
    first = provider.block(us, us)
    # a replaced space object no longer matches the memo token
    provider.space = CoordinateSpace(
        {p: framework.hfc.space.coordinate(p) for p in framework.overlay.proxies}
    )
    second = provider.block(us, us)
    assert second is not first
    assert np.array_equal(first, second)


def test_true_delay_provider_memoizes_blocks(framework):
    provider = TrueDelayProvider(framework.overlay)
    us = framework.overlay.proxies[:6]
    vs = framework.overlay.proxies[2:7]
    first = provider.block(us, vs)
    assert provider.block(us, vs) is first
    assert np.array_equal(
        first, TrueDelayProvider(framework.overlay, memoize=False).block(us, vs)
    )


def test_true_delay_memo_no_thrash_with_cached_matrix(framework):
    """The overlay's cached matrix is one stable token: repeated block
    queries must be memo hits, never silent rebuild-and-replace."""
    provider = TrueDelayProvider(framework.overlay)
    us = framework.overlay.proxies[:6]
    vs = framework.overlay.proxies[6:10]
    blocks = [provider.block(us, vs) for _ in range(5)]
    assert all(b is blocks[0] for b in blocks)
    assert len(provider._memo) == 1  # one key, not five rebuilt entries


def test_true_delay_memo_drops_on_rebuilt_matrix(framework):
    provider = TrueDelayProvider(framework.overlay)
    us = framework.overlay.proxies[:4]
    first = provider.block(us, us)
    # force the overlay to re-materialise its delay matrix: a new array
    # object is a new token, so the memo must drop the old blocks
    framework.overlay._true_matrix = framework.overlay.true_delay_matrix().copy()
    second = provider.block(us, us)
    assert second is not first
    assert np.array_equal(first, second)
    assert provider.block(us, us) is second  # re-anchored on the new token


def test_block_memo_alternating_tokens_never_cross_serve():
    """A token flip clears the memo outright: entries stored under token A
    must never be served under token B, nor resurrected when A returns."""
    from repro.routing.providers import _BlockMemo

    memo = _BlockMemo(capacity=8)
    token_a, token_b = object(), object()
    key = (("u",), ("v",))
    block_a = np.arange(4.0).reshape(2, 2)
    block_b = block_a * 10.0

    assert memo.lookup(token_a, key) is None
    memo.store(key, block_a)
    assert memo.lookup(token_a, key) is block_a

    assert memo.lookup(token_b, key) is None  # token flip: cleared
    memo.store(key, block_b)
    assert memo.lookup(token_b, key) is block_b

    # flipping back to A must NOT serve block_b (or a stale block_a)
    assert memo.lookup(token_a, key) is None
    assert len(memo) == 0
