"""Tests for Dijkstra & friends, cross-validated against networkx."""


import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    all_pairs_distances,
    dijkstra,
    eccentricity,
    shortest_path,
    single_source_distances,
)
from repro.util.errors import GraphError


def line_graph(n):
    g = Graph()
    for i in range(n - 1):
        g.add_edge(i, i + 1, 1.0)
    return g


class TestDijkstraBasics:
    def test_distance_to_self_is_zero(self):
        g = line_graph(3)
        dist, _ = dijkstra(g, 0)
        assert dist[0] == 0.0

    def test_line_distances(self):
        g = line_graph(5)
        dist, _ = dijkstra(g, 0)
        assert dist == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}

    def test_parent_chain(self):
        g = line_graph(4)
        path, d = shortest_path(g, 0, 3)
        assert path == [0, 1, 2, 3]
        assert d == 3.0

    def test_prefers_lighter_detour(self):
        g = Graph()
        g.add_edge("s", "t", 10.0)
        g.add_edge("s", "m", 2.0)
        g.add_edge("m", "t", 3.0)
        path, d = shortest_path(g, "s", "t")
        assert path == ["s", "m", "t"]
        assert d == 5.0

    def test_unreachable_target_raises(self):
        g = Graph()
        g.add_node("a")
        g.add_node("b")
        with pytest.raises(GraphError):
            shortest_path(g, "a", "b")

    def test_unknown_source_raises(self):
        g = line_graph(2)
        with pytest.raises(GraphError):
            dijkstra(g, 99)

    def test_early_stop_with_targets(self):
        g = line_graph(100)
        dist, _ = dijkstra(g, 0, targets=[3])
        assert dist[3] == 3.0
        # far nodes were never settled
        assert 99 not in dist

    def test_heterogeneous_node_types_do_not_crash(self):
        g = Graph()
        g.add_edge("a", 1, 1.0)
        g.add_edge(1, (2, 3), 1.0)
        dist, _ = dijkstra(g, "a")
        assert dist[(2, 3)] == 2.0

    def test_zero_weight_edges(self):
        g = Graph()
        g.add_edge("a", "b", 0.0)
        g.add_edge("b", "c", 1.0)
        assert single_source_distances(g, "a")["c"] == 1.0


class TestHelpers:
    def test_all_pairs_against_each_single_source(self):
        g = line_graph(6)
        apsp = all_pairs_distances(g)
        for s in g.nodes():
            assert apsp[s] == single_source_distances(g, s)

    def test_all_pairs_subset_sources(self):
        g = line_graph(6)
        apsp = all_pairs_distances(g, sources=[0, 5])
        assert set(apsp) == {0, 5}

    def test_eccentricity_of_line_end(self):
        g = line_graph(5)
        assert eccentricity(g, 0) == 4.0
        assert eccentricity(g, 2) == 2.0


@st.composite
def random_weighted_graph(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(0.1, 10.0, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    g = Graph()
    g.add_nodes(range(n))
    for u, v, w in edges:
        if u != v:
            g.add_edge(u, v, w)
    return g


@settings(max_examples=60, deadline=None)
@given(random_weighted_graph())
def test_dijkstra_matches_networkx(g):
    """Property: our Dijkstra agrees with networkx on random graphs."""
    nxg = nx.Graph()
    nxg.add_nodes_from(g.nodes())
    for u, v, w in g.edges():
        nxg.add_edge(u, v, weight=w)
    ours = single_source_distances(g, 0)
    theirs = nx.single_source_dijkstra_path_length(nxg, 0)
    assert set(ours) == set(theirs)
    for node, d in theirs.items():
        assert ours[node] == pytest.approx(d)


@settings(max_examples=40, deadline=None)
@given(random_weighted_graph())
def test_shortest_path_length_consistent_with_distance(g):
    """Property: a reconstructed path's edge-weight sum equals its distance."""
    dist, parent = dijkstra(g, 0)
    for target, d in dist.items():
        if target == 0:
            continue
        path, pd = shortest_path(g, 0, target)
        assert pd == pytest.approx(d)
        total = sum(g.weight(a, b) for a, b in zip(path, path[1:]))
        assert total == pytest.approx(d)
