"""Tests for the bandwidth-QoS extension."""

import pytest

from repro.qos import (
    BandwidthAwareProvider,
    BandwidthModel,
    QoSHierarchicalRouter,
    cluster_pair_bandwidth,
    intra_cluster_bandwidth_stats,
    qos_flat_router,
)
from repro.routing import CoordinateProvider, validate_path
from repro.util.errors import NoFeasiblePathError, RoutingError

import numpy as np


@pytest.fixture(scope="module")
def model(framework):
    return BandwidthModel(framework.physical, seed=4)


class TestBandwidthModel:
    def test_every_physical_link_has_capacity(self, framework, model):
        for u, v, _ in framework.physical.graph.edges():
            assert model.link_capacity(u, v) > 0

    def test_capacity_symmetric_lookup(self, framework, model):
        u, v, _ = next(framework.physical.graph.edges())
        assert model.link_capacity(u, v) == model.link_capacity(v, u)

    def test_missing_link_raises(self, framework, model):
        nodes = framework.physical.graph.nodes()
        non_adjacent = None
        for a in nodes:
            for b in nodes:
                if a != b and not framework.physical.graph.has_edge(a, b):
                    non_adjacent = (a, b)
                    break
            if non_adjacent:
                break
        with pytest.raises(RoutingError):
            model.link_capacity(*non_adjacent)

    def test_transit_links_fatter_on_average(self, framework, model):
        kinds = framework.physical.topology.node_kind
        transit, stub = [], []
        for u, v, _ in framework.physical.graph.edges():
            cap = model.link_capacity(u, v)
            if kinds[u] == "transit" and kinds[v] == "transit":
                transit.append(cap)
            else:
                stub.append(cap)
        assert np.mean(transit) > np.mean(stub)

    def test_overlay_bandwidth_is_bottleneck(self, framework, model):
        u, v = framework.overlay.proxies[:2]
        route = framework.physical.route(u, v)
        expected = min(
            model.link_capacity(a, b) for a, b in zip(route, route[1:])
        )
        assert model.overlay_bandwidth(u, v) == pytest.approx(expected)

    def test_self_bandwidth_infinite(self, framework, model):
        p = framework.overlay.proxies[0]
        assert model.overlay_bandwidth(p, p) == float("inf")

    def test_path_bandwidth_min_of_hops(self, framework, model):
        p = framework.overlay.proxies[:3]
        expected = min(
            model.overlay_bandwidth(p[0], p[1]), model.overlay_bandwidth(p[1], p[2])
        )
        assert model.path_bandwidth(p) == pytest.approx(expected)

    def test_bad_ranges_rejected(self, framework):
        with pytest.raises(RoutingError):
            BandwidthModel(framework.physical, stub_range=(0.0, 5.0))


class TestBandwidthAwareProvider:
    def test_masks_thin_links(self, framework, model):
        base = CoordinateProvider(framework.space)
        provider = BandwidthAwareProvider(base, model, min_bandwidth=1e9)
        u, v = framework.overlay.proxies[:2]
        assert provider.pair(u, v) == float("inf")

    def test_zero_requirement_passthrough(self, framework, model):
        base = CoordinateProvider(framework.space)
        provider = BandwidthAwareProvider(base, model, min_bandwidth=0.0)
        u, v = framework.overlay.proxies[:2]
        assert provider.pair(u, v) == pytest.approx(base.pair(u, v))

    def test_block_matches_pair(self, framework, model):
        base = CoordinateProvider(framework.space)
        provider = BandwidthAwareProvider(base, model, min_bandwidth=30.0)
        proxies = framework.overlay.proxies[:6]
        block = provider.block(proxies, proxies)
        for i, u in enumerate(proxies):
            for j, v in enumerate(proxies):
                expected = provider.pair(u, v)
                if np.isinf(expected):
                    assert np.isinf(block[i, j])
                else:
                    assert block[i, j] == pytest.approx(expected)

    def test_negative_requirement_rejected(self, framework, model):
        with pytest.raises(RoutingError):
            BandwidthAwareProvider(
                CoordinateProvider(framework.space), model, min_bandwidth=-1.0
            )


class TestQoSRouting:
    def test_flat_paths_respect_floor(self, framework, model):
        router = qos_flat_router(framework.overlay, model, min_bandwidth=15.0)
        satisfied = 0
        for seed in range(10):
            request = framework.random_request(seed=seed)
            try:
                path = router.route(request)
            except NoFeasiblePathError:
                continue
            satisfied += 1
            validate_path(path, request, framework.overlay)
            assert model.path_bandwidth(path.proxies()) >= 15.0
        assert satisfied > 0

    def test_hierarchical_paths_respect_floor(self, framework, model):
        router = QoSHierarchicalRouter(framework.hfc, model, min_bandwidth=15.0)
        satisfied = 0
        for seed in range(10):
            request = framework.random_request(seed=seed)
            try:
                path = router.route(request)
            except NoFeasiblePathError:
                continue
            satisfied += 1
            validate_path(path, request, framework.overlay)
            assert model.path_bandwidth(path.proxies()) >= 15.0
        assert satisfied > 0

    def test_impossible_floor_raises(self, framework, model):
        router = QoSHierarchicalRouter(framework.hfc, model, min_bandwidth=1e12)
        with pytest.raises(NoFeasiblePathError):
            router.route(framework.random_request(seed=1))

    def test_tighter_floor_never_shortens_paths(self, framework, model):
        """Feasible sets shrink monotonically with the requirement."""
        loose = qos_flat_router(framework.overlay, model, min_bandwidth=0.0)
        tight = qos_flat_router(framework.overlay, model, min_bandwidth=25.0)
        overlay = framework.overlay
        for seed in range(8):
            request = framework.random_request(seed=seed)
            loose_est = loose.route(request).estimated_length(overlay)
            try:
                tight_est = tight.route(request).estimated_length(overlay)
            except NoFeasiblePathError:
                continue
            assert tight_est >= loose_est - 1e-9


class TestAggregates:
    def test_cluster_pair_bandwidth_keys(self, framework, model):
        pairs = cluster_pair_bandwidth(framework.hfc, model)
        k = framework.hfc.cluster_count
        assert len(pairs) == k * (k - 1) // 2
        for (i, j), bw in pairs.items():
            assert i < j
            assert bw > 0

    def test_cluster_pair_bandwidth_matches_border_link(self, framework, model):
        pairs = cluster_pair_bandwidth(framework.hfc, model)
        (i, j), bw = next(iter(pairs.items()))
        u = framework.hfc.border(i, j)
        v = framework.hfc.border(j, i)
        assert bw == pytest.approx(model.overlay_bandwidth(u, v))

    def test_intra_cluster_stats(self, framework, model):
        stats = intra_cluster_bandwidth_stats(framework.hfc, model, 0)
        assert stats["min"] <= stats["mean"] <= stats["max"]
