"""Tests for the control-plane signaling simulator."""

import pytest

from repro.routing import HierarchicalRouter, validate_path
from repro.routing.signaling import SignalingSimulator, solver_for


@pytest.fixture(scope="module")
def signaling(framework):
    return SignalingSimulator(HierarchicalRouter(framework.hfc))


class TestSignaledResolution:
    def test_same_path_as_direct_routing(self, framework, signaling):
        router = HierarchicalRouter(framework.hfc)
        for seed in range(10):
            request = framework.random_request(seed=seed)
            direct = router.route(request)
            report = signaling.resolve(request)
            assert report.path.hops == direct.hops

    def test_paths_validate(self, framework, signaling):
        for seed in range(5):
            request = framework.random_request(seed=seed + 50)
            report = signaling.resolve(request)
            validate_path(report.path, request, framework.overlay)

    def test_setup_latency_is_max_round_trip(self, framework, signaling):
        """Children are solved in parallel, so setup latency equals the
        slowest remote round trip (pd -> solver -> pd)."""
        router = HierarchicalRouter(framework.hfc)
        for seed in range(10):
            request = framework.random_request(seed=seed + 100)
            result = router.route_detailed(request)
            pd = request.destination_proxy
            round_trips = [
                2 * framework.overlay.true_delay(pd, solver_for(child, pd))
                for child in result.child_requests
                if solver_for(child, pd) != pd
            ]
            expected = max(round_trips, default=0.0)
            report = signaling.resolve(request)
            assert report.setup_latency == pytest.approx(expected)

    def test_control_message_count(self, framework, signaling):
        """One request plus one reply per remote child."""
        for seed in range(10):
            request = framework.random_request(seed=seed + 200)
            report = signaling.resolve(request)
            assert report.control_messages == 2 * report.remote_children

    def test_local_only_request_needs_no_messages(self, framework, signaling):
        """A request solvable entirely inside pd's cluster signals nothing."""
        from repro.services import ServiceRequest, linear_graph

        hfc = framework.hfc
        cid = hfc.cluster_of(framework.overlay.proxies[0])
        members = hfc.members(cid)
        if len(members) < 3:
            pytest.skip("cluster too small")
        local_service = next(iter(framework.overlay.placement[members[0]]))
        request = ServiceRequest(
            members[1], linear_graph([local_service]), members[2]
        )
        report = signaling.resolve(request)
        # the only children may live in pd's own cluster -> zero latency
        if report.remote_children == 0:
            assert report.setup_latency == 0.0
            assert report.control_messages == 0
