"""Tests for the ``repro.telemetry`` subsystem.

Unit tests for the metric primitives (counter/gauge/histogram semantics,
registry keying and merging), span tracing (tree shape, clock selection),
the event log (bounds, sinks, JSONL round-trip), plus an integration test
asserting that a full framework route + protocol run emits the expected
metric names and span tree.
"""

import json
import math

import pytest

from repro.dataplane.session import StreamingSession
from repro.membership.churn import DynamicOverlay
from repro.netsim.eventsim import Message, Process, Simulator
from repro.routing.cache import CachedHierarchicalRouter
from repro.state.protocol import StateDistributionProtocol
from repro.telemetry import (
    NULL_TELEMETRY,
    EventLog,
    JsonlSink,
    ListSink,
    MetricsRegistry,
    Telemetry,
    get_telemetry,
    use_telemetry,
)
from repro.util.errors import TelemetryError


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def scoped():
    """A fresh process-wide telemetry scope, restored afterwards."""
    with use_telemetry(Telemetry()) as telemetry:
        yield telemetry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self, registry):
        with pytest.raises(TelemetryError):
            registry.counter("x").inc(-1)

    def test_same_name_same_labels_same_handle(self, registry):
        assert registry.counter("x", kind="a") is registry.counter("x", kind="a")

    def test_different_labels_different_handles(self, registry):
        registry.counter("x", kind="a").inc()
        registry.counter("x", kind="b").inc(2)
        assert registry.total("x") == 3
        assert registry.values_by_label("x", "kind") == {"a": 1, "b": 2}

    def test_kind_conflict_rejected(self, registry):
        registry.counter("x")
        with pytest.raises(TelemetryError):
            registry.gauge("x")
        with pytest.raises(TelemetryError):
            registry.histogram("x")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(10.0)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5


class TestHistogram:
    def test_count_sum_min_max_mean(self, registry):
        h = registry.histogram("lat", buckets=(10.0, 100.0))
        for v in (5.0, 50.0, 500.0, 45.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 600.0
        assert h.min == 5.0
        assert h.max == 500.0
        assert h.mean == 150.0

    def test_bucket_assignment_includes_overflow(self, registry):
        h = registry.histogram("lat", buckets=(10.0, 100.0))
        for v in (5.0, 50.0, 500.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1]

    def test_quantiles_are_ordered_and_bounded(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 2.0, 5.0, 10.0, 50.0))
        for v in range(1, 41):
            h.observe(v / 2.0)
        p50, p95, p99 = h.quantile(0.5), h.quantile(0.95), h.quantile(0.99)
        assert h.min <= p50 <= p95 <= p99 <= h.max

    def test_empty_quantile_is_nan(self, registry):
        assert math.isnan(registry.histogram("lat").quantile(0.5))

    def test_bad_bounds_rejected(self, registry):
        with pytest.raises(TelemetryError):
            registry.histogram("bad", buckets=(5.0, 1.0))

    def test_snapshot_shape(self, registry):
        h = registry.histogram("lat", buckets=(10.0,))
        h.observe(3.0)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["p50"] == pytest.approx(3.0, abs=10.0)
        assert snap["buckets"]["counts"] == [1, 0]


class TestRegistryMerge:
    def test_counters_add_histograms_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c", k="x").inc(2)
        b.counter("c", k="x").inc(3)
        b.counter("c", k="y").inc(1)
        a.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        b.histogram("h", buckets=(1.0, 10.0)).observe(5.0)
        a.merge(b)
        assert a.counter("c", k="x").value == 5
        assert a.counter("c", k="y").value == 1
        h = a.histogram("h", buckets=(1.0, 10.0))
        assert h.count == 2
        assert h.bucket_counts == [1, 1, 0]

    def test_merge_bound_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,))
        b.histogram("h", buckets=(2.0,)).observe(1.0)
        with pytest.raises(TelemetryError):
            a.merge(b)

    def test_snapshot_groups_by_kind(self, registry):
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert [c["name"] for c in snap["counters"]] == ["c"]
        assert [g["name"] for g in snap["gauges"]] == ["g"]
        assert [h["name"] for h in snap["histograms"]] == ["h"]


class TestTracing:
    def test_span_tree_structure(self, scoped):
        tracer = scoped.tracer
        with tracer.span("outer", request=1):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner.a", "inner.b"]
        assert root.duration >= max(c.duration for c in root.children)

    def test_spans_feed_duration_histogram(self, scoped):
        with scoped.tracer.span("op"):
            pass
        metric = scoped.registry.get("span.duration", span="op", clock="wall")
        assert metric is not None and metric.count == 1

    def test_wall_clock_outside_simulation(self, scoped):
        with scoped.tracer.span("op") as span:
            pass
        assert span.clock_kind == "wall"

    def test_sim_clock_inside_simulation(self, scoped):
        sim = Simulator(telemetry=scoped)

        recorded = []

        def act():
            with scoped.tracer.span("under-sim") as span:
                recorded.append(span.clock_kind)

        sim.schedule(25.0, act)
        sim.run_all()
        assert recorded == ["sim"]
        span = scoped.tracer.find_roots("under-sim")[0]
        assert span.start == 25.0

    def test_error_annotated(self, scoped):
        with pytest.raises(ValueError):
            with scoped.tracer.span("boom"):
                raise ValueError("x")
        assert scoped.tracer.roots[0].attributes["error"] == "ValueError"

    def test_to_dict_roundtrips_through_json(self, scoped):
        with scoped.tracer.span("outer"):
            with scoped.tracer.span("inner"):
                pass
        payload = json.loads(json.dumps(scoped.tracer.snapshot()))
        assert payload[0]["name"] == "outer"
        assert payload[0]["children"][0]["name"] == "inner"


class TestEventLog:
    def test_record_and_query(self):
        log = EventLog(capacity=10)
        log.record("join", proxy=3)
        log.record("leave", proxy=4)
        assert len(log) == 2
        assert log.of_kind("join")[0]["proxy"] == 3

    def test_bounded_with_drop_accounting(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.record("e", i=i)
        assert len(log) == 3
        assert log.recorded == 10
        assert log.dropped == 7
        assert [e["i"] for e in log] == [7, 8, 9]

    def test_sink_receives_events_and_detaches(self):
        log = EventLog(capacity=10)
        sink = log.attach(ListSink())
        log.record("a")
        log.detach(sink)
        log.record("b")
        assert [e["kind"] for e in sink.events] == ["a"]

    def test_jsonl_roundtrip(self, tmp_path):
        log = EventLog(capacity=10)
        log.record("join", proxy=3, quality=1.5)
        log.record("leave", proxy="r9")
        path = str(tmp_path / "events.jsonl")
        assert log.dump_jsonl(path) == 2
        events = EventLog.load_jsonl(path)
        assert [e["kind"] for e in events] == ["join", "leave"]
        assert events[0]["proxy"] == 3
        assert events[1]["proxy"] == "r9"

    def test_jsonl_sink_streams(self, tmp_path):
        log = EventLog(capacity=2)
        path = str(tmp_path / "stream.jsonl")
        sink = log.attach(JsonlSink(path))
        for i in range(5):  # more than the ring keeps
            log.record("e", i=i)
        sink.close()
        assert [e["i"] for e in EventLog.load_jsonl(path)] == list(range(5))


class TestTelemetryFacade:
    def test_use_telemetry_scopes_the_default(self):
        outer = get_telemetry()
        with use_telemetry(Telemetry()) as inner:
            assert get_telemetry() is inner
        assert get_telemetry() is outer

    def test_publish_folds_into_default(self, scoped):
        run = Telemetry()
        run.registry.counter("x").inc(3)
        run.events.record("e")
        with run.tracer.span("op"):
            pass
        run.publish()
        assert scoped.registry.total("x") == 3
        assert len(scoped.events.of_kind("e")) == 1
        assert scoped.tracer.find_roots("op")

    def test_null_telemetry_measures_nothing(self):
        NULL_TELEMETRY.registry.counter("x").inc()
        NULL_TELEMETRY.events.record("e")
        with NULL_TELEMETRY.tracer.span("op"):
            pass
        assert len(NULL_TELEMETRY.registry) == 0
        assert len(NULL_TELEMETRY.events) == 0
        assert len(NULL_TELEMETRY.tracer.roots) == 0

    def test_snapshot_dump_json(self, scoped, tmp_path):
        scoped.registry.counter("x").inc()
        path = str(tmp_path / "snap.json")
        scoped.dump_json(path)
        snap = json.loads(open(path).read())
        assert snap["metrics"]["counters"][0]["name"] == "x"


class TestSimulatorTelemetry:
    def test_delivery_metrics_per_kind(self):
        sim = Simulator()

        class Sink_(Process):
            def receive(self, message):
                pass

        sim.register(Sink_("a"))
        sim.register(Sink_("b"))
        sim.send(Message("a", "b", "ping", None, size=3), delay=5.0)
        sim.send(Message("b", "a", "pong", None, size=2), delay=7.0)
        sim.run_all()
        assert sim.messages_delivered == 2
        assert sim.bytes_delivered == 5
        registry = sim.telemetry.registry
        assert registry.counter("sim.messages.delivered", kind="ping").value == 1
        hist = registry.get("sim.delivery.latency", kind="pong")
        assert hist.count == 1 and hist.min == 7.0


class TestIntegration:
    """A full framework run emits the documented metric names and spans."""

    def test_route_and_protocol_emit_expected_telemetry(self, tiny_framework):
        with use_telemetry(Telemetry()) as telemetry:
            router = CachedHierarchicalRouter(tiny_framework.hfc)
            routed = 0
            attempt = 0
            while routed < 4:
                request = tiny_framework.random_request(seed=50 + attempt % 3)
                attempt += 1
                try:
                    router.route(request)
                    routed += 1
                except Exception:
                    if attempt > 20:
                        raise

            protocol = StateDistributionProtocol(tiny_framework.hfc, seed=5)
            report = protocol.run(max_time=20000.0)
            protocol.sim.telemetry.publish()

            registry = telemetry.registry
            names = set(registry.names())
            assert {"routing.requests", "routing.cache.hits",
                    "routing.cache.misses", "span.duration",
                    "sim.messages.delivered", "sim.bytes.delivered",
                    "sim.delivery.latency"} <= names

            # counters agree with the router's own stats and the report
            assert registry.total("routing.requests") == routed
            assert (registry.counter("routing.cache.hits", cache="csp").value
                    == router.stats.hits)
            assert (registry.total("sim.messages.delivered")
                    == report.total_messages)
            assert (registry.total("sim.bytes.delivered")
                    == report.total_size)
            assert report.delivery_latency["local_state"]["p95"] > 0

            # span tree: every route span carries the four stage children
            roots = telemetry.tracer.find_roots("route")
            assert len(roots) == routed
            for root in roots:
                child_names = [c.name for c in root.children]
                assert child_names == [
                    "route.csp", "route.dissect", "route.conquer",
                    "route.compose",
                ]

    def test_churn_and_session_events(self, tiny_framework):
        with use_telemetry(Telemetry()) as telemetry:
            dyn = DynamicOverlay(tiny_framework, restructure_tolerance=None)
            victim = dyn.proxies[-1]
            dyn.leave(victim)
            assert telemetry.events.of_kind("membership.leave")
            assert telemetry.registry.counter(
                "membership.events", kind="leave"
            ).value == 1

            router = tiny_framework.hierarchical_router()
            request = None
            for seed in range(50, 60):
                candidate = tiny_framework.random_request(seed=seed)
                try:
                    path = router.route(candidate)
                    request = candidate
                    break
                except Exception:
                    continue
            assert request is not None
            session = StreamingSession(
                tiny_framework.overlay, path, packet_count=5
            )
            session.run()
            assert telemetry.registry.counter(
                "session.packets", outcome="delivered"
            ).value == 5
            assert telemetry.registry.get("session.packet.latency").count == 5
