"""Tests for the util package (rng, validation, errors)."""

import random

import pytest

from repro.util import (
    NoFeasiblePathError,
    ReproError,
    RoutingError,
    ensure_rng,
    spawn,
)
from repro.util.validation import (
    require_at_least,
    require_in_range,
    require_non_empty,
    require_non_negative,
    require_positive,
    require_unique,
)


class TestEnsureRng:
    def test_int_seed_deterministic(self):
        assert ensure_rng(5).random() == ensure_rng(5).random()

    def test_rng_passthrough(self):
        rng = random.Random(1)
        assert ensure_rng(rng) is rng

    def test_none_gives_fresh(self):
        a, b = ensure_rng(None), ensure_rng(None)
        assert a is not b


class TestSpawn:
    def test_deterministic_per_label(self):
        a = spawn(ensure_rng(7), "topology").random()
        b = spawn(ensure_rng(7), "topology").random()
        assert a == b

    def test_labels_independent(self):
        parent = ensure_rng(7)
        a = spawn(parent, "one")
        b = spawn(parent, "two")
        assert a.random() != b.random()

    def test_child_isolated_from_parent_consumption(self):
        """Drawing from one child must not perturb a sibling's stream."""
        p1 = ensure_rng(7)
        spawn(p1, "a")  # first child claimed, as in the p2 replay below
        c2 = spawn(p1, "b")
        c2_values = [c2.random() for _ in range(3)]

        p2 = ensure_rng(7)
        d1 = spawn(p2, "a")
        for _ in range(100):
            d1.random()  # heavy use of the first child
        d2 = spawn(p2, "b")
        assert [d2.random() for _ in range(3)] == c2_values


class TestValidation:
    def test_require_positive(self):
        require_positive("x", 1.0)
        with pytest.raises(ValueError):
            require_positive("x", 0.0)

    def test_require_non_negative(self):
        require_non_negative("x", 0.0)
        with pytest.raises(ValueError):
            require_non_negative("x", -0.1)

    def test_require_in_range(self):
        require_in_range("x", 5, 0, 10)
        with pytest.raises(ValueError):
            require_in_range("x", 11, 0, 10)

    def test_require_at_least(self):
        require_at_least("x", 3, 3)
        with pytest.raises(ValueError):
            require_at_least("x", 2, 3)

    def test_require_non_empty(self):
        require_non_empty("x", [1])
        with pytest.raises(ValueError):
            require_non_empty("x", [])

    def test_require_unique(self):
        require_unique("x", [1, 2, 3])
        with pytest.raises(ValueError):
            require_unique("x", [1, 1])


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(NoFeasiblePathError, RoutingError)
        assert issubclass(RoutingError, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise NoFeasiblePathError("nope")
