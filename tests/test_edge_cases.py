"""Edge-case tests: degenerate cluster structures and tiny overlays."""

import pytest

from repro.cluster.mstcluster import Clustering
from repro.core import FrameworkConfig, HFCFramework
from repro.overlay import build_hfc
from repro.routing import (
    HierarchicalRouter,
    hfc_full_state_router,
    validate_path,
)
from repro.services import ServiceRequest, linear_graph


@pytest.fixture(scope="module")
def single_cluster_framework():
    """A framework forced into exactly one cluster."""
    fw = HFCFramework.build(
        proxy_count=20, config=FrameworkConfig(physical_nodes=150), seed=71
    )
    one = Clustering(
        clusters=[sorted(fw.overlay.proxies)],
        labels={p: 0 for p in fw.overlay.proxies},
    )
    hfc = build_hfc(fw.overlay, one)
    return fw, hfc


class TestSingleCluster:
    def test_no_borders(self, single_cluster_framework):
        _, hfc = single_cluster_framework
        assert hfc.all_border_nodes() == []
        assert hfc.cluster_count == 1

    def test_hierarchical_routing_degenerates_to_flat(self, single_cluster_framework):
        fw, hfc = single_cluster_framework
        router = HierarchicalRouter(hfc)
        for seed in range(8):
            request = fw.random_request(seed=seed)
            result = router.route_detailed(request)
            assert len(result.child_requests) == 1
            assert result.child_requests[0].cluster == 0
            validate_path(result.path, request, fw.overlay)

    def test_full_state_router_works(self, single_cluster_framework):
        fw, hfc = single_cluster_framework
        router = hfc_full_state_router(hfc)
        request = fw.random_request(seed=3)
        validate_path(router.route(request), request, fw.overlay)

    def test_routing_matrices_finite(self, single_cluster_framework):
        import numpy as np

        _, hfc = single_cluster_framework
        route, true = hfc.routing_matrices()
        assert np.isfinite(route).all() and np.isfinite(true).all()

    def test_overheads_defined(self, single_cluster_framework):
        from repro.state import mean_coordinates_overhead, mean_service_overhead

        _, hfc = single_cluster_framework
        n = hfc.overlay.size
        # one cluster: coordinates overhead = n (own members, no borders)
        assert mean_coordinates_overhead(hfc) == n
        # service overhead = n members + 1 aggregate entry
        assert mean_service_overhead(hfc) == n + 1

    def test_protocol_converges_without_borders(self, single_cluster_framework):
        from repro.state import StateDistributionProtocol

        _, hfc = single_cluster_framework
        protocol = StateDistributionProtocol(hfc, seed=4)
        report = protocol.run(max_time=20000.0)
        assert report.converged_at is not None
        assert report.messages_by_kind.get("aggregate_state", 0) == 0


class TestTwoProxyOverlay:
    @pytest.fixture(scope="class")
    def duo(self):
        return HFCFramework.build(
            proxy_count=2,
            config=FrameworkConfig(
                physical_nodes=150,
                min_services_per_proxy=2,
                max_services_per_proxy=3,
                instances_per_service=1.0,
            ),
            seed=72,
        )

    def test_builds(self, duo):
        assert duo.overlay.size == 2

    def test_routes(self, duo):
        src, dst = duo.overlay.proxies
        service = next(iter(duo.overlay.placement[src]))
        request = ServiceRequest(src, linear_graph([service]), dst)
        path = duo.hierarchical_router().route(request)
        validate_path(path, request, duo.overlay)


class TestSameSourceAndDestinationCluster:
    def test_round_trip_request(self, framework):
        """Source and destination in the same cluster, service elsewhere —
        the CSP must go out and come back (A, B, A run pattern)."""
        hfc = framework.hfc
        members = hfc.members(0)
        if len(members) < 2:
            pytest.skip("cluster 0 too small")
        src, dst = members[0], members[1]
        # find a service absent from cluster 0 but present elsewhere
        own = set()
        for m in members:
            own |= framework.overlay.placement[m]
        other = None
        for service in framework.catalog:
            if service not in own:
                other = service
                break
        if other is None:
            pytest.skip("cluster 0 hosts the whole catalog")
        request = ServiceRequest(src, linear_graph([other]), dst)
        router = framework.hierarchical_router()
        result = router.route_detailed(request)
        validate_path(result.path, request, framework.overlay)
        clusters = [c.cluster for c in result.child_requests]
        assert clusters[0] == 0 and clusters[-1] == 0
        assert len(clusters) >= 3  # out and back
