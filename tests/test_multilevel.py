"""Tests for the three-level hierarchy extension."""

import numpy as np
import pytest

from repro.hierarchy import ThreeLevelRouter, build_multilevel
from repro.routing import HierarchicalRouter, validate_path
from repro.state import coordinates_node_states
from repro.util.errors import TopologyError


@pytest.fixture(scope="module")
def multilevel(framework):
    return build_multilevel(framework.hfc)


class TestConstruction:
    def test_every_cluster_assigned(self, framework, multilevel):
        assert set(multilevel.super_of_cluster) == set(
            range(framework.clustering.cluster_count)
        )
        covered = sorted(
            cid for members in multilevel.cluster_members.values() for cid in members
        )
        assert covered == sorted(range(framework.clustering.cluster_count))

    def test_super_of_proxy_consistent(self, framework, multilevel):
        for proxy in framework.overlay.proxies:
            sid = multilevel.super_of(proxy)
            assert proxy in multilevel.members(sid)

    def test_super_borders_inside_their_super(self, multilevel):
        for (i, j), proxy in multilevel.super_borders.items():
            assert multilevel.super_of(proxy) == i

    def test_super_border_self_rejected(self, multilevel):
        with pytest.raises(TopologyError):
            multilevel.super_border(0, 0)

    def test_mst_method_also_valid(self, framework):
        ml = build_multilevel(framework.hfc, method="mst")
        assert ml.super_count >= 1

    def test_bad_method_rejected(self, framework):
        with pytest.raises(TopologyError):
            build_multilevel(framework.hfc, method="psychic")

    def test_explicit_super_count(self, framework):
        ml = build_multilevel(framework.hfc, super_count=2)
        assert ml.super_count <= 2

    def test_sub_hfc_structure(self, framework, multilevel):
        for sid in multilevel.cluster_members:
            sub = multilevel.sub_hfc(sid)
            assert sub.cluster_count == len(multilevel.cluster_members[sid])
            assert sorted(
                p for c in sub.clustering.clusters for p in c
            ) == multilevel.members(sid)

    def test_sub_hfc_cached(self, multilevel):
        sid = next(iter(multilevel.cluster_members))
        assert multilevel.sub_hfc(sid) is multilevel.sub_hfc(sid)


class TestStateAccounting:
    def test_every_proxy_counted(self, framework, multilevel):
        coords = multilevel.coordinates_node_states()
        service = multilevel.service_node_states()
        assert set(coords) == set(framework.overlay.proxies)
        assert set(service) == set(framework.overlay.proxies)

    def test_three_level_coordinate_state_not_larger(self, framework, multilevel):
        """Replacing global borders with local borders + super-borders can
        only shrink (or tie) the coordinate footprint on average."""
        two = np.mean(list(coordinates_node_states(framework.hfc).values()))
        three = np.mean(list(multilevel.coordinates_node_states().values()))
        assert three <= two + 1e-9

    def test_service_state_formula(self, framework, multilevel):
        states = multilevel.service_node_states()
        for proxy, value in states.items():
            cid = framework.hfc.cluster_of(proxy)
            sid = multilevel.super_of_cluster[cid]
            expected = (
                len(framework.hfc.members(cid))
                + len(multilevel.cluster_members[sid])
                + multilevel.super_count
            )
            assert value == expected


class TestThreeLevelRouting:
    def test_paths_validate(self, framework, multilevel):
        router = ThreeLevelRouter(multilevel)
        for seed in range(15):
            request = framework.random_request(seed=seed)
            path = router.route(request)
            validate_path(path, request, framework.overlay)

    def test_capabilities_are_super_aggregates(self, framework, multilevel):
        router = ThreeLevelRouter(multilevel)
        for sid in multilevel.cluster_members:
            assert router.cluster_capabilities[sid] == multilevel.super_capability(sid)

    def test_cross_super_hops_use_super_borders(self, framework, multilevel):
        """A direct hop between super-clusters must be a super-border link."""
        router = ThreeLevelRouter(multilevel)
        if multilevel.super_count < 2:
            pytest.skip("single super-cluster")
        checked = 0
        for seed in range(20):
            request = framework.random_request(seed=seed)
            path = router.route(request)
            proxies = path.proxies()
            for u, v in zip(proxies, proxies[1:]):
                su, sv = multilevel.super_of(u), multilevel.super_of(v)
                if su != sv:
                    assert u == multilevel.super_border(su, sv)
                    assert v == multilevel.super_border(sv, su)
                    checked += 1
        assert checked > 0

    def test_path_quality_within_factor_of_two_level(self, framework, multilevel):
        """The third level trades path quality for state; the loss must stay
        bounded (coarser info, same connectivity)."""
        two = HierarchicalRouter(framework.hfc)
        three = ThreeLevelRouter(multilevel)
        overlay = framework.overlay
        t2 = t3 = 0.0
        for seed in range(20):
            request = framework.random_request(seed=seed)
            t2 += two.route(request).true_delay(overlay)
            t3 += three.route(request).true_delay(overlay)
        assert t3 <= t2 * 2.0

    def test_single_super_degenerates_to_two_level(self, framework):
        ml = build_multilevel(framework.hfc, super_count=1)
        router = ThreeLevelRouter(ml)
        request = framework.random_request(seed=3)
        path = router.route(request)
        validate_path(path, request, framework.overlay)


class TestComposition:
    def test_multicast_over_three_levels(self, framework, multilevel):
        """ThreeLevelRouter is a HierarchicalRouter, so the multicast tree
        builder composes with it unchanged."""
        import random

        from repro.multicast import MulticastRequest, build_service_tree
        from repro.services import linear_graph

        router = ThreeLevelRouter(multilevel)
        rng = random.Random(5)
        picked = rng.sample(framework.overlay.proxies, 5)
        names = [rng.choice(list(framework.catalog.names)) for _ in range(3)]
        request = MulticastRequest(picked[0], linear_graph(names), tuple(picked[1:]))
        tree = build_service_tree(router, request)
        from repro.routing import validate_path
        from repro.services import ServiceRequest

        for destination in request.destinations:
            unicast = ServiceRequest(
                request.source_proxy, request.service_graph, destination
            )
            validate_path(tree.path_to(destination), unicast, framework.overlay)

    def test_caching_over_three_levels(self, framework, multilevel):
        """The CSP cache layer stacks on the three-level router too."""
        from repro.routing.cache import CachedHierarchicalRouter

        class CachedThreeLevel(CachedHierarchicalRouter, ThreeLevelRouter):
            pass

        router = CachedThreeLevel(multilevel)
        request = framework.random_request(seed=9)
        a = router.route(request)
        b = router.route(request)
        assert a.hops == b.hops
        assert router.stats.hits == 1
