"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=400,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "50", "3")
        assert "hierarchical" in out
        assert "true delay" in out
        assert "cluster-level path (CSP)" in out

    def test_multimedia_pipeline(self):
        out = run_example("multimedia_pipeline.py", "3")
        assert "watermark" in out
        assert "End-to-end true delay" in out

    def test_web_document_service(self):
        out = run_example("web_document_service.py", "3")
        assert "Chosen configuration" in out
        assert "format" in out

    def test_scaling_study(self):
        out = run_example("scaling_study.py", "0.1")
        assert "Fig 9(a)" in out
        assert "Fig 10" in out

    def test_churn_and_qos(self):
        out = run_example("churn_and_qos.py", "3")
        assert "dynamic membership" in out
        assert "bandwidth-aware routing" in out

    def test_service_multicast(self):
        out = run_example("service_multicast.py", "4", "3")
        assert "shared service chain" in out
        assert "saving" in out

    def test_protocol_walkthrough(self):
        out = run_example("protocol_walkthrough.py", "3")
        assert "converged at" in out
        assert "setup latency" in out

    def test_three_level_hierarchy(self):
        out = run_example("three_level_hierarchy.py", "60", "3")
        assert "super-clusters" in out
        assert "three-level" in out

    def test_failure_recovery(self):
        out = run_example("failure_recovery.py", "3")
        assert "packets lost" in out
        assert "new path" in out

    def test_placement_optimization(self):
        out = run_example("placement_optimization.py", "3")
        assert "demand-aware" in out
        assert "saving from placement" in out
