"""Tests for the experiment harnesses (Table 1, Fig 9, Fig 10, workload)."""


import pytest

from repro.experiments import (
    TABLE1,
    EnvironmentSpec,
    WorkloadConfig,
    ascii_table,
    build_environment,
    generate_requests,
    random_service_graph,
    run_overhead_experiment,
    run_path_efficiency,
    scale_factor,
    scaled_table1,
    series_block,
)
from repro.services import generic_catalog
from repro.util.errors import ReproError

TINY = EnvironmentSpec(
    physical_nodes=150, landmarks=10, proxies=40, clients=10
)


class TestTable1:
    def test_exact_paper_rows(self):
        assert [s.physical_nodes for s in TABLE1] == [300, 600, 900, 1200]
        assert [s.proxies for s in TABLE1] == [250, 500, 750, 1000]
        assert [s.clients for s in TABLE1] == [40, 90, 140, 120]
        assert all(s.landmarks == 10 for s in TABLE1)
        assert all(s.min_services == 4 and s.max_services == 10 for s in TABLE1)
        assert all(
            s.min_request_length == 4 and s.max_request_length == 10 for s in TABLE1
        )

    def test_scaled_preserves_progression(self):
        scaled = scaled_table1(0.5)
        proxies = [s.proxies for s in scaled]
        assert proxies == sorted(proxies)
        assert proxies[0] == 125

    def test_scale_factor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert scale_factor() == 1.0
        monkeypatch.setenv("REPRO_SCALE", "0.3")
        assert scale_factor() == 0.3
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert scale_factor() == 0.2

    def test_scale_factor_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ReproError):
            scale_factor()
        monkeypatch.setenv("REPRO_SCALE", "3.0")
        with pytest.raises(ReproError):
            scale_factor()


class TestEnvironment:
    @pytest.fixture(scope="class")
    def env(self):
        return build_environment(TINY, seed=1)

    def test_sizes_match_spec(self, env):
        assert env.framework.overlay.size == TINY.proxies
        assert env.framework.physical.graph.node_count == TINY.physical_nodes
        assert len(env.clients) == TINY.clients

    def test_client_proxies_are_nearest(self, env):
        fw = env.framework
        for client, proxy in zip(env.clients, env.client_proxies):
            best = min(
                fw.overlay.proxies, key=lambda p: fw.physical.delay(client, p)
            )
            assert fw.physical.delay(client, proxy) == pytest.approx(
                fw.physical.delay(client, best)
            )

    def test_deterministic(self):
        a = build_environment(TINY, seed=9)
        b = build_environment(TINY, seed=9)
        assert a.framework.overlay.proxies == b.framework.overlay.proxies
        assert a.clients == b.clients


class TestWorkload:
    @pytest.fixture(scope="class")
    def env(self):
        return build_environment(TINY, seed=1)

    def test_request_count(self, env):
        requests = generate_requests(env, WorkloadConfig(request_count=25), seed=2)
        assert len(requests) == 25

    def test_lengths_in_bounds(self, env):
        requests = generate_requests(
            env, WorkloadConfig(request_count=30, min_length=3, max_length=6), seed=2
        )
        assert all(3 <= r.length <= 6 for r in requests)

    def test_destinations_are_client_proxies(self, env):
        requests = generate_requests(env, WorkloadConfig(request_count=30), seed=2)
        access = set(env.client_proxies)
        assert all(r.destination_proxy in access for r in requests)

    def test_endpoints_distinct(self, env):
        requests = generate_requests(env, WorkloadConfig(request_count=50), seed=3)
        assert all(r.source_proxy != r.destination_proxy for r in requests)

    def test_nonlinear_fraction(self, env):
        requests = generate_requests(
            env,
            WorkloadConfig(request_count=40, nonlinear_fraction=1.0),
            seed=2,
        )
        assert all(not r.service_graph.is_linear for r in requests)

    def test_config_validation(self):
        with pytest.raises(ReproError):
            WorkloadConfig(request_count=0)
        with pytest.raises(ReproError):
            WorkloadConfig(min_length=5, max_length=2)
        with pytest.raises(ReproError):
            WorkloadConfig(nonlinear_fraction=1.5)

    def test_random_service_graph_linear(self):
        catalog = generic_catalog(10)
        sg = random_service_graph(catalog, 5, seed=1)
        assert sg.is_linear and sg.slot_count == 5

    def test_random_service_graph_nonlinear(self):
        catalog = generic_catalog(10)
        sg = random_service_graph(catalog, 6, nonlinear=True, seed=1)
        assert not sg.is_linear
        assert sg.slot_count == 6

    def test_short_nonlinear_falls_back_to_linear(self):
        catalog = generic_catalog(10)
        sg = random_service_graph(catalog, 2, nonlinear=True, seed=1)
        assert sg.is_linear


class TestOverheadExperiment:
    def test_fig9_shape(self):
        specs = [TINY, EnvironmentSpec(physical_nodes=200, landmarks=10,
                                       proxies=60, clients=10)]
        result = run_overhead_experiment(specs, topologies_per_size=2, seed=4)
        assert [p.proxies for p in result.coordinates] == [40, 60]
        for point in result.coordinates + result.service:
            assert point.flat == point.proxies
            assert 0 < point.hierarchical < point.flat
            assert point.topologies == 2
        # rendering mentions both panels
        text = result.render()
        assert "Fig 9(a)" in text and "Fig 9(b)" in text


class TestPathEfficiencyExperiment:
    def test_fig10_shape(self):
        result = run_path_efficiency(
            [TINY],
            topologies_per_size=1,
            requests_per_topology=15,
            seed=5,
        )
        point = result.points[0]
        assert set(point.mean_delay) == {"mesh", "hfc_agg", "hfc_full"}
        for value in point.mean_delay.values():
            assert value > 0
        assert point.failures == {"mesh": 0, "hfc_agg": 0, "hfc_full": 0}
        assert "Fig 10" in result.render()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ReproError):
            run_path_efficiency(
                [TINY], strategies=("warp-drive",), topologies_per_size=1,
                requests_per_topology=2, seed=5,
            )

    def test_oracle_strategy_is_minimum(self):
        result = run_path_efficiency(
            [TINY],
            strategies=("mesh", "hfc_agg", "oracle"),
            topologies_per_size=1,
            requests_per_topology=15,
            seed=6,
        )
        delays = result.points[0].mean_delay
        assert delays["oracle"] <= delays["mesh"]
        assert delays["oracle"] <= delays["hfc_agg"]


class TestReport:
    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "b"], [[1, 2.5], [30, 4]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular
        assert "2.50" in text

    def test_series_block_contains_title_and_xs(self):
        text = series_block("My Figure", {"s": [1.0, 2.0]}, [10, 20])
        assert "My Figure" in text
        assert "10" in text and "20" in text


class TestZipfWorkload:
    @pytest.fixture(scope="class")
    def env(self):
        return build_environment(TINY, seed=1)

    def test_zipf_skews_popularity(self, env):
        from collections import Counter

        from repro.experiments.workload import WorkloadConfig, generate_requests

        uniform = generate_requests(
            env, WorkloadConfig(request_count=150, popularity="uniform"), seed=9
        )
        zipf = generate_requests(
            env,
            WorkloadConfig(request_count=150, popularity="zipf", zipf_exponent=1.2),
            seed=9,
        )

        def top_share(requests):
            counts = Counter()
            for r in requests:
                for slot in r.service_graph.slots():
                    counts[r.service_graph.service_of(slot)] += 1
            total = sum(counts.values())
            top = sum(c for _, c in counts.most_common(max(1, len(counts) // 10)))
            return top / total

        assert top_share(zipf) > top_share(uniform)

    def test_zipf_requests_still_routable(self, env):
        from repro.experiments.workload import WorkloadConfig, generate_requests
        from repro.routing import validate_path

        requests = generate_requests(
            env, WorkloadConfig(request_count=10, popularity="zipf"), seed=10
        )
        router = env.framework.hierarchical_router()
        for request in requests:
            validate_path(router.route(request), request, env.framework.overlay)

    def test_invalid_popularity_rejected(self):
        from repro.experiments.workload import WorkloadConfig

        with pytest.raises(ReproError):
            WorkloadConfig(popularity="pareto")
        with pytest.raises(ReproError):
            WorkloadConfig(popularity="zipf", zipf_exponent=0.0)
