"""Tests for the discrete-event engine."""

import pytest

from repro.netsim import Message, Process, Simulator
from repro.util.errors import StateError


class Recorder(Process):
    """Collects (time, message) pairs for assertions."""

    def __init__(self, address):
        super().__init__(address)
        self.received = []

    def receive(self, message):
        self.received.append((self.simulator.now, message))


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.run_all()
        assert fired == ["early", "late"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("first"))
        sim.schedule(1.0, lambda: fired.append("second"))
        sim.run_all()
        assert fired == ["first", "second"]

    def test_negative_delay_rejected(self):
        with pytest.raises(StateError):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run_until(5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending_events == 1

    def test_run_until_includes_boundary_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(5.0)
        assert fired == [5]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run_all()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_all_guards_runaway(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(StateError):
            sim.run_all(max_events=100)


class TestPeriodic:
    def test_schedule_every_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(2.0, lambda: ticks.append(sim.now))
        sim.run_until(7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_first_delay_override(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(5.0, lambda: ticks.append(sim.now), first_delay=1.0)
        sim.run_until(7.0)
        assert ticks == [1.0, 6.0]

    def test_until_stops_firings(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(1.0, lambda: ticks.append(sim.now), until=3.5)
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_invalid_period_rejected(self):
        with pytest.raises(StateError):
            Simulator().schedule_every(0.0, lambda: None)


class TestMessaging:
    def test_message_delivery(self):
        sim = Simulator()
        alice, bob = Recorder("alice"), Recorder("bob")
        sim.register(alice)
        sim.register(bob)
        sim.run_all()  # run start hooks
        sim.send(Message("alice", "bob", "ping", {"x": 1}, size=3), delay=2.0)
        sim.run_all()
        assert len(bob.received) == 1
        time, message = bob.received[0]
        assert time == 2.0
        assert message.kind == "ping"
        assert message.payload == {"x": 1}

    def test_delivery_counters(self):
        sim = Simulator()
        sim.register(Recorder("a"))
        sim.register(Recorder("b"))
        sim.send(Message("a", "b", "k", None, size=7), delay=1.0)
        sim.run_all()
        assert sim.messages_delivered == 1
        assert sim.bytes_delivered == 7

    def test_process_send_helper(self):
        sim = Simulator()
        alice, bob = Recorder("alice"), Recorder("bob")
        sim.register(alice)
        sim.register(bob)
        sim.run_all()
        alice.send("bob", "hello", 42, delay=1.5)
        sim.run_all()
        assert bob.received[0][1].payload == 42
        assert bob.received[0][1].sender == "alice"

    def test_duplicate_address_rejected(self):
        sim = Simulator()
        sim.register(Recorder("a"))
        with pytest.raises(StateError):
            sim.register(Recorder("a"))

    def test_unknown_recipient_is_counted_drop(self):
        # in-flight messages to departed proxies must not crash the run:
        # delivery to an unregistered address is a cause-tagged drop
        sim = Simulator()
        sim.register(Recorder("a"))
        sim.send(Message("a", "ghost", "k", None), delay=1.0)
        sim.run_all()
        assert sim.messages_delivered == 0
        assert sim.messages_dropped == 1
        dropped = sim.telemetry.registry.counter(
            "sim.messages.dropped", kind="k", cause="unregistered"
        )
        assert dropped.value == 1

    def test_intercepted_drop_is_counted(self):
        sim = Simulator()
        sim.register(Recorder("a"))
        sim.register(Recorder("b"))
        sim.interceptor = lambda message, delay: []
        sim.send(Message("a", "b", "k", None), delay=1.0)
        sim.run_all()
        assert sim.messages_dropped == 1
        dropped = sim.telemetry.registry.counter(
            "sim.messages.dropped", kind="k", cause="intercepted"
        )
        assert dropped.value == 1

    def test_unregistered_process_cannot_send(self):
        ghost = Recorder("ghost")
        with pytest.raises(StateError):
            ghost.send("x", "k", None, delay=1.0)

    def test_start_hook_runs(self):
        class Starter(Process):
            def __init__(self):
                super().__init__("s")
                self.started_at = None

            def start(self):
                self.started_at = self.simulator.now

        sim = Simulator()
        starter = Starter()
        sim.register(starter)
        sim.run_all()
        assert starter.started_at == 0.0


class TestLifecycle:
    def test_deregister_removes_process(self):
        sim = Simulator()
        a = Recorder("a")
        sim.register(a)
        assert sim.is_registered("a")
        assert sim.process_count == 1
        returned = sim.deregister("a")
        assert returned is a
        assert a.simulator is None
        assert not sim.is_registered("a")
        assert sim.process_count == 0

    def test_deregister_unknown_raises(self):
        with pytest.raises(StateError):
            Simulator().deregister("ghost")

    def test_in_flight_to_departed_is_dropped_not_raised(self):
        sim = Simulator()
        sim.register(Recorder("a"))
        bob = Recorder("b")
        sim.register(bob)
        sim.send(Message("a", "b", "k", None), delay=2.0)
        sim.run_until(1.0)
        sim.deregister("b")
        sim.run_all()  # the delivery fires after departure: drop, no crash
        assert bob.received == []
        assert sim.messages_dropped == 1
        assert sim.conservation()["balanced"]

    def test_owned_periodic_stops_after_deregister(self):
        sim = Simulator()
        a = Recorder("a")
        sim.register(a)
        ticks = []
        sim.schedule_every(1.0, lambda: ticks.append(sim.now), owner="a")
        sim.run_until(3.5)
        sim.deregister("a")
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_unowned_periodic_survives_deregister(self):
        sim = Simulator()
        sim.register(Recorder("a"))
        ticks = []
        sim.schedule_every(1.0, lambda: ticks.append(sim.now))
        sim.run_until(1.5)
        sim.deregister("a")
        sim.run_until(3.5)
        assert ticks == [1.0, 2.0, 3.0]


class TestConservation:
    def test_duplicated_copies_balance(self):
        sim = Simulator()
        sim.register(Recorder("a"))
        sim.register(Recorder("b"))
        sim.interceptor = lambda message, delay: [delay, delay + 1.0]
        sim.send(Message("a", "b", "k", None), delay=1.0)
        sim.run_all()
        ledger = sim.conservation()
        assert ledger["sent"] == 1
        assert ledger["duplicated"] == 1
        assert ledger["delivered"] == 2
        assert ledger["balanced"]

    def test_pending_counts_in_flight(self):
        sim = Simulator()
        sim.register(Recorder("a"))
        sim.register(Recorder("b"))
        sim.send(Message("a", "b", "k", None), delay=5.0)
        sim.run_until(1.0)
        ledger = sim.conservation()
        assert ledger["pending"] == 1
        assert ledger["balanced"]
        sim.run_all()
        assert sim.conservation()["pending"] == 0

    def test_property_random_lifecycle_conserves(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        ops = st.lists(
            st.tuples(
                st.sampled_from(["send", "dup", "drop", "leave", "run"]),
                st.integers(min_value=0, max_value=4),
                st.floats(min_value=0.1, max_value=8.0),
            ),
            min_size=1,
            max_size=40,
        )

        @settings(max_examples=40, deadline=None)
        @given(ops)
        def check(sequence):
            sim = Simulator()
            names = [f"p{i}" for i in range(5)]
            for name in names:
                sim.register(Recorder(name))
            for op, idx, delay in sequence:
                target = names[idx]
                if op == "send":
                    sim.interceptor = None
                    sim.send(Message("p0", target, "k", None), delay=delay)
                elif op == "dup":
                    sim.interceptor = lambda m, d: [d, d + 0.5]
                    sim.send(Message("p0", target, "k", None), delay=delay)
                elif op == "drop":
                    sim.interceptor = lambda m, d: []
                    sim.send(Message("p0", target, "k", None), delay=delay)
                elif op == "leave":
                    if sim.is_registered(target) and target != "p0":
                        sim.deregister(target)
                elif op == "run":
                    sim.run_until(sim.now + delay)
                ledger = sim.conservation()
                assert ledger["balanced"], ledger
            sim.run_all()
            final = sim.conservation()
            assert final["pending"] == 0
            assert final["balanced"], final

        check()
