"""Tests for the discrete-event engine."""

import pytest

from repro.netsim import Message, Process, Simulator
from repro.util.errors import StateError


class Recorder(Process):
    """Collects (time, message) pairs for assertions."""

    def __init__(self, address):
        super().__init__(address)
        self.received = []

    def receive(self, message):
        self.received.append((self.simulator.now, message))


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.run_all()
        assert fired == ["early", "late"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("first"))
        sim.schedule(1.0, lambda: fired.append("second"))
        sim.run_all()
        assert fired == ["first", "second"]

    def test_negative_delay_rejected(self):
        with pytest.raises(StateError):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run_until(5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending_events == 1

    def test_run_until_includes_boundary_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(5.0)
        assert fired == [5]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run_all()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_all_guards_runaway(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(StateError):
            sim.run_all(max_events=100)


class TestPeriodic:
    def test_schedule_every_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(2.0, lambda: ticks.append(sim.now))
        sim.run_until(7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_first_delay_override(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(5.0, lambda: ticks.append(sim.now), first_delay=1.0)
        sim.run_until(7.0)
        assert ticks == [1.0, 6.0]

    def test_until_stops_firings(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(1.0, lambda: ticks.append(sim.now), until=3.5)
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_invalid_period_rejected(self):
        with pytest.raises(StateError):
            Simulator().schedule_every(0.0, lambda: None)


class TestMessaging:
    def test_message_delivery(self):
        sim = Simulator()
        alice, bob = Recorder("alice"), Recorder("bob")
        sim.register(alice)
        sim.register(bob)
        sim.run_all()  # run start hooks
        sim.send(Message("alice", "bob", "ping", {"x": 1}, size=3), delay=2.0)
        sim.run_all()
        assert len(bob.received) == 1
        time, message = bob.received[0]
        assert time == 2.0
        assert message.kind == "ping"
        assert message.payload == {"x": 1}

    def test_delivery_counters(self):
        sim = Simulator()
        sim.register(Recorder("a"))
        sim.register(Recorder("b"))
        sim.send(Message("a", "b", "k", None, size=7), delay=1.0)
        sim.run_all()
        assert sim.messages_delivered == 1
        assert sim.bytes_delivered == 7

    def test_process_send_helper(self):
        sim = Simulator()
        alice, bob = Recorder("alice"), Recorder("bob")
        sim.register(alice)
        sim.register(bob)
        sim.run_all()
        alice.send("bob", "hello", 42, delay=1.5)
        sim.run_all()
        assert bob.received[0][1].payload == 42
        assert bob.received[0][1].sender == "alice"

    def test_duplicate_address_rejected(self):
        sim = Simulator()
        sim.register(Recorder("a"))
        with pytest.raises(StateError):
            sim.register(Recorder("a"))

    def test_unknown_recipient_raises_on_delivery(self):
        sim = Simulator()
        sim.register(Recorder("a"))
        sim.send(Message("a", "ghost", "k", None), delay=1.0)
        with pytest.raises(StateError):
            sim.run_all()

    def test_unregistered_process_cannot_send(self):
        ghost = Recorder("ghost")
        with pytest.raises(StateError):
            ghost.send("x", "k", None, delay=1.0)

    def test_start_hook_runs(self):
        class Starter(Process):
            def __init__(self):
                super().__init__("s")
                self.started_at = None

            def start(self):
                self.started_at = self.simulator.now

        sim = Simulator()
        starter = Starter()
        sim.register(starter)
        sim.run_all()
        assert starter.started_at == 0.0
