"""Tests for the CSP-caching hierarchical router."""

import pytest

from repro.core.versioning import MutableCapabilityFeed
from repro.routing import HierarchicalRouter, validate_path
from repro.routing.cache import (
    CachedHierarchicalRouter,
    service_graph_signature,
)
from repro.services import ServiceRequest, linear_graph, branching_graph
from repro.util.errors import NoFeasiblePathError, RoutingError


@pytest.fixture
def cached(framework):
    return CachedHierarchicalRouter(framework.hfc)


class TestSignature:
    def test_equal_graphs_equal_signatures(self):
        a = linear_graph(["x", "y"])
        b = linear_graph(["x", "y"])
        assert service_graph_signature(a) == service_graph_signature(b)

    def test_different_services_differ(self):
        assert service_graph_signature(linear_graph(["x"])) != (
            service_graph_signature(linear_graph(["y"]))
        )

    def test_shape_matters(self):
        linear = linear_graph(["x", "y", "z"])
        branching = branching_graph(chains=[["x"], ["y"]], tail=["z"])
        assert service_graph_signature(linear) != service_graph_signature(branching)


class TestCachedRouting:
    def test_same_results_as_uncached(self, framework, cached):
        plain = HierarchicalRouter(framework.hfc)
        for seed in range(10):
            request = framework.random_request(seed=seed)
            a = cached.route(request)
            b = plain.route(request)
            assert a.hops == b.hops

    def test_repeat_requests_hit(self, framework, cached):
        request = framework.random_request(seed=1)
        cached.route(request)
        assert cached.stats.misses == 1
        cached.route(request)
        cached.route(request)
        assert cached.stats.hits == 2

    def test_same_sg_different_source_in_same_cluster_hits(self, framework, cached):
        members = next(c for c in framework.clustering.clusters if len(c) >= 2)
        service = next(iter(framework.overlay.placement[framework.overlay.proxies[0]]))
        destination = next(
            p for p in framework.overlay.proxies
            if p not in (members[0], members[1])
        )
        sg = linear_graph([service])
        cached.route(ServiceRequest(members[0], sg, destination))
        cached.route(ServiceRequest(members[1], sg, destination))
        assert cached.stats.hits == 1

    def test_different_destination_misses(self, framework, cached):
        proxies = framework.overlay.proxies
        service = next(iter(framework.overlay.placement[proxies[0]]))
        sg = linear_graph([service])
        cached.route(ServiceRequest(proxies[1], sg, proxies[2]))
        cached.route(ServiceRequest(proxies[1], sg, proxies[3]))
        assert cached.stats.hits == 0
        assert cached.stats.misses == 2

    def test_paths_validate(self, framework, cached):
        for seed in range(8):
            request = framework.random_request(seed=seed + 40)
            path = cached.route(request)
            validate_path(path, request, framework.overlay)

    def test_invalidate_clears(self, framework, cached):
        request = framework.random_request(seed=2)
        cached.route(request)
        dropped = cached.invalidate()
        assert dropped == 1
        cached.route(request)
        assert cached.stats.misses == 2
        assert cached.stats.invalidations == 1
        assert cached.stats.entries_dropped == 1

    def test_empty_invalidate_not_counted(self, framework):
        router = CachedHierarchicalRouter(framework.hfc)
        assert router.invalidate() == 0
        assert router.invalidate() == 0
        assert router.stats.invalidations == 0
        assert router.stats.entries_dropped == 0
        request = framework.random_request(seed=2)
        router.route(request)
        assert router.invalidate() == 1
        assert router.stats.invalidations == 1

    def test_update_capabilities_changes_answers(self, framework, cached):
        """After SCT_C changes, cached answers must not leak through."""
        request = framework.random_request(seed=3)
        cached.route(request)
        empty = {cid: frozenset() for cid in range(framework.hfc.cluster_count)}
        cached.update_capabilities(empty)
        with pytest.raises(NoFeasiblePathError):
            cached.route(request)

    def test_lru_eviction(self, framework):
        router = CachedHierarchicalRouter(framework.hfc, cache_size=2)
        requests = [framework.random_request(seed=s) for s in range(3)]
        for request in requests:
            router.route(request)
        router.route(requests[0])  # evicted by the third insert
        assert router.stats.misses == 4

    def test_invalid_cache_size(self, framework):
        with pytest.raises(RoutingError):
            CachedHierarchicalRouter(framework.hfc, cache_size=0)

    def test_hit_rate(self, framework, cached):
        request = framework.random_request(seed=4)
        cached.route(request)
        cached.route(request)
        assert cached.stats.hit_rate == pytest.approx(0.5)


class TestFeedFreshness:
    """Stale-CSP regressions: a feed version move must never leak a cached
    answer computed under the previous capability view."""

    def _empty_caps(self, framework):
        return {cid: frozenset() for cid in range(framework.hfc.cluster_count)}

    def test_late_bound_feed_drops_prefeed_csps(self, framework):
        """Binding a feed to a router that already cached CSPs must fire
        the invalidation hook on the FIRST sync, not only on later bumps.

        Pre-fix, the first feed sync replaced the capability view but
        skipped ``_capabilities_changed`` — CSPs cached under the
        constructor-default (ground truth) view were served against the
        feed's content forever.
        """
        router = CachedHierarchicalRouter(framework.hfc)
        request = framework.random_request(seed=3)
        router.route(request)  # cached under the ground-truth default view
        router.capability_feed = MutableCapabilityFeed(self._empty_caps(framework))
        with pytest.raises(NoFeasiblePathError):
            router.route(request)

    def test_late_bound_feed_drops_prefeed_csps_in_batch(self, framework):
        """Same first-sync hole through the route_many batch engine."""
        router = CachedHierarchicalRouter(framework.hfc)
        requests = [framework.random_request(seed=s) for s in range(4)]
        router.route_many(requests)
        router.capability_feed = MutableCapabilityFeed(self._empty_caps(framework))
        with pytest.raises(NoFeasiblePathError):
            router.route_many(requests)

    def test_feed_bump_between_batches_recomputes(self, framework):
        """route_many must resync the feed at batch start: a version bump
        between two batches may not serve the first batch's CSPs."""
        feed = MutableCapabilityFeed(framework.capability_feed().capabilities())
        router = CachedHierarchicalRouter(framework.hfc, capability_feed=feed)
        requests = [framework.random_request(seed=s) for s in range(4)]
        first = router.route_many(requests)
        misses_after_first = router.stats.misses
        feed.publish(self._empty_caps(framework))
        with pytest.raises(NoFeasiblePathError):
            router.route_many(requests)
        # the failed batch recomputed rather than hitting stale entries
        assert router.stats.misses > misses_after_first
        # publishing the original view again serves correct paths anew
        feed.publish(framework.capability_feed().capabilities())
        second = router.route_many(requests)
        assert [p.hops for p in second] == [p.hops for p in first]
