"""Tests for flat routers (coordinate, oracle, mesh, HFC-full-state)."""

import random

import pytest

from repro.overlay import build_mesh
from repro.routing import (
    CoordinateProvider,
    MatrixProvider,
    MeshRouter,
    TrueDelayProvider,
    coordinate_router,
    hfc_full_state_router,
    oracle_router,
    validate_path,
)
from repro.services import ServiceRequest, linear_graph
from repro.util.errors import NoFeasiblePathError, RoutingError

import numpy as np


def sample_requests(framework, count, seed=0):
    rng = random.Random(seed)
    return [framework.random_request(seed=rng.randint(0, 10**9)) for _ in range(count)]


class TestProviders:
    def test_coordinate_provider_pair_vs_block(self, tiny_framework):
        provider = CoordinateProvider(tiny_framework.space)
        proxies = tiny_framework.overlay.proxies[:5]
        block = provider.block(proxies, proxies)
        for i, u in enumerate(proxies):
            for j, v in enumerate(proxies):
                assert block[i, j] == pytest.approx(provider.pair(u, v))

    def test_true_provider_matches_overlay(self, tiny_framework):
        provider = TrueDelayProvider(tiny_framework.overlay)
        u, v = tiny_framework.overlay.proxies[:2]
        assert provider.pair(u, v) == pytest.approx(
            tiny_framework.overlay.true_delay(u, v)
        )

    def test_matrix_provider_validation(self):
        with pytest.raises(RoutingError):
            MatrixProvider({1: 0}, np.zeros((2, 3)))

    def test_matrix_provider_unknown_proxy(self):
        provider = MatrixProvider({1: 0, 2: 1}, np.zeros((2, 2)))
        with pytest.raises(RoutingError):
            provider.pair(1, 99)


class TestCoordinateAndOracleRouters:
    def test_paths_validate(self, tiny_framework):
        router = coordinate_router(tiny_framework.overlay)
        for request in sample_requests(tiny_framework, 10, seed=1):
            path = router.route(request)
            validate_path(path, request, tiny_framework.overlay)

    def test_oracle_never_worse_than_coords(self, tiny_framework):
        """On true delay, oracle routing must beat estimate-based routing."""
        coords = coordinate_router(tiny_framework.overlay)
        oracle = oracle_router(tiny_framework.overlay)
        overlay = tiny_framework.overlay
        total_coords, total_oracle = 0.0, 0.0
        for request in sample_requests(tiny_framework, 20, seed=2):
            total_coords += coords.route(request).true_delay(overlay)
            total_oracle += oracle.route(request).true_delay(overlay)
        assert total_oracle <= total_coords + 1e-9

    def test_no_relays_on_full_topology(self, tiny_framework):
        router = coordinate_router(tiny_framework.overlay)
        for request in sample_requests(tiny_framework, 10, seed=3):
            assert router.route(request).relay_count() == 0

    def test_unknown_service_infeasible(self, tiny_framework):
        overlay = tiny_framework.overlay
        request = ServiceRequest(
            overlay.proxies[0], linear_graph(["no-such-service"]), overlay.proxies[1]
        )
        with pytest.raises(NoFeasiblePathError):
            coordinate_router(tiny_framework.overlay).route(request)

    def test_reference_and_numpy_solvers_agree(self, tiny_framework):
        fast = coordinate_router(tiny_framework.overlay, use_numpy=True)
        slow = coordinate_router(tiny_framework.overlay, use_numpy=False)
        overlay = tiny_framework.overlay
        for request in sample_requests(tiny_framework, 10, seed=4):
            a = fast.route(request).true_delay(overlay)
            b = slow.route(request).true_delay(overlay)
            assert a == pytest.approx(b)

    def test_candidate_filter_restricts(self, tiny_framework):
        overlay = tiny_framework.overlay
        allowed = set(overlay.proxies[: len(overlay.proxies) // 2])
        router = coordinate_router(tiny_framework.overlay)
        router.candidate_filter = allowed.__contains__
        for request in sample_requests(tiny_framework, 10, seed=5):
            try:
                path = router.route(request)
            except NoFeasiblePathError:
                continue
            for hop in path.service_hops():
                assert hop.proxy in allowed


class TestMeshRouter:
    @pytest.fixture(scope="class")
    def mesh_router(self, tiny_framework):
        mesh = build_mesh(tiny_framework.overlay, seed=6)
        return MeshRouter(tiny_framework.overlay, mesh)

    def test_paths_validate(self, tiny_framework, mesh_router):
        for request in sample_requests(tiny_framework, 10, seed=7):
            path = mesh_router.route(request)
            validate_path(path, request, tiny_framework.overlay)

    def test_consecutive_hops_are_mesh_edges(self, tiny_framework, mesh_router):
        for request in sample_requests(tiny_framework, 10, seed=8):
            path = mesh_router.route(request)
            proxies = path.proxies()
            for u, v in zip(proxies, proxies[1:]):
                assert mesh_router.mesh.has_edge(u, v)

    def test_mesh_distance_symmetric(self, tiny_framework, mesh_router):
        u, v = tiny_framework.overlay.proxies[:2]
        assert mesh_router.mesh_distance(u, v) == pytest.approx(
            mesh_router.mesh_distance(v, u)
        )

    def test_missing_proxy_in_mesh_rejected(self, tiny_framework):
        from repro.graph import Graph

        empty = Graph()
        with pytest.raises(RoutingError):
            MeshRouter(tiny_framework.overlay, empty)

    def test_relays_appear_for_distant_services(self, tiny_framework, mesh_router):
        """Across many requests, mesh paths must use at least some relays —
        the paper's core observation about static meshes."""
        relay_total = sum(
            mesh_router.route(r).relay_count()
            for r in sample_requests(tiny_framework, 20, seed=9)
        )
        assert relay_total > 0


class TestHfcFullStateRouter:
    def test_paths_validate(self, framework):
        router = hfc_full_state_router(framework.hfc)
        for request in sample_requests(framework, 10, seed=10):
            path = router.route(request)
            validate_path(path, request, framework.overlay)

    def test_cross_cluster_hops_expand_through_borders(self, framework):
        router = hfc_full_state_router(framework.hfc)
        hfc = framework.hfc
        for request in sample_requests(framework, 10, seed=11):
            path = router.route(request)
            proxies = path.proxies()
            for u, v in zip(proxies, proxies[1:]):
                cu, cv = hfc.cluster_of(u), hfc.cluster_of(v)
                if cu != cv:
                    # a direct cross-cluster hop must be an external border link
                    assert u in hfc.border_nodes(cu)
                    assert v in hfc.border_nodes(cv)
