"""Tests for OverlayNetwork, the mesh baseline, and the HFC topology."""

import numpy as np
import pytest

from repro.graph import is_connected
from repro.overlay import OverlayNetwork, build_hfc, build_mesh, mesh_statistics
from repro.services import generic_catalog, install_services
from repro.util.errors import ServiceModelError, TopologyError


@pytest.fixture(scope="module")
def overlay(framework):
    return framework.overlay


class TestOverlayNetwork:
    def test_size(self, overlay):
        assert overlay.size == 80

    def test_index_roundtrip(self, overlay):
        for i, proxy in enumerate(overlay.proxies):
            assert overlay.index_of(proxy) == i

    def test_unknown_proxy_raises(self, overlay):
        with pytest.raises(TopologyError):
            overlay.index_of(-12345)

    def test_services_of(self, overlay):
        proxy = overlay.proxies[0]
        assert overlay.services_of(proxy) == overlay.placement[proxy]

    def test_providers_of_consistent(self, overlay):
        service = next(iter(overlay.placement[overlay.proxies[0]]))
        providers = overlay.providers_of(service)
        assert overlay.proxies[0] in providers
        for p in providers:
            assert service in overlay.placement[p]

    def test_true_delay_matrix_cached_and_symmetric(self, overlay):
        m1 = overlay.true_delay_matrix()
        m2 = overlay.true_delay_matrix()
        assert m1 is m2
        assert np.allclose(m1, m1.T)

    def test_missing_placement_rejected(self, small_physical):
        proxies = small_physical.pick_overlay_nodes(5, seed=1)
        with pytest.raises(ServiceModelError):
            OverlayNetwork(physical=small_physical, proxies=proxies, placement={})

    def test_duplicate_proxies_rejected(self, small_physical):
        proxies = small_physical.pick_overlay_nodes(3, seed=1)
        placement = install_services(proxies, generic_catalog(10),
                                     min_per_proxy=1, max_per_proxy=2, seed=2)
        with pytest.raises(TopologyError):
            OverlayNetwork(
                physical=small_physical,
                proxies=proxies + [proxies[0]],
                placement=placement,
            )

    def test_coordinate_distance_requires_space(self, small_physical):
        proxies = small_physical.pick_overlay_nodes(3, seed=1)
        placement = install_services(proxies, generic_catalog(10),
                                     min_per_proxy=1, max_per_proxy=2, seed=2)
        bare = OverlayNetwork(
            physical=small_physical, proxies=proxies, placement=placement
        )
        with pytest.raises(TopologyError):
            bare.coordinate_distance(proxies[0], proxies[1])


class TestMesh:
    def test_connected(self, overlay):
        mesh = build_mesh(overlay, seed=1)
        assert is_connected(mesh)

    def test_every_proxy_present(self, overlay):
        mesh = build_mesh(overlay, seed=1)
        assert set(mesh.nodes()) == set(overlay.proxies)

    def test_degrees_bounded_below(self, overlay):
        mesh = build_mesh(overlay, seed=1)
        # every proxy initiated at least near_min + far_min links
        for node in mesh.nodes():
            assert mesh.degree(node) >= 2

    def test_true_weights_match_delays(self, overlay):
        mesh = build_mesh(overlay, weight="true", seed=1)
        for u, v, w in mesh.edges():
            assert w == pytest.approx(overlay.true_delay(u, v))

    def test_coords_weights_match_space(self, overlay):
        mesh = build_mesh(overlay, weight="coords", seed=1)
        for u, v, w in mesh.edges():
            assert w == pytest.approx(overlay.coordinate_distance(u, v))

    def test_bad_weight_rejected(self, overlay):
        with pytest.raises(TopologyError):
            build_mesh(overlay, weight="guess")

    def test_bad_bounds_rejected(self, overlay):
        with pytest.raises(TopologyError):
            build_mesh(overlay, near_min=0, near_max=0)

    def test_deterministic_for_seed(self, overlay):
        a = build_mesh(overlay, seed=9)
        b = build_mesh(overlay, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_statistics_keys(self, overlay):
        stats = mesh_statistics(build_mesh(overlay, seed=1))
        assert stats["nodes"] == overlay.size
        assert stats["degree_min"] >= 1
        assert stats["degree_mean"] > 2


class TestHFCTopology:
    def test_border_pairs_exist_for_all_cluster_pairs(self, framework):
        hfc = framework.hfc
        k = hfc.cluster_count
        for i in range(k):
            for j in range(k):
                if i != j:
                    b = hfc.border(i, j)
                    assert hfc.cluster_of(b) == i

    def test_border_symmetric_pairs(self, framework):
        hfc = framework.hfc
        k = hfc.cluster_count
        for i in range(k):
            for j in range(i + 1, k):
                assert hfc.external_estimate(i, j) == pytest.approx(
                    hfc.external_estimate(j, i)
                )

    def test_self_border_rejected(self, framework):
        with pytest.raises(TopologyError):
            framework.hfc.border(0, 0)

    def test_closest_pair_rule(self, framework):
        """The border pair must realise the minimum cross-cluster distance."""
        hfc = framework.hfc
        space = hfc.space
        for i in range(min(3, hfc.cluster_count)):
            for j in range(i + 1, min(4, hfc.cluster_count)):
                best = min(
                    space.distance(u, v)
                    for u in hfc.members(i)
                    for v in hfc.members(j)
                )
                assert hfc.external_estimate(i, j) == pytest.approx(best)

    def test_random_border_rule_valid_but_not_closest(self, framework):
        hfc_rand = build_hfc(
            framework.overlay, framework.clustering, border_rule="random", seed=3
        )
        k = hfc_rand.cluster_count
        for i in range(k):
            for j in range(k):
                if i != j:
                    assert hfc_rand.cluster_of(hfc_rand.border(i, j)) == i

    def test_bad_border_rule_rejected(self, framework):
        with pytest.raises(TopologyError):
            build_hfc(framework.overlay, framework.clustering, border_rule="magic")

    def test_overlay_graph_two_hop_property(self, framework):
        """In HFC any two proxies are connected; intra-cluster pairs directly."""
        graph = framework.hfc.overlay_graph("coords")
        assert is_connected(graph)
        clustering = framework.clustering
        for members in clustering.clusters[:3]:
            for a_idx, u in enumerate(members):
                for v in members[a_idx + 1:]:
                    assert graph.has_edge(u, v)

    def test_overlay_graph_true_weights(self, framework):
        graph = framework.hfc.overlay_graph("true")
        u, v, w = next(graph.edges())
        assert w == pytest.approx(framework.overlay.true_delay(u, v))

    def test_overlay_graph_bad_weight(self, framework):
        with pytest.raises(TopologyError):
            framework.hfc.overlay_graph("estimated")

    def test_border_load_counts(self, framework):
        hfc = framework.hfc
        load = hfc.border_load()
        k = hfc.cluster_count
        assert sum(load.values()) == k * (k - 1)
        assert max(load.values()) <= k - 1

    def test_routing_matrices_properties(self, framework):
        route, true = framework.hfc.routing_matrices()
        n = framework.overlay.size
        assert route.shape == true.shape == (n, n)
        assert np.isfinite(route).all() and np.isfinite(true).all()
        assert np.all(np.diag(route) == 0) and np.all(np.diag(true) == 0)
        # true companion can never beat the physical shortest path
        physical = framework.overlay.true_delay_matrix()
        assert np.all(true >= physical - 1e-9)

    def test_routing_matrix_intra_cluster_is_direct(self, framework):
        route, true = framework.hfc.routing_matrices()
        overlay = framework.overlay
        members = framework.clustering.clusters[0]
        if len(members) >= 2:
            u, v = members[0], members[1]
            i, j = overlay.index_of(u), overlay.index_of(v)
            assert route[i, j] == pytest.approx(framework.space.distance(u, v))
            assert true[i, j] == pytest.approx(overlay.true_delay(u, v))

    def test_expand_hop_endpoints(self, framework):
        hfc = framework.hfc
        members0 = hfc.members(0)
        members1 = hfc.members(1)
        chain = hfc.expand_hop(members0[0], members1[0])
        assert chain[0] == members0[0]
        assert chain[-1] == members1[0]
        assert len(chain) >= 2

    def test_expand_hop_same_cluster_direct(self, framework):
        members = framework.hfc.members(0)
        if len(members) >= 2:
            assert framework.hfc.expand_hop(members[0], members[1]) == [
                members[0],
                members[1],
            ]

    def test_expand_hop_self(self, framework):
        proxy = framework.overlay.proxies[0]
        assert framework.hfc.expand_hop(proxy, proxy) == [proxy]


class TestGabrielMesh:
    def test_connected_by_construction(self, overlay):
        from repro.overlay import build_gabriel_mesh

        mesh = build_gabriel_mesh(overlay)
        assert is_connected(mesh)

    def test_contains_euclidean_mst(self, overlay):
        """The Gabriel graph is a supergraph of the EMST."""
        from repro.graph import euclidean_mst
        from repro.overlay import build_gabriel_mesh

        mesh = build_gabriel_mesh(overlay)
        points = overlay.space.array(overlay.proxies)
        for i, j, _ in euclidean_mst(points):
            assert mesh.has_edge(overlay.proxies[i], overlay.proxies[j])

    def test_gabriel_condition_holds(self, overlay):
        """No third proxy lies inside any edge's diameter circle."""

        from repro.overlay import build_gabriel_mesh

        mesh = build_gabriel_mesh(overlay)
        space = overlay.space
        edges = list(mesh.edges())[:40]
        for u, v, _ in edges:
            duv_sq = space.distance(u, v) ** 2
            for w in overlay.proxies:
                if w in (u, v):
                    continue
                inside = (
                    space.distance(u, w) ** 2 + space.distance(v, w) ** 2
                    < duv_sq - 1e-9
                )
                assert not inside

    def test_deterministic(self, overlay):
        from repro.overlay import build_gabriel_mesh

        a = build_gabriel_mesh(overlay)
        b = build_gabriel_mesh(overlay)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_routable(self, framework):
        from repro.overlay import build_gabriel_mesh
        from repro.routing import MeshRouter, validate_path

        mesh = build_gabriel_mesh(framework.overlay)
        router = MeshRouter(framework.overlay, mesh)
        for seed in range(5):
            request = framework.random_request(seed=seed)
            validate_path(router.route(request), request, framework.overlay)


class TestRoutingMatricesCorrectness:
    def test_route_matrix_equals_dijkstra_on_overlay_graph(self, framework):
        """The vectorised min-plus pipeline must agree with plain Dijkstra
        over the explicit coordinate-weighted HFC overlay graph."""
        import random

        from repro.graph.shortest_paths import dijkstra

        route, _ = framework.hfc.routing_matrices()
        graph = framework.hfc.overlay_graph("coords")
        overlay = framework.overlay
        rng = random.Random(17)
        sources = rng.sample(overlay.proxies, 6)
        for source in sources:
            dist, _ = dijkstra(graph, source)
            i = overlay.index_of(source)
            for target in rng.sample(overlay.proxies, 12):
                j = overlay.index_of(target)
                assert route[i, j] == pytest.approx(dist[target], rel=1e-9)

    def test_true_companion_matches_expanded_route(self, framework):
        """true[i, j] must equal the physical delay summed along the
        coordinate-optimal relay expansion."""
        import random

        route, true = framework.hfc.routing_matrices()
        overlay = framework.overlay
        rng = random.Random(18)
        for _ in range(15):
            u, v = rng.sample(overlay.proxies, 2)
            chain = framework.hfc.expand_hop(u, v)
            expected = sum(
                overlay.true_delay(a, b) for a, b in zip(chain, chain[1:])
            )
            i, j = overlay.index_of(u), overlay.index_of(v)
            assert true[i, j] == pytest.approx(expected, rel=1e-9)
