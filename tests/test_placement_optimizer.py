"""Tests for the service-placement optimiser (E8)."""

import pytest

from repro.placement import (
    demand_weights,
    greedy_kmedian,
    optimize_placement,
)
from repro.util.errors import ServiceModelError


class TestDemandWeights:
    def test_uniform_equal(self, tiny_framework):
        weights = demand_weights(tiny_framework.catalog)
        values = set(round(v, 12) for v in weights.values())
        assert len(values) == 1

    def test_zipf_skews(self, tiny_framework):
        weights = demand_weights(tiny_framework.catalog, popularity="zipf")
        names = list(tiny_framework.catalog.names)
        assert weights[names[0]] > weights[names[-1]]

    def test_normalised(self, tiny_framework):
        for pop in ("uniform", "zipf"):
            weights = demand_weights(tiny_framework.catalog, popularity=pop)
            assert sum(weights.values()) == pytest.approx(1.0)

    def test_unknown_model_rejected(self, tiny_framework):
        with pytest.raises(ServiceModelError):
            demand_weights(tiny_framework.catalog, popularity="pareto")


class TestGreedyKMedian:
    def test_single_facility_is_medianish(self, tiny_framework):
        space = tiny_framework.space
        proxies = tiny_framework.overlay.proxies
        picked = greedy_kmedian(space, proxies, proxies, 1)
        assert len(picked) == 1
        # the greedy pick must beat a random proxy on mean distance
        import numpy as np

        def mean_dist(f):
            return float(
                np.mean([space.distance(c, f) for c in proxies])
            )

        chosen_cost = mean_dist(picked[0])
        costs = sorted(mean_dist(p) for p in proxies)
        assert chosen_cost == pytest.approx(costs[0])

    def test_more_facilities_never_worse(self, tiny_framework):
        import numpy as np

        space = tiny_framework.space
        proxies = tiny_framework.overlay.proxies

        def coverage_cost(facilities):
            return float(
                np.mean(
                    [
                        min(space.distance(c, f) for f in facilities)
                        for c in proxies
                    ]
                )
            )

        one = greedy_kmedian(space, proxies, proxies, 1)
        three = greedy_kmedian(space, proxies, proxies, 3)
        assert coverage_cost(three) <= coverage_cost(one) + 1e-9

    def test_k_clamped_to_candidates(self, tiny_framework):
        space = tiny_framework.space
        proxies = tiny_framework.overlay.proxies[:3]
        picked = greedy_kmedian(space, proxies, tiny_framework.overlay.proxies, 10)
        assert len(picked) <= 3

    def test_invalid_k_rejected(self, tiny_framework):
        with pytest.raises(ServiceModelError):
            greedy_kmedian(
                tiny_framework.space,
                tiny_framework.overlay.proxies,
                tiny_framework.overlay.proxies,
                0,
            )


class TestOptimizePlacement:
    @pytest.fixture(scope="class")
    def plan(self, framework):
        return optimize_placement(
            framework.overlay, framework.catalog, popularity="zipf", seed=1
        )

    def test_budget_preserved(self, framework, plan):
        original = sum(len(s) for s in framework.overlay.placement.values())
        assert sum(plan.replicas.values()) == original

    def test_replicas_bounded_by_proxies(self, framework, plan):
        n = framework.overlay.size
        assert all(1 <= r <= n for r in plan.replicas.values())

    def test_every_service_placed(self, framework, plan):
        covered = set()
        for services in plan.placement.values():
            covered |= services
        assert covered == set(framework.catalog.names)

    def test_popular_services_more_replicated(self, framework, plan):
        names = list(framework.catalog.names)
        assert plan.replicas[names[0]] >= plan.replicas[names[-1]]

    def test_demand_aware_beats_original_on_matching_workload(self, framework, plan):
        """Routing a Zipf workload over the optimised placement must beat
        the demand-oblivious original at the same replica budget."""
        import random

        from repro.overlay import OverlayNetwork, build_hfc
        from repro.routing import HierarchicalRouter
        from repro.services import ServiceRequest, linear_graph
        from repro.util.errors import NoFeasiblePathError

        optimized_overlay = OverlayNetwork(
            physical=framework.physical,
            proxies=framework.overlay.proxies,
            placement=plan.placement,
            space=framework.space,
        )
        optimized_hfc = build_hfc(optimized_overlay, framework.clustering)
        original = HierarchicalRouter(framework.hfc)
        optimized = HierarchicalRouter(optimized_hfc)

        names = list(framework.catalog.names)
        weights = [1.0 / (i + 1) for i in range(len(names))]
        rng = random.Random(5)
        base_total = opt_total = 0.0
        counted = 0
        for _ in range(60):
            src, dst = rng.sample(framework.overlay.proxies, 2)
            services = rng.choices(names, weights=weights, k=rng.randint(4, 8))
            request = ServiceRequest(src, linear_graph(services), dst)
            try:
                a = original.route(request).true_delay(framework.overlay)
                b = optimized.route(request).true_delay(optimized_overlay)
            except NoFeasiblePathError:
                continue
            base_total += a
            opt_total += b
            counted += 1
        assert counted > 40
        assert opt_total < base_total

    def test_budget_too_small_rejected(self, framework):
        with pytest.raises(ServiceModelError):
            optimize_placement(
                framework.overlay, framework.catalog, replica_budget=1
            )
