"""Tests for state tables, the distribution protocol, and overhead accounting."""

import pytest

from repro.state import (
    ProxyState,
    ServiceCapabilityTable,
    StateDistributionProtocol,
    coordinates_node_states,
    flat_node_states,
    mean_coordinates_overhead,
    mean_service_overhead,
    service_node_states,
)
from repro.util.errors import StateError


class TestServiceCapabilityTable:
    def test_update_and_lookup(self):
        table = ServiceCapabilityTable()
        assert table.update("p1", frozenset({"a"}), now=1.0) is True
        assert table.services_of("p1") == frozenset({"a"})
        assert table.updated_at("p1") == 1.0

    def test_unchanged_update_returns_false(self):
        table = ServiceCapabilityTable()
        table.update("p1", frozenset({"a"}), now=1.0)
        assert table.update("p1", frozenset({"a"}), now=2.0) is False
        assert table.updated_at("p1") == 2.0  # timestamp still refreshes

    def test_changed_update_returns_true(self):
        table = ServiceCapabilityTable()
        table.update("p1", frozenset({"a"}))
        assert table.update("p1", frozenset({"a", "b"})) is True

    def test_missing_entry_raises(self):
        with pytest.raises(StateError):
            ServiceCapabilityTable().services_of("ghost")

    def test_remove(self):
        table = ServiceCapabilityTable()
        table.update("p1", frozenset({"a"}))
        table.remove("p1")
        assert "p1" not in table
        table.remove("p1")  # idempotent

    def test_as_dict_snapshot(self):
        table = ServiceCapabilityTable()
        table.update("p1", frozenset({"a"}))
        snap = table.as_dict()
        table.update("p2", frozenset({"b"}))
        assert set(snap) == {"p1"}

    def test_len(self):
        table = ServiceCapabilityTable()
        table.update("x", frozenset())
        table.update("y", frozenset())
        assert len(table) == 2


class TestProxyState:
    def test_aggregate_own_cluster(self):
        state = ProxyState(proxy="p1", cluster_id=0)
        state.sct_p.update("p1", frozenset({"a"}))
        state.sct_p.update("p2", frozenset({"b", "c"}))
        assert state.aggregate_own_cluster() == frozenset({"a", "b", "c"})

    def test_local_capability(self):
        state = ProxyState(proxy="p1", cluster_id=0)
        state.sct_p.update("p1", frozenset({"a"}))
        assert state.local_capability() == frozenset({"a"})


class TestProtocol:
    @pytest.fixture(scope="class")
    def report_and_protocol(self, framework):
        protocol = StateDistributionProtocol(framework.hfc, seed=5)
        report = protocol.run(max_time=30000.0)
        return report, protocol

    def test_converges(self, report_and_protocol):
        report, protocol = report_and_protocol
        assert report.converged_at is not None
        assert protocol.converged()

    def test_sct_p_matches_ground_truth(self, report_and_protocol, framework):
        _, protocol = report_and_protocol
        for proxy, state in protocol.states.items():
            assert state.sct_p.as_dict() == protocol.ground_truth_sct_p(proxy)

    def test_sct_c_matches_ground_truth(self, report_and_protocol):
        _, protocol = report_and_protocol
        truth = protocol.ground_truth_sct_c()
        for state in protocol.states.values():
            assert state.sct_c.as_dict() == truth

    def test_all_message_kinds_used(self, report_and_protocol, framework):
        report, _ = report_and_protocol
        assert report.messages_by_kind.get("local_state", 0) > 0
        if framework.hfc.cluster_count > 1:
            assert report.messages_by_kind.get("aggregate_state", 0) > 0
            assert report.messages_by_kind.get("aggregate_forward", 0) > 0

    def test_message_sizes_accumulate(self, report_and_protocol):
        report, _ = report_and_protocol
        assert report.total_size >= report.total_messages  # every service set >= 1

    def test_routing_from_protocol_state(self, report_and_protocol, framework):
        """Converged SCT_C drives the hierarchical router correctly."""
        from repro.routing import HierarchicalRouter, validate_path

        _, protocol = report_and_protocol
        capabilities = protocol.capabilities_for_routing()
        router = HierarchicalRouter(
            framework.hfc, cluster_capabilities=capabilities
        )
        request = framework.random_request(seed=3)
        validate_path(router.route(request), request, framework.overlay)

    def test_invalid_periods_rejected(self, framework):
        with pytest.raises(StateError):
            StateDistributionProtocol(framework.hfc, local_period=0)

    def test_non_convergence_reported_as_none(self, framework):
        protocol = StateDistributionProtocol(framework.hfc, seed=5)
        report = protocol.run(max_time=1.0)  # far too short
        assert report.converged_at is None


class TestOverheadAccounting:
    def test_flat_is_n(self):
        assert flat_node_states(250) == 250

    def test_coordinates_node_states_formula(self, framework):
        hfc = framework.hfc
        states = coordinates_node_states(hfc)
        borders = set(hfc.all_border_nodes())
        for proxy, value in states.items():
            members = set(hfc.members(hfc.cluster_of(proxy)))
            assert value == len(members) + len(borders - members)

    def test_service_node_states_formula(self, framework):
        hfc = framework.hfc
        states = service_node_states(hfc)
        for proxy, value in states.items():
            members = hfc.members(hfc.cluster_of(proxy))
            assert value == len(members) + hfc.cluster_count

    def test_every_proxy_accounted(self, framework):
        assert set(coordinates_node_states(framework.hfc)) == set(
            framework.overlay.proxies
        )

    def test_hierarchical_beats_flat(self, framework):
        """The paper's core claim at this size: HFC keeps far fewer states."""
        n = framework.overlay.size
        assert mean_coordinates_overhead(framework.hfc) < n
        assert mean_service_overhead(framework.hfc) < n

    def test_means_positive(self, framework):
        assert mean_coordinates_overhead(framework.hfc) > 0
        assert mean_service_overhead(framework.hfc) > 0


class TestProtocolDynamics:
    def test_reconvergence_after_service_change(self, framework):
        """Installing a new service mid-run must propagate and re-converge."""
        from repro.state import StateDistributionProtocol

        protocol = StateDistributionProtocol(framework.hfc, seed=7)
        first = protocol.run(max_time=30000.0)
        assert first.converged_at is not None

        victim = framework.overlay.proxies[0]
        old = framework.overlay.placement[victim]
        try:
            protocol.update_local_services(victim, old | {"brand-new-service"})
            assert not protocol.converged()  # peers do not know yet
            second = protocol.run(max_time=protocol.sim.now + 30000.0)
            assert second.converged_at is not None
            # every proxy in the victim's cluster sees the new SCT_P entry
            cid = framework.hfc.cluster_of(victim)
            for member in framework.hfc.members(cid):
                table = protocol.states[member].sct_p
                assert "brand-new-service" in table.services_of(victim)
            # every proxy system-wide sees it in the cluster aggregate
            for state in protocol.states.values():
                assert "brand-new-service" in state.sct_c.services_of(cid)
        finally:
            framework.overlay.placement[victim] = old

    def test_update_unknown_proxy_rejected(self, framework):
        from repro.state import StateDistributionProtocol
        from repro.util.errors import StateError

        protocol = StateDistributionProtocol(framework.hfc, seed=7)
        with pytest.raises(StateError):
            protocol.update_local_services(-1, frozenset())

    def test_service_removal_propagates(self, framework):
        """Uninstalling a service must eventually disappear from aggregates
        (set-union aggregation handles removals because borders rebuild the
        union from SCT_P each period rather than merging increments)."""
        from repro.state import StateDistributionProtocol

        protocol = StateDistributionProtocol(framework.hfc, seed=8)
        victim = framework.overlay.proxies[0]
        old = framework.overlay.placement[victim]
        try:
            protocol.update_local_services(victim, old | {"temp-service"})
            report = protocol.run(max_time=30000.0)
            assert report.converged_at is not None
            protocol.update_local_services(victim, old)
            second = protocol.run(max_time=protocol.sim.now + 30000.0)
            assert second.converged_at is not None
            cid = framework.hfc.cluster_of(victim)
            for state in protocol.states.values():
                assert "temp-service" not in state.sct_c.services_of(cid)
        finally:
            framework.overlay.placement[victim] = old


class TestProtocolUnderLoss:
    def test_converges_despite_heavy_loss(self, framework):
        """The periodic soft-state design must heal 30% message loss."""
        from repro.state import StateDistributionProtocol

        protocol = StateDistributionProtocol(
            framework.hfc, loss_rate=0.3, seed=13
        )
        report = protocol.run(max_time=60000.0)
        assert protocol.messages_dropped > 0
        assert report.converged_at is not None

    def test_loss_slows_convergence(self, framework):
        from repro.state import StateDistributionProtocol

        clean = StateDistributionProtocol(framework.hfc, seed=14)
        lossy = StateDistributionProtocol(
            framework.hfc, loss_rate=0.4, seed=14
        )
        t_clean = clean.run(max_time=60000.0).converged_at
        t_lossy = lossy.run(max_time=60000.0).converged_at
        assert t_clean is not None and t_lossy is not None
        assert t_lossy >= t_clean

    def test_invalid_loss_rate_rejected(self, framework):
        from repro.state import StateDistributionProtocol
        from repro.util.errors import StateError

        with pytest.raises(StateError):
            StateDistributionProtocol(framework.hfc, loss_rate=1.0)
        with pytest.raises(StateError):
            StateDistributionProtocol(framework.hfc, loss_rate=-0.1)

    def test_zero_loss_drops_nothing(self, framework):
        from repro.state import StateDistributionProtocol

        protocol = StateDistributionProtocol(framework.hfc, seed=15)
        protocol.run(max_time=5000.0)
        assert protocol.messages_dropped == 0
