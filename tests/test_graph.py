"""Unit tests for the graph substrate (repro.graph.graph)."""

import pytest

from repro.graph import Graph
from repro.util.errors import GraphError


@pytest.fixture
def triangle():
    g = Graph()
    g.add_edge("a", "b", 1.0)
    g.add_edge("b", "c", 2.0)
    g.add_edge("a", "c", 4.0)
    return g


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.node_count == 0
        assert g.edge_count == 0
        assert g.nodes() == []

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(1)
        g.add_node(1)
        assert g.node_count == 1

    def test_add_nodes_bulk(self):
        g = Graph()
        g.add_nodes(range(5))
        assert g.node_count == 5

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge(1, 2, 3.0)
        assert 1 in g and 2 in g
        assert g.weight(1, 2) == 3.0

    def test_edge_is_undirected(self, triangle):
        assert triangle.weight("a", "b") == triangle.weight("b", "a")

    def test_re_adding_edge_overwrites_weight(self):
        g = Graph()
        g.add_edge(1, 2, 3.0)
        g.add_edge(1, 2, 7.0)
        assert g.weight(1, 2) == 7.0
        assert g.edge_count == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1, 1.0)

    def test_negative_weight_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 2, -0.5)


class TestQueries:
    def test_edge_count(self, triangle):
        assert triangle.edge_count == 3

    def test_edges_yields_each_once(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        pairs = {frozenset((u, v)) for u, v, _ in edges}
        assert len(pairs) == 3

    def test_neighbors(self, triangle):
        assert triangle.neighbors("a") == {"b": 1.0, "c": 4.0}

    def test_degree(self, triangle):
        assert triangle.degree("a") == 2

    def test_total_weight(self, triangle):
        assert triangle.total_weight() == pytest.approx(7.0)

    def test_missing_edge_weight_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.weight("a", "zzz")

    def test_missing_node_neighbors_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.neighbors("zzz")

    def test_len_matches_node_count(self, triangle):
        assert len(triangle) == triangle.node_count == 3


class TestMutation:
    def test_remove_edge(self, triangle):
        triangle.remove_edge("a", "b")
        assert not triangle.has_edge("a", "b")
        assert triangle.node_count == 3

    def test_remove_missing_edge_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.remove_edge("a", "zzz")

    def test_remove_node_drops_incident_edges(self, triangle):
        triangle.remove_node("a")
        assert "a" not in triangle
        assert not triangle.has_edge("b", "a")
        assert triangle.edge_count == 1

    def test_remove_missing_node_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.remove_node("zzz")


class TestDerived:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge("a", "b")
        assert triangle.has_edge("a", "b")
        assert not clone.has_edge("a", "b")

    def test_subgraph_induces_edges(self, triangle):
        sub = triangle.subgraph(["a", "b"])
        assert sub.node_count == 2
        assert sub.has_edge("a", "b")
        assert not sub.has_edge("a", "c")

    def test_subgraph_ignores_unknown_nodes(self, triangle):
        sub = triangle.subgraph(["a", "unknown"])
        assert sub.node_count == 1
