"""Tests for the service-DAG solvers: reference, vectorised, brute force.

The key property pinning the whole routing layer: on random inputs the
vectorised solver, the pure-Python reference, and exhaustive brute force all
return the same optimal cost.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import brute_force, solve_reference, solve_vectorised
from repro.services import ServiceGraph, linear_graph, branching_graph
from repro.util.errors import NoFeasiblePathError, RoutingError


def metric_from_points(points):
    """pair/block callbacks over a dict of instance -> 2-D point."""

    def pair(u, v):
        return math.dist(points[u], points[v])

    def block(us, vs):
        return np.array([[pair(u, v) for v in vs] for u in us])

    return pair, block


SIMPLE_POINTS = {
    "src": (0.0, 0.0),
    "dst": (10.0, 0.0),
    "a1": (2.0, 0.0),
    "a2": (2.0, 5.0),
    "b1": (5.0, 0.0),
    "b2": (5.0, -4.0),
}


class TestLinearSolving:
    def test_picks_straight_line_instances(self):
        sg = linear_graph(["A", "B"])
        pair, block = metric_from_points(SIMPLE_POINTS)
        candidates = {0: ["a1", "a2"], 1: ["b1", "b2"]}
        ref = solve_reference(sg, candidates, "src", "dst", pair)
        vec = solve_vectorised(sg, candidates, "src", "dst", block)
        assert ref.assignment == [(0, "a1"), (1, "b1")]
        assert vec.assignment == ref.assignment
        assert ref.cost == pytest.approx(10.0)
        assert vec.cost == pytest.approx(ref.cost)

    def test_single_slot(self):
        sg = linear_graph(["A"])
        pair, block = metric_from_points(SIMPLE_POINTS)
        candidates = {0: ["a1", "a2"]}
        ref = solve_reference(sg, candidates, "src", "dst", pair)
        assert ref.assignment == [(0, "a1")]

    def test_same_proxy_repeated(self):
        """Two consecutive slots may map to the same instance at zero cost."""
        sg = linear_graph(["A", "B"])
        pair, block = metric_from_points(SIMPLE_POINTS)
        candidates = {0: ["a1"], 1: ["a1", "b2"]}
        ref = solve_reference(sg, candidates, "src", "dst", pair)
        assert ref.assignment == [(0, "a1"), (1, "a1")]

    def test_empty_candidates_infeasible(self):
        sg = linear_graph(["A", "B"])
        pair, block = metric_from_points(SIMPLE_POINTS)
        with pytest.raises(NoFeasiblePathError):
            solve_reference(sg, {0: ["a1"], 1: []}, "src", "dst", pair)
        with pytest.raises(NoFeasiblePathError):
            solve_vectorised(sg, {0: ["a1"], 1: []}, "src", "dst", block)

    def test_missing_slot_key_infeasible(self):
        sg = linear_graph(["A", "B"])
        pair, _ = metric_from_points(SIMPLE_POINTS)
        with pytest.raises(NoFeasiblePathError):
            solve_reference(sg, {0: ["a1"]}, "src", "dst", pair)

    def test_unknown_slot_key_rejected(self):
        sg = linear_graph(["A"])
        pair, _ = metric_from_points(SIMPLE_POINTS)
        with pytest.raises(RoutingError):
            solve_reference(sg, {0: ["a1"], 7: ["a2"]}, "src", "dst", pair)

    def test_infinite_weights_infeasible(self):
        sg = linear_graph(["A"])
        inf_pair = lambda u, v: float("inf")  # noqa: E731
        with pytest.raises(NoFeasiblePathError):
            solve_reference(sg, {0: ["a1"]}, "src", "dst", inf_pair)


class TestNonLinearSolving:
    def test_configuration_choice_by_distance(self):
        """The solver must pick the *configuration* that maps shortest."""
        sg = branching_graph(chains=[["A"], ["B"]], tail=["C"])
        points = {
            "src": (0.0, 0.0),
            "dst": (10.0, 0.0),
            "a": (100.0, 0.0),  # A instance far away
            "b": (3.0, 0.0),  # B instance on the way
            "c": (7.0, 0.0),
        }
        pair, block = metric_from_points(points)
        candidates = {0: ["a"], 1: ["b"], 2: ["c"]}
        ref = solve_reference(sg, candidates, "src", "dst", pair)
        vec = solve_vectorised(sg, candidates, "src", "dst", block)
        chosen = [slot for slot, _ in ref.assignment]
        assert sg.service_of(chosen[0]) == "B"
        assert vec.cost == pytest.approx(ref.cost) == pytest.approx(10.0)

    def test_partial_infeasibility_routes_around(self):
        """A dead branch must not kill a feasible alternative."""
        sg = branching_graph(chains=[["A"], ["B"]], tail=["C"])
        pair, block = metric_from_points(
            {"src": (0, 0), "dst": (10, 0), "b": (3, 0), "c": (7, 0)}
        )
        candidates = {0: [], 1: ["b"], 2: ["c"]}
        ref = solve_reference(sg, candidates, "src", "dst", pair)
        assert [sg.service_of(s) for s, _ in ref.assignment] == ["B", "C"]

    def test_skip_edge_used_when_shorter(self):
        sg = ServiceGraph(
            services={0: "A", 1: "B", 2: "C"},
            edges={(0, 1), (1, 2), (0, 2)},  # A->C skip allowed
        )
        points = {
            "src": (0.0, 0.0),
            "dst": (10.0, 0.0),
            "a": (2.0, 0.0),
            "b": (5.0, 40.0),  # B is a huge detour
            "c": (8.0, 0.0),
        }
        pair, _ = metric_from_points(points)
        ref = solve_reference(sg, {0: ["a"], 1: ["b"], 2: ["c"]}, "src", "dst", pair)
        assert [sg.service_of(s) for s, _ in ref.assignment] == ["A", "C"]


@st.composite
def random_dag_problem(draw):
    """Random SG + instances + metric points for equivalence testing."""
    n_slots = draw(st.integers(1, 5))
    edges = set()
    for a in range(n_slots):
        for b in range(a + 1, n_slots):
            if draw(st.booleans()):
                edges.add((a, b))
    sg = ServiceGraph(services={i: f"svc{i}" for i in range(n_slots)}, edges=edges)

    points = {"src": (0.0, 0.0), "dst": (10.0, 10.0)}
    candidates = {}
    for slot in range(n_slots):
        count = draw(st.integers(0, 4))
        insts = []
        for c in range(count):
            name = f"i{slot}_{c}"
            points[name] = (
                draw(st.floats(-20, 20, allow_nan=False)),
                draw(st.floats(-20, 20, allow_nan=False)),
            )
            insts.append(name)
        candidates[slot] = insts
    return sg, candidates, points


@settings(max_examples=80, deadline=None)
@given(random_dag_problem())
def test_three_solvers_agree(problem):
    """Property: reference == vectorised == brute force (cost)."""
    sg, candidates, points = problem
    pair, block = metric_from_points(points)

    def run(fn, *args):
        try:
            return fn(sg, candidates, "src", "dst", *args).cost
        except NoFeasiblePathError:
            return None

    ref = run(solve_reference, pair)
    vec = run(solve_vectorised, block)
    bf = run(brute_force, pair)
    if ref is None:
        assert vec is None and bf is None
    else:
        assert vec == pytest.approx(ref)
        assert bf == pytest.approx(ref)


@settings(max_examples=40, deadline=None)
@given(random_dag_problem())
def test_assignment_cost_matches_reported_cost(problem):
    """Property: re-pricing the returned assignment reproduces the cost."""
    sg, candidates, points = problem
    pair, _ = metric_from_points(points)
    try:
        solution = solve_reference(sg, candidates, "src", "dst", pair)
    except NoFeasiblePathError:
        return
    hops = ["src"] + [inst for _, inst in solution.assignment] + ["dst"]
    total = sum(pair(a, b) for a, b in zip(hops, hops[1:]))
    assert total == pytest.approx(solution.cost)
    # and the slot sequence is a feasible configuration
    assert sg.is_configuration([slot for slot, _ in solution.assignment])
