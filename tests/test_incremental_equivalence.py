"""Incremental churn patches must equal a from-scratch rebuild, always.

The incremental membership layer patches only the touched cluster's
membership and border pairs per event. These tests drive identical event
sequences through two twin overlays — ``incremental=True`` and
``incremental=False`` (rebuild-the-world) — and assert the resulting
topologies are *bit-identical*: same clusters, same labels, same border
pairs, same routing matrices. A third check compares the patched border
dict against a fresh :func:`~repro.overlay.hfc.build_hfc` run on the
current overlay, closing the loop with the construction pipeline.

Join coordinates are measured once (they depend only on the landmarks,
not on overlay state) and replayed into both twins, so the two runs see
the exact same floats and any divergence is a patching bug, not RNG.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.membership import DynamicOverlay
from repro.overlay.hfc import build_hfc
from repro.util.rng import ensure_rng


def _join_pool(framework, count, seed):
    """Pre-measured join candidates: (router, services, coords) triples."""
    probe = DynamicOverlay(
        framework, restructure_tolerance=None, track_quality=False
    )
    rng = ensure_rng(seed)
    catalog = list(framework.catalog.names)
    free = [
        s
        for s in framework.physical.topology.stub_nodes
        if not probe.is_member(s)
    ]
    rng.shuffle(free)
    pool = []
    for router in free[:count]:
        services = frozenset(
            rng.sample(catalog, rng.randint(2, min(6, len(catalog))))
        )
        pool.append((router, services, probe.locate(router)))
    return pool


def _twins(framework):
    make = lambda incremental: DynamicOverlay(  # noqa: E731
        framework,
        restructure_tolerance=None,
        track_quality=False,
        incremental=incremental,
    )
    return make(True), make(False)


def assert_same_structure(inc, full):
    assert inc.clustering.labels == full.clustering.labels
    assert inc.clustering.clusters == full.clustering.clusters
    assert inc.hfc.borders == full.hfc.borders


def assert_matches_fresh_build(dyn):
    """The patched border dict equals a from-scratch construction."""
    fresh = build_hfc(dyn.overlay, dyn.clustering, dyn.space)
    assert dyn.hfc.borders == fresh.borders


@pytest.fixture(scope="module")
def pool(tiny_framework):
    return _join_pool(tiny_framework, count=24, seed=77)


class TestHypothesisEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(decisions=st.lists(st.integers(0, 8), min_size=1, max_size=12))
    def test_random_sequences_match_rebuild(
        self, tiny_framework, pool, decisions
    ):
        inc, full = _twins(tiny_framework)
        next_join = 0
        for step, choice in enumerate(decisions):
            join_ok = next_join < len(pool)
            if choice == 8:
                inc.restructure()
                full.restructure()
            elif (choice < 4 and join_ok) or (inc.size <= 3 and join_ok):
                router, services, coords = pool[next_join]
                next_join += 1
                inc.join(router, services, coords=coords)
                full.join(router, services, coords=coords)
            elif inc.size > 3:
                # both twins hold identical state, so the same index picks
                # the same victim in both
                victim = inc.proxies[(choice * 7 + step) % inc.size]
                full.leave(victim)
                inc.leave(victim)
            assert_same_structure(inc, full)
        assert_matches_fresh_build(inc)
        inc_route, inc_true = inc.hfc.routing_matrices()
        full_route, full_true = full.hfc.routing_matrices()
        assert np.array_equal(inc_route, full_route)
        assert np.array_equal(inc_true, full_true)


class TestScriptedEquivalence:
    def test_choreographed_sequence(self, framework):
        """A fixed sequence hitting every patch path: border leave, cluster
        drain (id compaction), joins, restructure, post-restructure churn."""
        pool = _join_pool(framework, count=8, seed=31)
        inc, full = _twins(framework)

        def both(op, *args, **kwargs):
            getattr(inc, op)(*args, **kwargs)
            getattr(full, op)(*args, **kwargs)
            assert_same_structure(inc, full)
            assert_matches_fresh_build(inc)
            assert inc.version == full.version

        # 1. a border proxy leaves -> its pairs re-select
        both("leave", inc.hfc.all_border_nodes()[0])
        # 2. joins grow the nearest clusters
        for router, services, coords in pool[:3]:
            both("join", router, services, coords=coords)
        # 3. drain the smallest cluster entirely -> id compaction path
        smallest = min(inc.clustering.clusters, key=len)
        for proxy in list(smallest):
            both("leave", proxy)
        # 4. structural rebuild -> epoch bump
        epoch_before = inc.version.epoch
        both("restructure")
        assert inc.version.epoch == epoch_before + 1
        # 5. churn continues against the re-clustered world
        for router, services, coords in pool[3:6]:
            both("join", router, services, coords=coords)
        both("leave", inc.proxies[5])

        inc_route, _ = inc.hfc.routing_matrices()
        full_route, _ = full.hfc.routing_matrices()
        assert np.array_equal(inc_route, full_route)
