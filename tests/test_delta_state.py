"""Tests for the delta state plane and versioned capability consumption.

Covers the three layers the incremental state machinery spans: the wire
encoding (:mod:`repro.state.delta`), the protocol running in ``delta``
mode vs the legacy ``full`` mode, and the version-driven cache
invalidation contract between capability feeds and
:class:`~repro.routing.cache.CachedHierarchicalRouter`.
"""

import pytest

from repro.core.versioning import MutableCapabilityFeed, OverlayVersion
from repro.state.delta import Announcement, DeltaAssembler, DeltaEmitter
from repro.state.protocol import StateDistributionProtocol
from repro.util.errors import NoFeasiblePathError, StateError


class TestAnnouncement:
    def test_full_wire_size(self):
        a = Announcement(seq=1, full=frozenset({"a", "b", "c"}))
        assert a.is_full
        assert a.wire_size == 4  # header + 3 names

    def test_delta_wire_size(self):
        a = Announcement(seq=2, added=frozenset({"x"}), removed=frozenset({"y"}))
        assert not a.is_full
        assert a.wire_size == 3  # header + 1 added + 1 removed

    def test_empty_delta_costs_header_only(self):
        assert Announcement(seq=3).wire_size == 1


class TestDeltaEmitter:
    def test_first_announcement_is_full(self):
        emitter = DeltaEmitter()
        a = emitter.announce(("s",), frozenset({"a"}))
        assert a.is_full and a.seq == 1 and a.full == frozenset({"a"})

    def test_deltas_carry_symmetric_difference(self):
        emitter = DeltaEmitter(refresh_every=10)
        emitter.announce(("s",), frozenset({"a", "b"}))
        a = emitter.announce(("s",), frozenset({"b", "c"}))
        assert not a.is_full
        assert a.added == frozenset({"c"})
        assert a.removed == frozenset({"a"})

    def test_refresh_cadence(self):
        emitter = DeltaEmitter(refresh_every=3)
        kinds = [
            emitter.announce(("s",), frozenset({"a"})).is_full for _ in range(7)
        ]
        # seq 1, 4, 7 are fulls: (seq-1) % 3 == 0
        assert kinds == [True, False, False, True, False, False, True]

    def test_streams_are_independent(self):
        emitter = DeltaEmitter()
        emitter.announce(("s1",), frozenset({"a"}))
        a = emitter.announce(("s2",), frozenset({"b"}))
        assert a.is_full and a.seq == 1

    def test_refresh_every_validated(self):
        with pytest.raises(StateError):
            DeltaEmitter(refresh_every=0)


class TestDeltaAssembler:
    def test_roundtrip_through_emitter(self):
        emitter, assembler = DeltaEmitter(refresh_every=5), DeltaAssembler()
        sets = [
            frozenset({"a", "b"}),
            frozenset({"b", "c"}),
            frozenset({"c"}),
            frozenset({"c", "d", "e"}),
        ]
        for expected in sets:
            got = assembler.apply(("s",), emitter.announce(("s",), expected))
            assert got == expected
        assert assembler.applied == len(sets)
        assert assembler.current(("s",)) == sets[-1]

    def test_stale_ignored(self):
        assembler = DeltaAssembler()
        assembler.apply(("s",), Announcement(seq=2, full=frozenset({"a"})))
        assert assembler.apply(("s",), Announcement(seq=1, full=frozenset())) is None
        assert assembler.stale == 1
        assert assembler.current(("s",)) == frozenset({"a"})

    def test_gap_ignored_until_next_full(self):
        assembler = DeltaAssembler()
        assembler.apply(("s",), Announcement(seq=1, full=frozenset({"a"})))
        # seq 2 lost; the seq-3 delta must NOT apply
        got = assembler.apply(("s",), Announcement(seq=3, added=frozenset({"b"})))
        assert got is None and assembler.gaps == 1
        # ...and neither must seq 4 (still anchored at 1)
        assert assembler.apply(("s",), Announcement(seq=4, added=frozenset({"c"}))) is None
        # a full snapshot re-anchors
        got = assembler.apply(("s",), Announcement(seq=5, full=frozenset({"z"})))
        assert got == frozenset({"z"})

    def test_delta_without_base_is_a_gap(self):
        assembler = DeltaAssembler()
        assert assembler.apply(("s",), Announcement(seq=1, added=frozenset({"a"}))) is None
        assert assembler.gaps == 1
        assert assembler.current(("s",)) is None


class TestDeltaProtocol:
    @pytest.fixture(scope="class")
    def reports(self, tiny_framework):
        out = {}
        for mode in ("full", "delta"):
            protocol = StateDistributionProtocol(
                tiny_framework.hfc, seed=21, mode=mode
            )
            report = protocol.run(max_time=12000.0, stop_on_convergence=False)
            out[mode] = (protocol, report)
        return out

    def test_both_modes_converge_to_ground_truth(self, reports):
        for mode, (protocol, report) in reports.items():
            assert report.converged_at is not None, mode
            assert protocol.converged(), mode

    def test_modes_agree_on_final_tables(self, reports):
        full_states = reports["full"][0].states
        delta_states = reports["delta"][0].states
        for proxy, full_state in full_states.items():
            delta_state = delta_states[proxy]
            assert full_state.sct_p.as_dict() == delta_state.sct_p.as_dict()
            assert full_state.sct_c.as_dict() == delta_state.sct_c.as_dict()

    def test_delta_mode_at_least_halves_bytes(self, reports):
        full_bytes = reports["full"][1].total_size
        delta_bytes = reports["delta"][1].total_size
        assert delta_bytes * 2 <= full_bytes

    def test_reports_carry_mode_and_byte_breakdown(self, reports):
        for mode, (_, report) in reports.items():
            assert report.mode == mode
            assert sum(report.bytes_by_kind.values()) == report.total_size
            assert report.to_dict()["mode"] == mode

    def test_message_overhead_accounting(self, reports):
        from repro.state import message_overhead

        accounts = {}
        for mode, (_, report) in reports.items():
            acct = message_overhead(report)
            assert acct["mode"] == mode
            assert acct["total_size"] == report.total_size
            assert acct["dropped_bytes"] == 0
            accounts[mode] = acct
        # the delta encoding shrinks the mean delivered message
        assert (
            accounts["delta"]["mean_message_size"]
            < accounts["full"]["mean_message_size"] / 2
        )

    def test_delta_stats_counted(self, reports):
        protocol, _ = reports["delta"]
        stats = protocol.delta_stats()
        assert stats["applied"] > 0
        # lossless run: nothing is ever stale or gapped
        assert stats["stale"] == 0 and stats["gaps"] == 0

    def test_reconverges_after_midrun_change(self, tiny_framework):
        protocol = StateDistributionProtocol(
            tiny_framework.hfc, seed=22, mode="delta"
        )
        first = protocol.run(max_time=20000.0)
        assert first.converged_at is not None
        victim = tiny_framework.overlay.proxies[0]
        protocol.update_local_services(victim, frozenset({"brand-new-service"}))
        assert not protocol.converged()
        second = protocol.run(max_time=protocol.sim.now + 20000.0)
        assert second.converged_at is not None
        assert protocol.converged()

    def test_lossy_delta_run_accounts_dropped_bytes(self, tiny_framework):
        protocol = StateDistributionProtocol(
            tiny_framework.hfc, seed=23, mode="delta", loss_rate=0.2
        )
        report = protocol.run(max_time=40000.0)
        assert report.converged_at is not None
        assert protocol.dropped_bytes > 0
        assert report.dropped_bytes == protocol.dropped_bytes


class TestCapabilityFeeds:
    def test_protocol_feed_versions_monotonically(self, tiny_framework):
        protocol = StateDistributionProtocol(
            tiny_framework.hfc, seed=24, mode="delta"
        )
        feed = protocol.capability_feed()
        v0 = feed.version
        report = protocol.run(max_time=20000.0)
        assert report.converged_at is not None
        assert feed.version > v0
        assert feed.capabilities() == protocol.capabilities_for_routing()

    def test_framework_feed_seeds_ground_truth(self, tiny_framework):
        feed = tiny_framework.capability_feed()
        protocol = StateDistributionProtocol(tiny_framework.hfc, seed=25)
        assert dict(feed.capabilities()) == protocol.ground_truth_sct_c()
        assert feed.version == OverlayVersion()

    def test_cached_router_invalidates_on_publish(self, tiny_framework):
        feed = tiny_framework.capability_feed()
        router = tiny_framework.cached_hierarchical_router(capability_feed=feed)
        request = tiny_framework.random_request(seed=5)
        router.route(request)
        router.route(request)
        assert router.stats.hits == 1
        assert router.stats.invalidations == 0  # first sync is not a change
        feed.publish(feed.capabilities())  # version moves -> cache drops
        router.route(request)
        assert router.stats.invalidations == 1
        assert router.stats.misses == 2

    def test_cached_router_sees_published_content(self, tiny_framework):
        feed = tiny_framework.capability_feed()
        router = tiny_framework.cached_hierarchical_router(capability_feed=feed)
        request = tiny_framework.random_request(seed=5)
        router.route(request)
        feed.publish({cid: frozenset() for cid in feed.capabilities()})
        with pytest.raises(NoFeasiblePathError):
            router.route(request)
