"""Tests for the landmark coordinate embedding (Section 3.1)."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coords import (
    build_coordinate_space,
    choose_landmarks,
    classical_mds,
    embed_landmarks,
    embedding_accuracy,
    locate_host,
)
from repro.util.errors import EmbeddingError


def pairwise(points):
    pts = np.asarray(points, dtype=float)
    diff = pts[:, None, :] - pts[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


class TestClassicalMds:
    def test_recovers_euclidean_configuration(self):
        pts = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 3.0], [4.0, 3.0], [2.0, 1.0]])
        d = pairwise(pts)
        recovered = classical_mds(d, 2)
        assert np.allclose(pairwise(recovered), d, atol=1e-8)

    def test_rejects_non_square(self):
        with pytest.raises(EmbeddingError):
            classical_mds(np.zeros((2, 3)), 2)

    def test_rejects_bad_dim(self):
        with pytest.raises(EmbeddingError):
            classical_mds(np.zeros((3, 3)), 0)
        with pytest.raises(EmbeddingError):
            classical_mds(np.zeros((3, 3)), 4)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
            min_size=3,
            max_size=10,
            unique=True,
        )
    )
    def test_exact_on_euclidean_inputs(self, points):
        """Property: MDS is exact when the matrix really is 2-D Euclidean."""
        d = pairwise(points)
        recovered = classical_mds(d, 2)
        assert np.allclose(pairwise(recovered), d, atol=1e-6)


class TestEmbedLandmarks:
    def test_zero_error_on_euclidean_input(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [7.0, 7.0]])
        d = pairwise(pts)
        coords = embed_landmarks(d, 2, seed=1)
        assert np.allclose(pairwise(coords), d, atol=1e-3)

    def test_too_few_landmarks_rejected(self):
        with pytest.raises(EmbeddingError):
            embed_landmarks(np.zeros((2, 2)), 2)

    def test_refinement_not_worse_than_mds(self):
        """NM refinement must not degrade the MDS seed's relative error."""
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 100, size=(8, 2))
        noisy = pairwise(pts) * rng.uniform(1.0, 1.3, size=(8, 8))
        noisy = (noisy + noisy.T) / 2
        np.fill_diagonal(noisy, 0.0)

        def rel_err(coords):
            iu = np.triu_indices(8, k=1)
            est = pairwise(coords)[iu]
            meas = noisy[iu]
            return float(np.sum(((est - meas) / meas) ** 2))

        seed_coords = classical_mds(noisy, 2)
        refined = embed_landmarks(noisy, 2, seed=1)
        assert rel_err(refined) <= rel_err(seed_coords) + 1e-9


class TestLocateHost:
    def test_recovers_position_in_plane(self):
        landmarks = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]])
        host = np.array([3.0, 4.0])
        measured = np.linalg.norm(landmarks - host, axis=1)
        estimate = locate_host(landmarks, measured)
        assert estimate == pytest.approx(host, abs=1e-3)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(EmbeddingError):
            locate_host(np.zeros((3, 2)), [1.0, 2.0])

    def test_robust_to_mild_noise(self):
        landmarks = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]])
        host = np.array([6.0, 2.0])
        measured = np.linalg.norm(landmarks - host, axis=1) * 1.05
        estimate = locate_host(landmarks, measured)
        assert np.linalg.norm(estimate - host) < 1.5


class TestChooseLandmarks:
    def test_count_and_uniqueness(self, small_physical):
        landmarks = choose_landmarks(small_physical, 10, seed=1)
        assert len(landmarks) == 10
        assert len(set(landmarks)) == 10

    def test_too_many_rejected(self, small_physical):
        with pytest.raises(EmbeddingError):
            choose_landmarks(small_physical, 10**6)

    def test_spread_beats_random_prefix(self, small_physical):
        """Greedy k-center landmarks should be far apart on average."""
        landmarks = choose_landmarks(small_physical, 8, seed=1)
        dists = [
            small_physical.delay(a, b)
            for i, a in enumerate(landmarks)
            for b in landmarks[i + 1 :]
        ]
        # no two landmarks coincide
        assert min(dists) > 0


class TestBuildCoordinateSpace:
    def test_covers_all_hosts(self, small_physical):
        hosts = small_physical.pick_overlay_nodes(40, seed=3)
        space, report = build_coordinate_space(small_physical, hosts, seed=4)
        assert set(space.nodes()) == set(hosts)
        assert space.dimension == 2
        assert report.dimension == 2

    def test_measurement_count_is_subquadratic(self, small_physical):
        hosts = small_physical.pick_overlay_nodes(40, seed=3)
        _, report = build_coordinate_space(
            small_physical, hosts, landmark_count=10, probes=3, seed=4
        )
        m, n, probes = 10, 40, 3
        assert report.measurement_count <= probes * (m * (m - 1) // 2 + n * m)
        # far fewer than the O(n^2) direct approach
        assert report.measurement_count < n * (n - 1) // 2 * probes * 2

    def test_landmark_coordinates_recorded(self, small_physical):
        hosts = small_physical.pick_overlay_nodes(20, seed=3)
        _, report = build_coordinate_space(small_physical, hosts, seed=4)
        assert report.landmark_coordinates.shape == (len(report.landmark_ids), 2)

    def test_accuracy_reasonable(self, small_physical):
        """Median relative error must beat a 50% sanity bar on TS topologies."""
        hosts = small_physical.pick_overlay_nodes(40, seed=3)
        space, _ = build_coordinate_space(small_physical, hosts, seed=4)
        acc = embedding_accuracy(space, small_physical, hosts, sample_pairs=200, seed=5)
        assert acc["median"] < 0.5

    def test_higher_dimension_fits_landmarks_better(self, small_physical):
        hosts = small_physical.pick_overlay_nodes(15, seed=3)
        _, rep2 = build_coordinate_space(small_physical, hosts, dimension=2, seed=4)
        _, rep5 = build_coordinate_space(small_physical, hosts, dimension=5, seed=4)
        assert rep5.landmark_fit_error <= rep2.landmark_fit_error

    def test_explicit_landmarks_respected(self, small_physical):
        hosts = small_physical.pick_overlay_nodes(15, seed=3)
        landmarks = small_physical.graph.nodes()[:6]
        _, report = build_coordinate_space(
            small_physical, hosts, landmarks=landmarks, seed=4
        )
        assert report.landmark_ids == list(landmarks)


class TestEmbeddingAccuracy:
    def test_requires_two_nodes(self, small_physical):
        hosts = small_physical.pick_overlay_nodes(5, seed=3)
        space, _ = build_coordinate_space(small_physical, hosts, seed=4)
        with pytest.raises(EmbeddingError):
            embedding_accuracy(space, small_physical, hosts[:1])

    def test_stat_keys(self, small_physical):
        hosts = small_physical.pick_overlay_nodes(20, seed=3)
        space, _ = build_coordinate_space(small_physical, hosts, seed=4)
        acc = embedding_accuracy(space, small_physical, hosts, sample_pairs=50, seed=6)
        assert set(acc) == {"mean", "median", "p90", "max", "pairs"}
        assert acc["median"] <= acc["p90"] <= acc["max"]
