"""The recursive hierarchy: exactness contracts at every depth.

Four contracts pin the level-generic abstraction to the code it replaces:

* depth 2 wraps the bi-level HFC untouched — routing matrices and query
  tables bit-identical to a fresh :func:`build_hfc` (hypothesis-driven
  across churned overlays);
* depth 3 is decision-for-decision the old three-level prototype —
  :class:`RecursiveRouter` routes path-identically to
  ``ThreeLevelRouter`` and the state accounting matches entry for entry;
* an incrementally churned level stack is bit-equal to a cold
  ``build_levels(..., assignments=...)`` rebuild under the same sticky
  assignment (hypothesis-driven, including the cluster-vanish cascade);
* snapshots round-trip the full stack and warm-started routers route
  identically.
"""

import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HFCFramework
from repro.hierarchy import (
    HierarchyLevels,
    RecursiveRouter,
    ThreeLevelRouter,
    build_levels,
    build_multilevel,
)
from repro.membership import DynamicOverlay
from repro.overlay.hfc import build_hfc
from repro.persistence import load_snapshot, save_snapshot
from repro.routing.batch import query_tables
from repro.state.delta import (
    DeltaAssembler,
    DeltaEmitter,
    announce_aggregates,
    assemble_aggregates,
)
from repro.state.overhead import coordinates_node_states, service_node_states
from repro.util.errors import NoFeasiblePathError, TopologyError
from repro.util.rng import ensure_rng


def _join_pool(framework, count, seed):
    """Pre-measured join candidates: (router, services, coords) triples."""
    probe = DynamicOverlay(
        framework, restructure_tolerance=None, track_quality=False
    )
    rng = ensure_rng(seed)
    catalog = list(framework.catalog.names)
    free = [
        s
        for s in framework.physical.topology.stub_nodes
        if not probe.is_member(s)
    ]
    rng.shuffle(free)
    pool = []
    for router in free[:count]:
        services = frozenset(
            rng.sample(catalog, rng.randint(2, min(6, len(catalog))))
        )
        pool.append((router, services, probe.locate(router)))
    return pool


def _outcome(router, request):
    try:
        return router.route(request)
    except NoFeasiblePathError as err:
        return ("err", str(err))


def _assert_levels_equal(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert np.array_equal(a.parent, b.parent)
        assert np.array_equal(a.ptr, b.ptr)
        assert np.array_equal(a.members, b.members)
        assert np.array_equal(a.border_matrix, b.border_matrix)
        assert np.array_equal(a.centroids, b.centroids)


def _replay(dyn, pool, decisions):
    """Drive one decision sequence (joins/leaves/restructure) into *dyn*."""
    next_join = 0
    for step, choice in enumerate(decisions):
        join_ok = next_join < len(pool)
        if choice == 8:
            dyn.restructure()
        elif (choice < 4 and join_ok) or (dyn.size <= 3 and join_ok):
            router, services, coords = pool[next_join]
            next_join += 1
            dyn.join(router, services, coords=coords)
        elif dyn.size > 3:
            dyn.leave(dyn.proxies[(choice * 7 + step) % dyn.size])


@pytest.fixture(scope="module")
def pool(tiny_framework):
    return _join_pool(tiny_framework, count=24, seed=77)


@pytest.fixture(scope="module")
def hierarchy3(framework):
    return build_levels(framework.hfc, 3)


# -- depth 2: the bi-level identity ---------------------------------------------


class TestDepthTwo:
    def test_wraps_the_topology_untouched(self, framework):
        h = framework.build_hierarchy(levels=2)
        assert h.depth == 2 and not h.levels
        assert h.hfc is framework.hfc
        assert h.top_count == framework.hfc.cluster_count
        route, true = h.hfc.routing_matrices()
        fresh = build_hfc(
            framework.overlay, framework.clustering, framework.space
        )
        froute, ftrue = fresh.routing_matrices()
        assert np.array_equal(route, froute)
        assert np.array_equal(true, ftrue)
        router = framework.hierarchy_router(levels=2)
        assert type(router).__name__ == "HierarchicalRouter"

    @settings(max_examples=10, deadline=None)
    @given(decisions=st.lists(st.integers(0, 7), min_size=1, max_size=8))
    def test_hypothesis_churned_depth2_matches_build_hfc(
        self, tiny_framework, pool, decisions
    ):
        dyn = DynamicOverlay(
            tiny_framework, restructure_tolerance=None, track_quality=False
        )
        _replay(dyn, pool, decisions)
        h = build_levels(dyn.hfc, 2)
        fresh = build_hfc(dyn.overlay, dyn.clustering, dyn.space)
        route, true = h.hfc.routing_matrices()
        froute, ftrue = fresh.routing_matrices()
        assert np.array_equal(route, froute)
        assert np.array_equal(true, ftrue)
        tables, ftables = query_tables(h.hfc), query_tables(fresh)
        assert np.array_equal(tables.ext, ftables.ext)
        assert np.array_equal(tables.d_border, ftables.d_border)


# -- depth 3: the prototype identity --------------------------------------------


class TestDepthThreeIdentity:
    def test_construction_matches_prototype(self, framework, hierarchy3):
        ml = build_multilevel(framework.hfc)
        assert hierarchy3.top_count == ml.super_count
        for sid in range(ml.super_count):
            assert hierarchy3.top_members(sid) == ml.members(sid)
            for sj in range(ml.super_count):
                if sid != sj:
                    assert hierarchy3.top_border(sid, sj) == ml.super_border(
                        sid, sj
                    )
        assert hierarchy3.all_top_borders() == ml.all_super_borders()

    def test_routing_path_identical_to_three_level_router(
        self, framework, hierarchy3
    ):
        new = RecursiveRouter(hierarchy3)
        old = ThreeLevelRouter(build_multilevel(framework.hfc))
        for i in range(40):
            request = framework.random_request(seed=300 + i)
            assert _outcome(new, request) == _outcome(old, request)

    def test_state_accounting_matches_prototype(self, framework, hierarchy3):
        ml = build_multilevel(framework.hfc)
        assert (
            hierarchy3.coordinates_node_states()
            == ml.coordinates_node_states()
        )
        assert hierarchy3.service_node_states() == ml.service_node_states()

    def test_depth2_accounting_matches_overhead_module(self, framework):
        h = build_levels(framework.hfc, 2)
        assert h.coordinates_node_states() == coordinates_node_states(
            framework.hfc
        )
        assert h.service_node_states() == service_node_states(framework.hfc)

    def test_state_bytes_shrink_with_depth(self, framework, hierarchy3):
        h2 = build_levels(framework.hfc, 2)
        assert hierarchy3.mean_state_bytes() <= h2.mean_state_bytes()


# -- any depth: recursion invariants --------------------------------------------


class TestRecursion:
    def test_route_many_matches_scalar(self, framework):
        requests = [framework.random_request(seed=500 + i) for i in range(20)]
        for depth in (3, 4):
            router = RecursiveRouter(build_levels(framework.hfc, depth))
            result = router.route_many_detailed(requests)
            for request, path, error in zip(
                requests, result.paths, result.errors
            ):
                scalar = _outcome(router, request)
                if error is None:
                    assert path == scalar
                else:
                    assert path is None and ("err", str(error)) == scalar

    def test_expand_hop_spans_every_level(self, framework):
        h = build_levels(framework.hfc, 4)
        proxies = framework.overlay.proxies
        for u, v in [(proxies[0], proxies[-1]), (proxies[3], proxies[11])]:
            hops = h.expand_hop(u, v)
            assert hops[0] == u and hops[-1] == v
        assert h.expand_hop(proxies[2], proxies[2]) == [proxies[2]]

    def test_group_of_consistent_with_membership(self, framework):
        h = build_levels(framework.hfc, 3)
        for gid in range(h.top_count):
            for proxy in h.top_members(gid):
                assert h.group_of(proxy) == gid

    def test_aggregates_round_trip_and_union_upward(self, framework):
        h = build_levels(framework.hfc, 3)
        aggregates = h.aggregates()
        view = assemble_aggregates(
            DeltaAssembler(), announce_aggregates(DeltaEmitter(), aggregates)
        )
        assert view == aggregates
        for gid in range(h.top_count):
            assert aggregates[(2, gid)] == h.top_capability(gid)
            assert aggregates[(2, gid)] == frozenset().union(
                *(aggregates[(1, cid)] for cid in h.base_clusters_of(gid))
            )

    def test_invalid_shapes_rejected(self, framework):
        with pytest.raises(TopologyError):
            build_levels(framework.hfc, 1)
        with pytest.raises(TopologyError):
            RecursiveRouter(build_levels(framework.hfc, 2))
        h = build_levels(framework.hfc, 3)
        with pytest.raises(TopologyError):
            h.top_border(0, 0)


# -- columnar integration --------------------------------------------------------


class TestColumnarIntegration:
    def test_build_hierarchy_attaches_levels(self, tiny_framework):
        h = tiny_framework.build_hierarchy(3)
        state = tiny_framework.columnar
        assert state.levels and state.levels[-1] is h.levels[-1]
        view = h.top_view()
        assert view._query_tables_cache is state.level_query_tables(0)

    def test_level_tables_match_duck_typed_walk(self, tiny_framework):
        h = tiny_framework.build_hierarchy(3)
        preset = tiny_framework.columnar.level_query_tables(0)
        cold = build_levels(tiny_framework.hfc, 3)
        walked = query_tables(cold.top_view())
        assert np.array_equal(preset.ext, walked.ext)
        assert np.array_equal(preset.d_border, walked.d_border)

    def test_attach_levels_drops_cached_tables(self, tiny_framework):
        h = tiny_framework.build_hierarchy(3)
        state = tiny_framework.columnar
        before = state.level_query_tables(0)
        state.attach_levels(h.levels)
        assert state.level_query_tables(0) is not before


# -- churn: sticky assignment, patched spine ------------------------------------


class TestChurnedHierarchy:
    @settings(max_examples=10, deadline=None)
    @given(decisions=st.lists(st.integers(0, 8), min_size=1, max_size=10))
    def test_hypothesis_patched_equals_cold_rebuild(
        self, tiny_framework, pool, decisions
    ):
        dyn = DynamicOverlay(
            tiny_framework, restructure_tolerance=None, track_quality=False
        )
        dyn.attach_hierarchy(3)
        _replay(dyn, pool, decisions)
        h = dyn.hierarchy()
        assignments = [
            [list(level.members_of(g)) for g in range(level.count)]
            for level in h.levels
        ]
        cold = build_levels(dyn.hfc, h.depth, assignments=assignments)
        _assert_levels_equal(h.levels, cold.levels)

    def test_cluster_vanish_cascade(self, tiny_framework):
        dyn = DynamicOverlay(
            tiny_framework, restructure_tolerance=None, track_quality=False
        )
        dyn.attach_hierarchy(3)
        # drain the smallest cluster entirely -> unit removal + id shifts
        smallest = min(dyn.clustering.clusters, key=len)
        for proxy in list(smallest):
            dyn.leave(proxy)
        h = dyn.hierarchy()
        assignments = [
            [list(level.members_of(g)) for g in range(level.count)]
            for level in h.levels
        ]
        cold = build_levels(dyn.hfc, h.depth, assignments=assignments)
        _assert_levels_equal(h.levels, cold.levels)
        h.validate()

    def test_columnar_capture_carries_levels(self, tiny_framework):
        dyn = DynamicOverlay(
            tiny_framework, restructure_tolerance=None, track_quality=False
        )
        dyn.attach_hierarchy(3)
        state = dyn.columnar()
        assert len(state.levels) == 1
        _assert_levels_equal(state.levels, dyn.hierarchy().levels)


# -- persistence -----------------------------------------------------------------


class TestSnapshotRoundTrip:
    def test_level_stack_round_trips(self, tiny_framework):
        h = tiny_framework.build_hierarchy(4)
        path = tempfile.mktemp(suffix=".npz")
        try:
            save_snapshot(tiny_framework, path)
            snap = load_snapshot(path)
        finally:
            if os.path.exists(path):
                os.unlink(path)
        _assert_levels_equal(
            snap.columnar.levels, tiny_framework.columnar.levels
        )
        warm = snap.framework.build_hierarchy(4)
        assert warm.depth == 4 and warm.columnar is snap.columnar
        cold_router = RecursiveRouter(h)
        warm_router = RecursiveRouter(warm)
        for i in range(10):
            request = tiny_framework.random_request(seed=700 + i)
            assert _outcome(cold_router, request) == _outcome(
                warm_router, request
            )

    def test_snapshot_without_levels_still_loads(self, tiny_framework):
        fresh = HFCFramework.build(proxy_count=30, physical=None, seed=123)
        path = tempfile.mktemp(suffix=".npz")
        try:
            save_snapshot(fresh, path)
            snap = load_snapshot(path)
        finally:
            if os.path.exists(path):
                os.unlink(path)
        assert snap.columnar.levels == []
        h = snap.framework.build_hierarchy(2)
        assert isinstance(h, HierarchyLevels) and h.depth == 2
