"""Reproduction of the paper's worked example (Section 5, Figures 6-7).

The example's service topology: four clusters with aggregate capabilities

    C0: {S1, S4}   C1: {S2, S3, S4}   C2: {S2, S5}   C3: {S1, S4}

external border links (lengths as labelled in Figure 6):

    (C0,C1)=20 via C0.1-C1.0      (C0,C3)=30 via C0.0-C3.0
    (C1,C2)=25 via C1.2-C2.0      (C1,C3)=50 via C1.1-C3.0
    (C2,C3)=15 via C2.2-C3.0      (C0,C2)=40 via C0.0-C2.2

and the request S1 -> S2 -> S3 -> S4 -> S5 from C0.2 to C2.1.

Because S3 only exists in C1, the unique sensible CSP is C0 -> C1 -> C2 —
exactly Figure 7(c)'s bold path — and the dissection must produce Figure
7(d)'s three child requests. The text's path-1-vs-path-2 argument (52 vs 46
lower bounds) is exercised separately with a request satisfiable through
either C1 or C3.

The cluster-level machinery is driven through a stub HFC object carrying the
paper's exact numbers, so these tests pin the router to the publication, not
to our topology generator.
"""


import pytest

from repro.routing.hierarchical import HierarchicalRouter
from repro.services import ServiceRequest, linear_graph

# border proxies: names match the paper's labels
BORDERS = {
    (0, 1): "C0.1", (1, 0): "C1.0",
    (0, 2): "C0.0", (2, 0): "C2.2",
    (0, 3): "C0.0", (3, 0): "C3.0",
    (1, 2): "C1.2", (2, 1): "C2.0",
    (1, 3): "C1.1", (3, 1): "C3.0",
    (2, 3): "C2.2", (3, 2): "C3.0",
}

EXTERNAL = {
    frozenset((0, 1)): 20.0,
    frozenset((0, 2)): 40.0,
    frozenset((0, 3)): 30.0,
    frozenset((1, 2)): 25.0,
    frozenset((1, 3)): 50.0,
    frozenset((2, 3)): 15.0,
}

# coordinate distances the destination proxy can evaluate: between border
# proxies of the same cluster, and from borders of C2 (pd's cluster) to pd.
INTERNAL = {
    frozenset(("C1.0", "C1.2")): 5.0,
    frozenset(("C1.0", "C1.1")): 4.0,
    frozenset(("C1.1", "C1.2")): 3.0,
    frozenset(("C0.0", "C0.1")): 2.0,
    frozenset(("C2.0", "C2.2")): 3.0,
    frozenset(("C2.0", "C2.1")): 2.0,
    frozenset(("C2.2", "C2.1")): 1.0,
}

CAPABILITIES = {
    0: frozenset({"S1", "S4"}),
    1: frozenset({"S2", "S3", "S4"}),
    2: frozenset({"S2", "S5"}),
    3: frozenset({"S1", "S4"}),
}

CLUSTER_OF = {
    "C0.0": 0, "C0.1": 0, "C0.2": 0, "C0.3": 0,
    "C1.0": 1, "C1.1": 1, "C1.2": 1, "C1.3": 1,
    "C2.0": 2, "C2.1": 2, "C2.2": 2,
    "C3.0": 3, "C3.1": 3,
}


class _PaperSpace:
    """Distance oracle over the example's labelled proxies."""

    def distance(self, u, v):
        if u == v:
            return 0.0
        key = frozenset((u, v))
        if key in INTERNAL:
            return INTERNAL[key]
        raise AssertionError(f"router asked for an unknowable distance {u}-{v}")


class _PaperHFC:
    """Stub HFC carrying exactly the Figure 6 numbers."""

    cluster_count = 4
    space = _PaperSpace()

    def cluster_of(self, proxy):
        return CLUSTER_OF[proxy]

    def border(self, i, j):
        return BORDERS[(i, j)]

    def external_estimate(self, i, j):
        return EXTERNAL[frozenset((i, j))]

    def members(self, cid):
        return sorted(p for p, c in CLUSTER_OF.items() if c == cid)


@pytest.fixture
def router():
    return HierarchicalRouter.__new__(HierarchicalRouter)


@pytest.fixture
def paper_router(router):
    # bypass __init__ (which wants a real HFC + placement); wire fields directly
    router.hfc = _PaperHFC()
    router.method = "backtrack"
    router.use_numpy = True
    router.cluster_capabilities = CAPABILITIES
    return router


REQUEST = ServiceRequest(
    "C0.2", linear_graph(["S1", "S2", "S3", "S4", "S5"]), "C2.1"
)


class TestFigure7CSP:
    def test_csp_is_c0_c1_c2(self, paper_router):
        csp = paper_router.cluster_level_path(REQUEST)
        assert csp.cluster_sequence() == [0, 1, 2]

    def test_csp_slot_assignment_matches_bold_path(self, paper_router):
        """Figure 7(c): S1/C0, S2/C1, S3/C1, S4/C1, S5/C2."""
        csp = paper_router.cluster_level_path(REQUEST)
        assert list(csp.assignment) == [(0, 0), (1, 1), (2, 1), (3, 1), (4, 2)]

    def test_csp_lower_bound_cost(self, paper_router):
        """ext(C0,C1)=20 + internal C1.0->C1.2=5 + ext(C1,C2)=25 +
        internal C2.0->pd=2 — the 52 of the paper's path-1 arithmetic."""
        csp = paper_router.cluster_level_path(REQUEST)
        assert csp.estimated_cost == pytest.approx(52.0)

    def test_endpoint_clusters(self, paper_router):
        csp = paper_router.cluster_level_path(REQUEST)
        assert csp.source_cluster == 0
        assert csp.destination_cluster == 2


class TestFigure7Dissection:
    def test_three_children(self, paper_router):
        csp = paper_router.cluster_level_path(REQUEST)
        children = paper_router.dissect(REQUEST, csp)
        assert [c.cluster for c in children] == [0, 1, 2]

    def test_child_1_matches_figure_7d(self, paper_router):
        """child 1: C0.2 -[S1]-> C0.1 (distributed to C0.1)."""
        csp = paper_router.cluster_level_path(REQUEST)
        child = paper_router.dissect(REQUEST, csp)[0]
        assert child.source_proxy == "C0.2"
        assert child.destination_proxy == "C0.1"
        assert child.services == ("S1",)

    def test_child_2_matches_figure_7d(self, paper_router):
        """child 2: C1.0 -[S2,S3,S4]-> C1.2 (distributed to C1.2)."""
        csp = paper_router.cluster_level_path(REQUEST)
        child = paper_router.dissect(REQUEST, csp)[1]
        assert child.source_proxy == "C1.0"
        assert child.destination_proxy == "C1.2"
        assert child.services == ("S2", "S3", "S4")

    def test_child_3_matches_figure_7d(self, paper_router):
        """child 3: C2.0 -[S5]-> C2.1 (taken care of by C2.1 itself)."""
        csp = paper_router.cluster_level_path(REQUEST)
        child = paper_router.dissect(REQUEST, csp)[2]
        assert child.source_proxy == "C2.0"
        assert child.destination_proxy == "C2.1"
        assert child.services == ("S5",)


class TestBackTrackingArgument:
    """The text's 52-vs-46 example: equal external sums, different internals.

    A service offered only by C1 and C3 forces the choice the text
    discusses: path C0->C1->C2 costs 20+25=45 externally but 52 once the
    internal segments (C1.0->C1.2 = 5, C2.0->pd = 2) are back-tracked in,
    while C0->C3->C2 also costs 45 externally but only 46 with internals
    (C3 is entered and left through the same border; C2.2->pd = 1).
    Back-tracking must choose C3; the external-only relaxation sees a dead
    tie at 45.
    """

    TIE_REQUEST = ServiceRequest("C0.2", linear_graph(["S6"]), "C2.1")
    TIE_CAPABILITIES = {
        0: frozenset(),
        1: frozenset({"S6"}),
        2: frozenset(),
        3: frozenset({"S6"}),
    }

    @pytest.fixture
    def tie_router(self, paper_router):
        paper_router.cluster_capabilities = self.TIE_CAPABILITIES
        return paper_router

    def test_backtrack_prefers_lower_true_bound(self, tie_router):
        csp = tie_router.cluster_level_path(self.TIE_REQUEST)
        assert csp.cluster_sequence() == [3]
        assert csp.estimated_cost == pytest.approx(46.0)

    def test_external_only_sees_a_tie(self, tie_router):
        tie_router.method = "external"
        csp = tie_router.cluster_level_path(self.TIE_REQUEST)
        # both options cost exactly 45 externally
        assert csp.estimated_cost == pytest.approx(45.0)

    def test_exact_dp_agrees_with_backtrack_here(self, tie_router):
        tie_router.method = "exact"
        csp = tie_router.cluster_level_path(self.TIE_REQUEST)
        assert csp.cluster_sequence() == [3]
        assert csp.estimated_cost == pytest.approx(46.0)

    def test_s4_in_source_cluster_beats_both(self, paper_router):
        """With the original capabilities, S4 also exists in C0 itself:
        staying home costs the direct external link C0->C2 (40) plus the
        entry segment C2.2->pd (1) = 41, beating both multi-cluster
        options — and the router must find it."""
        request = ServiceRequest("C0.2", linear_graph(["S4"]), "C2.1")
        csp = paper_router.cluster_level_path(request)
        assert csp.cluster_sequence() == [0]
        assert csp.estimated_cost == pytest.approx(41.0)
