"""Tests for hierarchical divide-and-conquer routing (paper Section 5)."""

import random

import pytest

from repro.routing import HierarchicalRouter, validate_path
from repro.services import ServiceRequest, linear_graph
from repro.services.placement import aggregate_capability
from repro.util.errors import NoFeasiblePathError, RoutingError


def sample_requests(framework, count, seed=0):
    rng = random.Random(seed)
    return [framework.random_request(seed=rng.randint(0, 10**9)) for _ in range(count)]


@pytest.fixture(scope="module")
def router(framework):
    return HierarchicalRouter(framework.hfc)


class TestConstruction:
    def test_bad_method_rejected(self, framework):
        with pytest.raises(RoutingError):
            HierarchicalRouter(framework.hfc, method="magic")

    def test_default_capabilities_are_exact_aggregates(self, framework, router):
        for cid in range(framework.hfc.cluster_count):
            expected = aggregate_capability(
                framework.overlay.placement, framework.hfc.members(cid)
            )
            assert router.cluster_capabilities[cid] == expected


class TestClusterLevel:
    def test_candidates_respect_sct_c(self, framework, router):
        request = framework.random_request(seed=1)
        candidates = router.cluster_candidates(request.service_graph)
        for slot, clusters in candidates.items():
            service = request.service_graph.service_of(slot)
            for cid in clusters:
                assert service in router.cluster_capabilities[cid]

    def test_csp_assignment_covers_a_configuration(self, framework, router):
        request = framework.random_request(seed=2)
        csp = router.cluster_level_path(request)
        slots = [slot for slot, _ in csp.assignment]
        assert request.service_graph.is_configuration(slots)

    def test_csp_endpoint_clusters(self, framework, router):
        request = framework.random_request(seed=3)
        csp = router.cluster_level_path(request)
        assert csp.source_cluster == framework.hfc.cluster_of(request.source_proxy)
        assert csp.destination_cluster == framework.hfc.cluster_of(
            request.destination_proxy
        )

    def test_unavailable_service_raises(self, framework, router):
        request = ServiceRequest(
            framework.overlay.proxies[0],
            linear_graph(["not-a-service"]),
            framework.overlay.proxies[1],
        )
        with pytest.raises(NoFeasiblePathError):
            router.cluster_level_path(request)

    def test_cluster_sequence_collapses_runs(self, framework, router):
        request = framework.random_request(seed=4)
        csp = router.cluster_level_path(request)
        seq = csp.cluster_sequence()
        for a, b in zip(seq, seq[1:]):
            assert a != b


class TestDissection:
    def test_children_cover_all_slots_in_order(self, framework, router):
        for request in sample_requests(framework, 15, seed=5):
            result = router.route_detailed(request)
            slots = [s for child in result.child_requests for s in child.slots]
            assert slots == [slot for slot, _ in result.csp.assignment]

    def test_child_endpoints_chain_via_borders(self, framework, router):
        hfc = framework.hfc
        for request in sample_requests(framework, 15, seed=6):
            result = router.route_detailed(request)
            children = result.child_requests
            assert children[0].source_proxy == request.source_proxy
            assert children[-1].destination_proxy == request.destination_proxy
            for prev, nxt in zip(children, children[1:]):
                # exit border of prev and entry border of nxt form the
                # external link between the two clusters
                assert prev.destination_proxy == hfc.border(prev.cluster, nxt.cluster)
                assert nxt.source_proxy == hfc.border(nxt.cluster, prev.cluster)

    def test_child_services_within_cluster_capability(self, framework, router):
        for request in sample_requests(framework, 15, seed=7):
            result = router.route_detailed(request)
            for child in result.child_requests:
                capability = router.cluster_capabilities[child.cluster]
                for service in child.services:
                    assert service in capability

    def test_first_and_last_clusters_match_endpoints(self, framework, router):
        hfc = framework.hfc
        for request in sample_requests(framework, 15, seed=8):
            result = router.route_detailed(request)
            children = result.child_requests
            assert children[0].cluster == hfc.cluster_of(request.source_proxy)
            assert children[-1].cluster == hfc.cluster_of(request.destination_proxy)


class TestConquer:
    def test_final_paths_validate(self, framework, router):
        for request in sample_requests(framework, 25, seed=9):
            path = router.route(request)
            validate_path(path, request, framework.overlay)

    def test_child_paths_stay_inside_their_cluster(self, framework, router):
        hfc = framework.hfc
        for request in sample_requests(framework, 15, seed=10):
            result = router.route_detailed(request)
            for child, child_path in zip(result.child_requests, result.child_paths):
                for hop in child_path.hops:
                    assert hfc.cluster_of(hop.proxy) == child.cluster

    def test_intra_cluster_services_served_locally(self, framework, router):
        """Every service hop must be a proxy of the cluster the CSP chose."""
        hfc = framework.hfc
        for request in sample_requests(framework, 15, seed=11):
            result = router.route_detailed(request)
            assigned = dict(result.csp.assignment)
            for hop in result.path.service_hops():
                assert hfc.cluster_of(hop.proxy) == assigned[hop.slot]

    def test_two_hop_property_of_consecutive_services(self, framework, router):
        """Any two consecutive service hops are at most 2 overlay links
        apart plus the endpoints — the HFC proximity guarantee means no hop
        chain longer than: exit-border, entry-border between them."""
        for request in sample_requests(framework, 15, seed=12):
            path = router.route(request)
            proxies = path.proxies()
            service_positions = []
            service_proxies = {h.proxy for h in path.service_hops()}
            for i, p in enumerate(proxies):
                if p in service_proxies:
                    service_positions.append(i)
            for a, b in zip(service_positions, service_positions[1:]):
                assert b - a <= 3  # at most two relays (the border pair) between


class TestMethods:
    @pytest.mark.parametrize("method", ["backtrack", "exact", "external"])
    def test_all_methods_produce_valid_paths(self, framework, method):
        router = HierarchicalRouter(framework.hfc, method=method)
        for request in sample_requests(framework, 10, seed=13):
            path = router.route(request)
            validate_path(path, request, framework.overlay)

    def test_exact_estimate_never_worse_than_backtrack(self, framework):
        """The exact DP minimises the same cost model backtracking
        approximates, so its estimated CSP cost is <=."""
        backtrack = HierarchicalRouter(framework.hfc, method="backtrack")
        exact = HierarchicalRouter(framework.hfc, method="exact")
        for request in sample_requests(framework, 10, seed=14):
            cb = backtrack.cluster_level_path(request).estimated_cost
            ce = exact.cluster_level_path(request).estimated_cost
            assert ce <= cb + 1e-9

    def test_backtrack_beats_external_on_true_delay_in_aggregate(self, framework):
        """The paper's back-tracking modification should pay off on average."""
        backtrack = HierarchicalRouter(framework.hfc, method="backtrack")
        external = HierarchicalRouter(framework.hfc, method="external")
        overlay = framework.overlay
        requests = sample_requests(framework, 40, seed=15)
        bt = sum(backtrack.route(r).true_delay(overlay) for r in requests)
        ext = sum(external.route(r).true_delay(overlay) for r in requests)
        assert bt <= ext * 1.02  # allow 2% noise margin


class TestStaleState:
    def test_stale_capabilities_can_fail_cleanly(self, framework):
        """If SCT_C over-advertises (stale), routing raises rather than
        returning a broken path."""
        # claim every cluster offers a phantom service
        stale = {
            cid: frozenset({"phantom"})
            | aggregate_capability(
                framework.overlay.placement, framework.hfc.members(cid)
            )
            for cid in range(framework.hfc.cluster_count)
        }
        router = HierarchicalRouter(framework.hfc, cluster_capabilities=stale)
        request = ServiceRequest(
            framework.overlay.proxies[0],
            linear_graph(["phantom"]),
            framework.overlay.proxies[1],
        )
        with pytest.raises(NoFeasiblePathError):
            router.route(request)

    def test_under_advertising_hides_services(self, framework):
        """If SCT_C under-advertises, the service is unreachable even though
        it is installed."""
        empty = {
            cid: frozenset() for cid in range(framework.hfc.cluster_count)
        }
        router = HierarchicalRouter(framework.hfc, cluster_capabilities=empty)
        with pytest.raises(NoFeasiblePathError):
            router.route(framework.random_request(seed=16))
