"""End-to-end integration tests: the whole pipeline and the paper's claims.

These run at a reduced scale and assert the *shape* of the paper's results:

* Fig 9 — hierarchical node-state counts grow much slower than flat;
* Fig 10 — HFC with aggregation is comparable to the mesh baseline, and
  HFC without aggregation is at least as good as HFC with aggregation
  (the gap is the price of aggregation imprecision);
* the hierarchical path is never better than the same-topology full-state
  optimum *measured on the estimates it optimises* (internal consistency).
"""

import random

import pytest

from repro.core import FrameworkConfig, HFCFramework
from repro.experiments import (
    EnvironmentSpec,
    WorkloadConfig,
    build_environment,
    generate_requests,
    run_overhead_experiment,
    run_path_efficiency,
)
from repro.routing import validate_path

SPECS = [
    EnvironmentSpec(physical_nodes=150, landmarks=10, proxies=50, clients=10),
    EnvironmentSpec(physical_nodes=240, landmarks=10, proxies=100, clients=18),
]


@pytest.fixture(scope="module")
def overhead_result():
    return run_overhead_experiment(SPECS, topologies_per_size=3, seed=21)


@pytest.fixture(scope="module")
def efficiency_result():
    return run_path_efficiency(
        SPECS,
        strategies=("mesh", "hfc_agg", "hfc_full", "oracle"),
        topologies_per_size=2,
        requests_per_topology=60,
        seed=22,
    )


class TestFig9Shape:
    def test_hierarchical_much_smaller_at_larger_size(self, overhead_result):
        big = overhead_result.coordinates[-1]
        assert big.hierarchical < 0.8 * big.flat

    def test_hierarchical_grows_slower_than_flat(self, overhead_result):
        for series in (overhead_result.coordinates, overhead_result.service):
            flat_growth = series[-1].flat - series[0].flat
            hier_growth = series[-1].hierarchical - series[0].hierarchical
            assert hier_growth < flat_growth

    def test_service_overhead_even_smaller_than_coordinates(self, overhead_result):
        """SCT_C holds one entry per cluster, fewer than border coordinates."""
        for coord, svc in zip(
            overhead_result.coordinates, overhead_result.service
        ):
            assert svc.hierarchical <= coord.hierarchical + 1e-9


class TestFig10Shape:
    def test_hfc_agg_comparable_to_mesh(self, efficiency_result):
        """Paper: 'performance of the HFC framework is still comparable to
        (actually slightly better than) single-level mesh solutions'."""
        for point in efficiency_result.points:
            assert point.mean_delay["hfc_agg"] <= point.mean_delay["mesh"] * 1.15

    def test_full_state_at_least_as_good_as_aggregated(self, efficiency_result):
        """The gap hfc_agg - hfc_full is the aggregation-imprecision price;
        it must not be negative beyond noise."""
        for point in efficiency_result.points:
            assert point.mean_delay["hfc_full"] <= point.mean_delay["hfc_agg"] * 1.05

    def test_oracle_is_global_minimum(self, efficiency_result):
        for point in efficiency_result.points:
            oracle = point.mean_delay["oracle"]
            for name, value in point.mean_delay.items():
                assert value >= oracle - 1e-9

    def test_no_routing_failures(self, efficiency_result):
        for point in efficiency_result.points:
            assert all(v == 0 for v in point.failures.values())


class TestInternalConsistency:
    def test_hierarchical_estimate_not_below_full_state_estimate(self):
        """On the metric both optimise (coordinate length), the full-state
        router over the same HFC topology is a relaxation of the
        hierarchical one, so it can never be longer."""
        framework = HFCFramework.build(
            proxy_count=60, config=FrameworkConfig(physical_nodes=200), seed=31
        )
        hier = framework.hierarchical_router()
        full = framework.full_state_router()
        overlay = framework.overlay
        rng = random.Random(5)
        for _ in range(20):
            request = framework.random_request(seed=rng.randint(0, 10**9))
            h = hier.route(request).estimated_length(overlay)
            f = full.route(request).estimated_length(overlay)
            assert f <= h + 1e-6

    def test_protocol_state_equals_placement_aggregates(self):
        """After convergence, routing from protocol tables equals routing
        from direct placement aggregation."""
        framework = HFCFramework.build(
            proxy_count=50, config=FrameworkConfig(physical_nodes=150), seed=32
        )
        from repro.routing import HierarchicalRouter
        from repro.state import StateDistributionProtocol

        protocol = StateDistributionProtocol(framework.hfc, seed=2)
        report = protocol.run()
        assert report.converged_at is not None
        from_protocol = HierarchicalRouter(
            framework.hfc,
            cluster_capabilities=protocol.capabilities_for_routing(),
        )
        from_placement = framework.hierarchical_router()
        overlay = framework.overlay
        for seed in range(10):
            request = framework.random_request(seed=seed)
            a = from_protocol.route(request)
            b = from_placement.route(request)
            assert a.true_delay(overlay) == pytest.approx(b.true_delay(overlay))


class TestClientWorkloadEndToEnd:
    def test_full_paper_pipeline_small(self):
        """Table-1-shaped environment end to end: build, state, route 30
        client requests on all three Fig 10 strategies, validate every path."""
        env = build_environment(SPECS[0], seed=41)
        fw = env.framework
        requests = generate_requests(env, WorkloadConfig(request_count=30), seed=42)
        routers = {
            "mesh": fw.mesh_router(seed=43),
            "hfc_agg": fw.hierarchical_router(),
            "hfc_full": fw.full_state_router(),
        }
        for request in requests:
            for router in routers.values():
                path = router.route(request)
                validate_path(path, request, fw.overlay)
