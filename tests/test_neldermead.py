"""Tests for the from-scratch Nelder-Mead minimizer (vs scipy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import optimize

from repro.coords import minimize_with_restarts, nelder_mead


def sphere(x):
    return float(np.sum(x**2))


def rosenbrock(x):
    return float(100.0 * (x[1] - x[0] ** 2) ** 2 + (1 - x[0]) ** 2)


class TestNelderMead:
    def test_minimizes_1d_quadratic(self):
        result = nelder_mead(lambda x: float((x[0] - 3.0) ** 2), [0.0])
        assert result.x[0] == pytest.approx(3.0, abs=1e-3)
        assert result.converged

    def test_minimizes_sphere_5d(self):
        result = nelder_mead(sphere, [5.0, -3.0, 2.0, 1.0, -4.0])
        assert result.fun < 1e-6

    def test_minimizes_rosenbrock(self):
        result = nelder_mead(rosenbrock, [-1.2, 1.0], max_iterations=5000)
        assert result.x == pytest.approx([1.0, 1.0], abs=1e-2)

    def test_iteration_cap_respected(self):
        result = nelder_mead(rosenbrock, [-1.2, 1.0], max_iterations=5)
        assert result.iterations <= 5
        assert not result.converged

    def test_rejects_empty_start(self):
        with pytest.raises(ValueError):
            nelder_mead(sphere, [])

    def test_rejects_2d_start(self):
        with pytest.raises(ValueError):
            nelder_mead(sphere, np.zeros((2, 2)))

    def test_start_at_optimum_stays(self):
        result = nelder_mead(sphere, [0.0, 0.0])
        assert result.fun < 1e-9

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(-5, 5), min_size=1, max_size=4),
        st.lists(st.floats(-3, 3), min_size=4, max_size=4),
    )
    def test_at_least_as_good_as_scipy_on_shifted_quadratics(self, start, target):
        """Property: on convex quadratics we do no worse than scipy.

        (Strict equality would be unfair the other way: scipy's default
        initial simplex degenerates on near-zero denormal starts where our
        floor-to-1.0 step sizing keeps working.)
        """
        target = np.array(target[: len(start)])
        start = np.array(start)

        def objective(x):
            return float(np.sum((x - target) ** 2))

        ours = nelder_mead(objective, start, max_iterations=4000)
        theirs = optimize.minimize(
            objective, start, method="Nelder-Mead",
            options={"maxiter": 4000, "xatol": 1e-8, "fatol": 1e-10},
        )
        assert ours.fun <= float(theirs.fun) + 1e-4


class TestRestarts:
    def test_picks_best_start(self):
        # A function with two basins: x^4 - x^2 has minima at +-1/sqrt(2)
        def w(x):
            return float(x[0] ** 4 - x[0] ** 2 + 0.1 * x[0])

        result = minimize_with_restarts(w, [[1.0], [-1.0]])
        # global minimum is on the negative side because of the +0.1x tilt
        assert result.x[0] < 0

    def test_empty_starts_rejected(self):
        with pytest.raises(ValueError):
            minimize_with_restarts(sphere, [])

    def test_single_start_equivalent(self):
        a = nelder_mead(sphere, [2.0, 2.0])
        b = minimize_with_restarts(sphere, [[2.0, 2.0]])
        assert a.fun == pytest.approx(b.fun)
