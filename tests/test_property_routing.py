"""Property-based tests of routing over fully synthetic overlays.

Rather than running the expensive build pipeline, these tests generate
small overlays directly — random proxy coordinates, random service
placements, random (valid) clusterings — and assert the routing invariants
that must hold for *any* input:

* hierarchical routing returns a valid path or raises NoFeasiblePathError;
* the chosen slots always form a feasible configuration;
* dissection chains children through the correct border proxies;
* the HFC full-state router (a relaxation) never reports a longer
  coordinate length than the composed hierarchical path.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.mstcluster import Clustering
from repro.coords.space import CoordinateSpace
from repro.netsim.physical import PhysicalNetwork
from repro.netsim.topology import waxman
from repro.overlay.hfc import build_hfc
from repro.overlay.network import OverlayNetwork
from repro.routing import (
    HierarchicalRouter,
    hfc_full_state_router,
    validate_path,
)
from repro.services import ServiceRequest, linear_graph
from repro.util.errors import NoFeasiblePathError

#: one shared physical substrate; synthetic overlays draw proxies from it
_PHYSICAL = PhysicalNetwork(waxman(40, seed=1234), noise=0.0, seed=99)


@st.composite
def synthetic_overlay(draw):
    """A small overlay with arbitrary coordinates/placement/clustering."""
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    n = draw(st.integers(min_value=4, max_value=16))
    proxies = _PHYSICAL.graph.nodes()[:n]

    coords = {
        p: (
            draw(st.floats(-100, 100, allow_nan=False, allow_infinity=False)),
            draw(st.floats(-100, 100, allow_nan=False, allow_infinity=False)),
        )
        for p in proxies
    }
    space = CoordinateSpace(coords)

    catalog = [f"s{i}" for i in range(draw(st.integers(2, 6)))]
    placement = {
        p: frozenset(rng.sample(catalog, rng.randint(1, len(catalog))))
        for p in proxies
    }
    overlay = OverlayNetwork(
        physical=_PHYSICAL, proxies=list(proxies), placement=placement, space=space
    )

    # random valid partition into 1..4 clusters
    cluster_count = draw(st.integers(1, min(4, n)))
    labels = {}
    # guarantee non-empty clusters: first `cluster_count` proxies seed them
    for i, p in enumerate(proxies):
        labels[p] = i if i < cluster_count else rng.randrange(cluster_count)
    clusters = [[] for _ in range(cluster_count)]
    for p in proxies:
        clusters[labels[p]].append(p)
    clustering = Clustering(
        clusters=[sorted(c) for c in clusters], labels=labels
    )
    hfc = build_hfc(overlay, clustering)

    length = draw(st.integers(1, 4))
    services = [rng.choice(catalog) for _ in range(length)]
    src, dst = rng.sample(list(proxies), 2)
    request = ServiceRequest(src, linear_graph(services), dst)
    return hfc, request


@settings(max_examples=60, deadline=None)
@given(synthetic_overlay())
def test_hierarchical_routing_total(case):
    """Property: route() either returns a valid path or raises cleanly."""
    hfc, request = case
    router = HierarchicalRouter(hfc)
    try:
        path = router.route(request)
    except NoFeasiblePathError:
        return
    validate_path(path, request, hfc.overlay)


@settings(max_examples=40, deadline=None)
@given(synthetic_overlay())
def test_dissection_border_chaining(case):
    """Property: consecutive children connect through the border pair."""
    hfc, request = case
    router = HierarchicalRouter(hfc)
    try:
        result = router.route_detailed(request)
    except NoFeasiblePathError:
        return
    children = result.child_requests
    assert children[0].source_proxy == request.source_proxy
    assert children[-1].destination_proxy == request.destination_proxy
    for prev, nxt in zip(children, children[1:]):
        assert prev.destination_proxy == hfc.border(prev.cluster, nxt.cluster)
        assert nxt.source_proxy == hfc.border(nxt.cluster, prev.cluster)


@settings(max_examples=40, deadline=None)
@given(synthetic_overlay())
def test_full_state_relaxation_bound(case):
    """Property: the full-state router's coordinate length never exceeds
    the hierarchical path's (it optimises over a superset of choices)."""
    hfc, request = case
    hier = HierarchicalRouter(hfc)
    full = hfc_full_state_router(hfc)
    try:
        hier_path = hier.route(request)
        full_path = full.route(request)
    except NoFeasiblePathError:
        return
    overlay = hfc.overlay
    assert full_path.estimated_length(overlay) <= (
        hier_path.estimated_length(overlay) + 1e-6
    )


@settings(max_examples=40, deadline=None)
@given(synthetic_overlay())
def test_methods_agree_on_feasibility(case):
    """Property: all three CSP methods agree on whether a request is
    feasible (they differ only in edge costs, not reachability)."""
    hfc, request = case
    outcomes = {}
    for method in ("backtrack", "exact", "external"):
        router = HierarchicalRouter(hfc, method=method)
        try:
            router.route(request)
            outcomes[method] = True
        except NoFeasiblePathError:
            outcomes[method] = False
    assert len(set(outcomes.values())) == 1, outcomes


@settings(max_examples=20, deadline=None)
@given(synthetic_overlay())
def test_protocol_converges_on_arbitrary_structures(case):
    """Property: the state protocol converges on any valid cluster layout."""
    from repro.state import StateDistributionProtocol

    hfc, _ = case
    protocol = StateDistributionProtocol(hfc, seed=1)
    report = protocol.run(max_time=20000.0)
    assert report.converged_at is not None


@settings(max_examples=20, deadline=None)
@given(synthetic_overlay())
def test_three_level_routing_total(case):
    """Property: the three-level router is total on arbitrary structures."""
    from repro.hierarchy import ThreeLevelRouter, build_multilevel

    hfc, request = case
    multilevel = build_multilevel(hfc)
    router = ThreeLevelRouter(multilevel)
    try:
        path = router.route(request)
    except NoFeasiblePathError:
        return
    validate_path(path, request, hfc.overlay)


@settings(max_examples=20, deadline=None)
@given(synthetic_overlay())
def test_overhead_accounting_consistent(case):
    """Property: Fig-9 accounting formulas hold on any structure."""
    from repro.state import coordinates_node_states, service_node_states

    hfc, _ = case
    coords = coordinates_node_states(hfc)
    service = service_node_states(hfc)
    borders = set(hfc.all_border_nodes())
    for proxy in hfc.overlay.proxies:
        members = set(hfc.members(hfc.cluster_of(proxy)))
        assert coords[proxy] == len(members) + len(borders - members)
        assert service[proxy] == len(members) + hfc.cluster_count
        # state is never larger than the flat alternative
        assert coords[proxy] <= hfc.overlay.size + len(borders)
