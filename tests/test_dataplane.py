"""Tests for the data-plane streaming simulation and failure recovery."""

import pytest

from repro.dataplane import StreamingSession, make_rerouter, path_nominal_latency
from repro.routing import HierarchicalRouter
from repro.util.errors import EndpointFailedError, RoutingError, SessionError


@pytest.fixture(scope="module")
def routed(framework):
    router = HierarchicalRouter(framework.hfc)
    request = framework.random_request(seed=81)
    return request, router.route(request)


class TestHealthySession:
    def test_all_packets_delivered(self, framework, routed):
        _, path = routed
        session = StreamingSession(framework.overlay, path, packet_count=20)
        report = session.run()
        assert report.delivered == 20
        assert report.lost == 0

    def test_latency_equals_nominal(self, framework, routed):
        _, path = routed
        session = StreamingSession(framework.overlay, path, packet_count=10)
        report = session.run()
        for record in report.records:
            assert record.latency == pytest.approx(report.nominal_latency)

    def test_nominal_latency_includes_processing(self, framework, routed):
        _, path = routed
        with_processing = path_nominal_latency(path, framework.overlay, 5.0)
        without = path_nominal_latency(path, framework.overlay, 0.0)
        assert with_processing == pytest.approx(
            without + 5.0 * len(path.service_hops())
        )

    def test_packets_emitted_at_interval(self, framework, routed):
        _, path = routed
        session = StreamingSession(
            framework.overlay, path, packet_count=5, packet_interval=7.0
        )
        report = session.run()
        for i, record in enumerate(report.records):
            assert record.sent_at == pytest.approx(7.0 * i)

    def test_invalid_packet_count(self, framework, routed):
        _, path = routed
        with pytest.raises(RoutingError):
            StreamingSession(framework.overlay, path, packet_count=0)


class TestFailureWithoutRecovery:
    def test_packets_after_failure_lost(self, framework, routed):
        _, path = routed
        victim = path.service_hops()[0].proxy
        session = StreamingSession(
            framework.overlay, path, packet_count=20, packet_interval=5.0
        )
        report = session.run(failures={victim: 40.0})
        assert report.lost > 0
        assert report.delivered < 20
        # every lost packet was sent around/after the failure
        latest_ok = max(
            (r.sent_at for r in report.records if r.delivered), default=0.0
        )
        earliest_lost = min(
            r.sent_at for r in report.records if not r.delivered
        )
        assert earliest_lost >= latest_ok - session.report.nominal_latency

    def test_failure_before_start_loses_everything(self, framework, routed):
        _, path = routed
        victim = path.service_hops()[0].proxy
        session = StreamingSession(framework.overlay, path, packet_count=5)
        report = session.run(failures={victim: 0.0})
        assert report.delivered == 0


class TestFailureWithRecovery:
    def test_session_recovers(self, framework, routed):
        request, path = routed
        victim = path.service_hops()[0].proxy
        if victim in (request.source_proxy, request.destination_proxy):
            pytest.skip("victim is an endpoint")
        nominal = path_nominal_latency(path, framework.overlay, 1.0)
        session = StreamingSession(
            framework.overlay, path,
            packet_count=max(40, int(nominal)), packet_interval=10.0,
        )
        report = session.run(
            failures={victim: 30.0},
            rerouter=make_rerouter(framework, request),
        )
        assert report.recovery_started_at is not None
        assert report.recovered_at is not None
        assert report.delivered > 0
        assert report.lost > 0  # packets in flight during the outage die
        # packets delivered after recovery used the new path
        late = [r for r in report.records if r.path_version > 1]
        assert late and all(r.delivered for r in late)
        assert victim not in set(report.final_path.proxies())

    def test_recovered_path_still_answers_request(self, framework, routed):
        from repro.routing import validate_path

        request, path = routed
        victim = path.service_hops()[0].proxy
        if victim in (request.source_proxy, request.destination_proxy):
            pytest.skip("victim is an endpoint")
        session = StreamingSession(
            framework.overlay, path, packet_count=30, packet_interval=10.0
        )
        report = session.run(
            failures={victim: 30.0}, rerouter=make_rerouter(framework, request)
        )
        validate_path(report.final_path, request, framework.overlay)

    def test_endpoint_failure_is_fatal(self, framework, routed):
        request, path = routed
        session = StreamingSession(
            framework.overlay, path, packet_count=20, packet_interval=5.0
        )
        with pytest.raises(RoutingError):
            session.run(
                failures={request.destination_proxy: 10.0},
                rerouter=make_rerouter(framework, request),
            )

    def test_endpoint_failure_raises_typed_session_error(self, framework, routed):
        """A dead endpoint is a session-level failure, distinguishable from
        ordinary routing failures by its type."""
        request, _ = routed
        reroute = make_rerouter(framework, request)
        with pytest.raises(EndpointFailedError) as exc_info:
            reroute(frozenset({request.source_proxy}))
        assert isinstance(exc_info.value, SessionError)
        assert isinstance(exc_info.value, RoutingError)  # back-compat catch
        assert repr(request.source_proxy) in str(exc_info.value)

    def test_rerouter_reuses_router_across_calls(self, framework, routed):
        """The hoisted router is rebound only when the overlay version
        moves; repeat calls with no new failures reuse it outright."""
        request, path = routed
        victim = path.service_hops()[0].proxy
        if victim in (request.source_proxy, request.destination_proxy):
            pytest.skip("victim is an endpoint")
        reroute = make_rerouter(framework, request)
        # no failures yet: both calls route on the pristine overlay
        first = reroute(frozenset())
        second = reroute(frozenset())
        assert first.hops == second.hops
        # a failure rebuilds the topology and the rerouted path avoids it
        repaired = reroute(frozenset({victim}))
        assert victim not in repaired.proxies()
        # the already-processed failure does not trigger another rebuild
        assert reroute(frozenset({victim})).hops == repaired.hops

    def test_loss_bounded_by_detection_window(self, framework, routed):
        """Packets lost ~ (outage until switch) / interval, bounded above."""
        request, path = routed
        victim = path.service_hops()[0].proxy
        if victim in (request.source_proxy, request.destination_proxy):
            pytest.skip("victim is an endpoint")
        nominal = path_nominal_latency(path, framework.overlay, 1.0)
        interval = 10.0
        session = StreamingSession(
            framework.overlay, path,
            packet_count=max(60, int(nominal)), packet_interval=interval,
            detection_margin=10.0,
        )
        report = session.run(
            failures={victim: 30.0}, rerouter=make_rerouter(framework, request)
        )
        # outage window: fail -> detection (nominal+margin after send) ->
        # switch command travels back to the source
        window = (
            report.nominal_latency  # packets already in flight
            + report.nominal_latency + 10.0  # detection deadline
            + framework.overlay.true_delay(path.destination, path.source)
        )
        assert report.lost <= window / interval + 2


class TestSessionProperties:
    """Hypothesis properties of the streaming session."""

    def test_delivered_plus_lost_is_total_under_random_failures(self, framework, routed):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        request, path = routed
        service_proxies = [h.proxy for h in path.service_hops()]

        @settings(max_examples=15, deadline=None)
        @given(
            fail_index=st.integers(0, max(0, len(service_proxies) - 1)),
            fail_time=st.floats(0.0, 400.0),
            packets=st.integers(1, 30),
        )
        def run(fail_index, fail_time, packets):
            session = StreamingSession(
                framework.overlay, path, packet_count=packets,
                packet_interval=5.0,
            )
            report = session.run(
                failures={service_proxies[fail_index]: fail_time}
            )
            assert report.delivered + report.lost == packets
            for record in report.records:
                if record.latency is not None:
                    assert record.latency == pytest.approx(
                        report.nominal_latency
                    )

        run()
