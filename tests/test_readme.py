"""The README's quickstart snippet must actually run."""

import pathlib
import re

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def test_quickstart_snippet_executes():
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README has no python code block"
    snippet = blocks[0]
    # keep the snippet cheap: shrink the overlay it builds
    snippet = snippet.replace("proxy_count=100", "proxy_count=40")
    namespace = {}
    exec(compile(snippet, "README-quickstart", "exec"), namespace)  # noqa: S102
    assert "path" in namespace


def test_architecture_block_matches_source_tree():
    """Every subpackage the README names must exist (and vice versa)."""
    text = README.read_text()
    src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
    named = set(re.findall(r"^  (\w+)/", text, flags=re.MULTILINE))
    actual = {
        p.name for p in src.iterdir()
        if p.is_dir() and not p.name.startswith("__")
    }
    assert named <= actual, f"README names missing packages: {named - actual}"
    assert actual <= named | {"util"}, (
        f"packages undocumented in README: {actual - named - {'util'}}"
    )
