"""Tests for ServicePath, Hop, and path validation."""

import pytest

from repro.routing import Hop, ServicePath, path_from_assignment, validate_path
from repro.services import ServiceRequest, linear_graph
from repro.util.errors import RoutingError


def make_path(*hops):
    return ServicePath(hops=tuple(hops))


class TestServicePath:
    def test_endpoints(self):
        path = make_path(Hop(1), Hop(2, "a", 0), Hop(3))
        assert path.source == 1
        assert path.destination == 3

    def test_proxies_collapse_duplicates(self):
        path = make_path(Hop(1), Hop(1, "a", 0), Hop(2, "b", 1), Hop(2))
        assert path.proxies() == [1, 2]

    def test_service_hops(self):
        path = make_path(Hop(1), Hop(5, "a", 0), Hop(6), Hop(7, "b", 1), Hop(2))
        assert [h.service for h in path.service_hops()] == ["a", "b"]

    def test_relay_count_excludes_endpoints(self):
        path = make_path(Hop(1), Hop(5, "a", 0), Hop(6), Hop(2))
        assert path.relay_count() == 1

    def test_overlay_hop_count(self):
        path = make_path(Hop(1), Hop(5, "a", 0), Hop(2))
        assert path.overlay_hop_count == 2

    def test_empty_rejected(self):
        with pytest.raises(RoutingError):
            ServicePath(hops=())

    def test_repr_uses_paper_notation(self):
        path = make_path(Hop(1), Hop(5, "a", 0))
        assert "-/1" in repr(path)
        assert "a/5" in repr(path)

    def test_true_delay_sums_physical(self, tiny_framework):
        overlay = tiny_framework.overlay
        p = overlay.proxies
        path = make_path(Hop(p[0]), Hop(p[1], "x", 0), Hop(p[2]))
        expected = overlay.true_delay(p[0], p[1]) + overlay.true_delay(p[1], p[2])
        assert path.true_delay(overlay) == pytest.approx(expected)

    def test_estimated_length_uses_coordinates(self, tiny_framework):
        overlay = tiny_framework.overlay
        p = overlay.proxies
        path = make_path(Hop(p[0]), Hop(p[1]))
        assert path.estimated_length(overlay) == pytest.approx(
            overlay.coordinate_distance(p[0], p[1])
        )


class TestPathFromAssignment:
    def test_builds_endpoint_hops(self):
        sg = linear_graph(["a", "b"])
        request = ServiceRequest(100, sg, 200)
        path = path_from_assignment(request, [(0, 5), (1, 6)])
        assert path.source == 100
        assert path.destination == 200
        assert [h.service for h in path.service_hops()] == ["a", "b"]


class TestValidatePath:
    @pytest.fixture
    def valid_setup(self, tiny_framework):
        overlay = tiny_framework.overlay
        service = next(iter(overlay.placement[overlay.proxies[3]]))
        sg = linear_graph([service])
        request = ServiceRequest(overlay.proxies[0], sg, overlay.proxies[1])
        path = make_path(
            Hop(overlay.proxies[0]),
            Hop(overlay.proxies[3], service, 0),
            Hop(overlay.proxies[1]),
        )
        return path, request, overlay

    def test_valid_path_passes(self, valid_setup):
        path, request, overlay = valid_setup
        validate_path(path, request, overlay)  # must not raise

    def test_wrong_source_rejected(self, valid_setup):
        path, request, overlay = valid_setup
        bad = ServiceRequest(overlay.proxies[5], request.service_graph,
                             request.destination_proxy)
        with pytest.raises(RoutingError):
            validate_path(path, bad, overlay)

    def test_wrong_destination_rejected(self, valid_setup):
        path, request, overlay = valid_setup
        bad = ServiceRequest(request.source_proxy, request.service_graph,
                             overlay.proxies[5])
        with pytest.raises(RoutingError):
            validate_path(path, bad, overlay)

    def test_proxy_not_hosting_service_rejected(self, tiny_framework):
        overlay = tiny_framework.overlay
        # find a proxy NOT hosting some service
        service = next(iter(overlay.placement[overlay.proxies[3]]))
        non_host = next(
            p for p in overlay.proxies if service not in overlay.placement[p]
        )
        request = ServiceRequest(
            overlay.proxies[0], linear_graph([service]), overlay.proxies[1]
        )
        path = make_path(
            Hop(overlay.proxies[0]), Hop(non_host, service, 0), Hop(overlay.proxies[1])
        )
        with pytest.raises(RoutingError):
            validate_path(path, request, overlay)

    def test_missing_slot_rejected(self, valid_setup):
        path, request, overlay = valid_setup
        no_slot = make_path(
            Hop(request.source_proxy),
            Hop(path.hops[1].proxy, path.hops[1].service, None),
            Hop(request.destination_proxy),
        )
        with pytest.raises(RoutingError):
            validate_path(no_slot, request, overlay)

    def test_incomplete_configuration_rejected(self, tiny_framework):
        overlay = tiny_framework.overlay
        s1 = next(iter(overlay.placement[overlay.proxies[3]]))
        s2 = next(iter(overlay.placement[overlay.proxies[4]]))
        request = ServiceRequest(
            overlay.proxies[0], linear_graph([s1, s2]), overlay.proxies[1]
        )
        partial = make_path(
            Hop(overlay.proxies[0]),
            Hop(overlay.proxies[3], s1, 0),
            Hop(overlay.proxies[1]),
        )
        with pytest.raises(RoutingError):
            validate_path(partial, request, overlay)

    def test_out_of_order_configuration_rejected(self, tiny_framework):
        overlay = tiny_framework.overlay
        s1 = next(iter(overlay.placement[overlay.proxies[3]]))
        s2 = next(iter(overlay.placement[overlay.proxies[4]]))
        request = ServiceRequest(
            overlay.proxies[0], linear_graph([s1, s2]), overlay.proxies[1]
        )
        swapped = make_path(
            Hop(overlay.proxies[0]),
            Hop(overlay.proxies[4], s2, 1),
            Hop(overlay.proxies[3], s1, 0),
            Hop(overlay.proxies[1]),
        )
        with pytest.raises(RoutingError):
            validate_path(swapped, request, overlay)
