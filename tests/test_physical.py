"""Tests for the PhysicalNetwork delay oracle."""

import numpy as np
import pytest

from repro.netsim import PhysicalNetwork, transit_stub
from repro.util.errors import TopologyError


class TestDelays:
    def test_self_delay_zero(self, small_physical):
        node = small_physical.graph.nodes()[0]
        assert small_physical.delay(node, node) == 0.0

    def test_symmetry(self, small_physical):
        nodes = small_physical.graph.nodes()
        u, v = nodes[0], nodes[50]
        assert small_physical.delay(u, v) == pytest.approx(small_physical.delay(v, u))

    def test_triangle_inequality(self, small_physical):
        """Shortest-path delays form a metric."""
        nodes = small_physical.graph.nodes()
        a, b, c = nodes[0], nodes[40], nodes[90]
        ab = small_physical.delay(a, b)
        bc = small_physical.delay(b, c)
        ac = small_physical.delay(a, c)
        assert ac <= ab + bc + 1e-9

    def test_delay_positive_between_distinct(self, small_physical):
        nodes = small_physical.graph.nodes()
        assert small_physical.delay(nodes[0], nodes[1]) > 0

    def test_delay_matrix_consistent(self, small_physical):
        nodes = small_physical.graph.nodes()[:10]
        matrix = small_physical.delay_matrix(nodes)
        assert matrix.shape == (10, 10)
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)
        assert matrix[0, 5] == pytest.approx(small_physical.delay(nodes[0], nodes[5]))

    def test_cache_reuse(self, small_physical):
        nodes = small_physical.graph.nodes()
        first = small_physical.delays_from(nodes[0])
        second = small_physical.delays_from(nodes[0])
        assert first is second


class TestMeasurement:
    def test_noise_biases_upward(self):
        topo = transit_stub(150, seed=1)
        net = PhysicalNetwork(topo, noise=0.5, seed=2)
        nodes = net.graph.nodes()
        true = net.delay(nodes[0], nodes[10])
        for _ in range(20):
            assert net.measure(nodes[0], nodes[10]) >= true

    def test_more_probes_reduce_error(self):
        topo = transit_stub(150, seed=1)
        net = PhysicalNetwork(topo, noise=0.5, seed=2)
        nodes = net.graph.nodes()
        true = net.delay(nodes[0], nodes[10])
        single = np.mean([net.measure(nodes[0], nodes[10], probes=1) for _ in range(50)])
        multi = np.mean([net.measure(nodes[0], nodes[10], probes=8) for _ in range(50)])
        assert multi - true < single - true

    def test_zero_noise_is_exact(self):
        topo = transit_stub(150, seed=1)
        net = PhysicalNetwork(topo, noise=0.0, seed=2)
        nodes = net.graph.nodes()
        true = net.delay(nodes[0], nodes[10])
        assert net.measure(nodes[0], nodes[10]) == true

    def test_invalid_probes_rejected(self, small_physical):
        nodes = small_physical.graph.nodes()
        with pytest.raises(ValueError):
            small_physical.measure(nodes[0], nodes[1], probes=0)

    def test_negative_noise_rejected(self):
        topo = transit_stub(150, seed=1)
        with pytest.raises(TopologyError):
            PhysicalNetwork(topo, noise=-0.1)


class TestHelpers:
    def test_nearest_picks_closest(self, small_physical):
        nodes = small_physical.graph.nodes()
        source = nodes[0]
        candidates = nodes[10:20]
        chosen = small_physical.nearest(source, candidates)
        best = min(candidates, key=lambda c: small_physical.delay(source, c))
        assert chosen == best

    def test_nearest_empty_raises(self, small_physical):
        with pytest.raises(TopologyError):
            small_physical.nearest(small_physical.graph.nodes()[0], [])

    def test_pick_overlay_nodes_are_stubs(self, small_physical):
        picks = small_physical.pick_overlay_nodes(30, seed=1)
        stub_set = set(small_physical.topology.stub_nodes)
        assert len(picks) == 30
        assert len(set(picks)) == 30
        assert all(p in stub_set for p in picks)

    def test_pick_too_many_raises(self, small_physical):
        with pytest.raises(TopologyError):
            small_physical.pick_overlay_nodes(10**6)

    def test_route_endpoints_and_delay(self, small_physical):
        nodes = small_physical.graph.nodes()
        u, v = nodes[0], nodes[70]
        route = small_physical.route(u, v)
        assert route[0] == u and route[-1] == v
        total = sum(
            small_physical.graph.weight(a, b) for a, b in zip(route, route[1:])
        )
        assert total == pytest.approx(small_physical.delay(u, v))

    def test_route_to_self(self, small_physical):
        node = small_physical.graph.nodes()[0]
        assert small_physical.route(node, node) == [node]
