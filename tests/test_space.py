"""Tests for CoordinateSpace."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coords import CoordinateSpace
from repro.util.errors import EmbeddingError


@pytest.fixture
def unit_square():
    return CoordinateSpace(
        {"a": (0.0, 0.0), "b": (1.0, 0.0), "c": (1.0, 1.0), "d": (0.0, 1.0)}
    )


class TestBasics:
    def test_dimension(self, unit_square):
        assert unit_square.dimension == 2

    def test_len_and_contains(self, unit_square):
        assert len(unit_square) == 4
        assert "a" in unit_square
        assert "zzz" not in unit_square

    def test_distance(self, unit_square):
        assert unit_square.distance("a", "c") == pytest.approx(math.sqrt(2))

    def test_distance_to_self(self, unit_square):
        assert unit_square.distance("a", "a") == 0.0

    def test_unknown_node_raises(self, unit_square):
        with pytest.raises(EmbeddingError):
            unit_square.distance("a", "zzz")

    def test_empty_rejected(self):
        with pytest.raises(EmbeddingError):
            CoordinateSpace({})

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(EmbeddingError):
            CoordinateSpace({"a": (0.0,), "b": (0.0, 1.0)})

    def test_zero_dimension_rejected(self):
        with pytest.raises(EmbeddingError):
            CoordinateSpace({"a": ()})


class TestMatrices:
    def test_array_order(self, unit_square):
        arr = unit_square.array(["b", "a"])
        assert arr.tolist() == [[1.0, 0.0], [0.0, 0.0]]

    def test_distance_matrix(self, unit_square):
        nodes = ["a", "b", "c", "d"]
        m = unit_square.distance_matrix(nodes)
        assert m.shape == (4, 4)
        assert np.allclose(m, m.T)
        assert m[0, 2] == pytest.approx(math.sqrt(2))
        assert np.all(np.diag(m) == 0)


class TestDerivedSpaces:
    def test_restrict(self, unit_square):
        sub = unit_square.restrict(["a", "b"])
        assert len(sub) == 2
        assert sub.distance("a", "b") == 1.0

    def test_restrict_unknown_raises(self, unit_square):
        with pytest.raises(EmbeddingError):
            unit_square.restrict(["a", "nope"])

    def test_merged_with(self, unit_square):
        merged = unit_square.merged_with({"e": (2.0, 0.0)})
        assert len(merged) == 5
        assert merged.distance("b", "e") == 1.0
        # original untouched
        assert "e" not in unit_square


class TestQueries:
    def test_nearest_excludes_self(self, unit_square):
        assert unit_square.nearest("a", ["a", "b", "c"]) == "b"

    def test_nearest_no_candidates_raises(self, unit_square):
        with pytest.raises(EmbeddingError):
            unit_square.nearest("a", ["a"])

    def test_closest_pair_simple(self, unit_square):
        a, b, d = unit_square.closest_pair(["a", "d"], ["b", "c"])
        assert (a, b) in {("a", "b"), ("d", "c")}
        assert d == pytest.approx(1.0)

    def test_closest_pair_empty_raises(self, unit_square):
        with pytest.raises(EmbeddingError):
            unit_square.closest_pair([], ["a"])

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(st.floats(-10, 10), st.floats(-10, 10)), min_size=1, max_size=8),
        st.lists(st.tuples(st.floats(-10, 10), st.floats(-10, 10)), min_size=1, max_size=8),
    )
    def test_closest_pair_matches_bruteforce(self, pts_a, pts_b):
        """Property: vectorised closest_pair equals the O(n*m) scan."""
        coords = {}
        group_a, group_b = [], []
        for i, p in enumerate(pts_a):
            coords[f"a{i}"] = p
            group_a.append(f"a{i}")
        for i, p in enumerate(pts_b):
            coords[f"b{i}"] = p
            group_b.append(f"b{i}")
        space = CoordinateSpace(coords)
        _, _, d = space.closest_pair(group_a, group_b)
        expected = min(
            space.distance(u, v) for u in group_a for v in group_b
        )
        assert d == pytest.approx(expected)
