"""Tests for catalogs, service graphs, requests, and placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.services import (
    ServiceCatalog,
    ServiceGraph,
    ServiceRequest,
    aggregate_capability,
    branching_graph,
    generic_catalog,
    install_services,
    linear_graph,
    multimedia_catalog,
    providers_of,
    scaled_catalog,
    web_catalog,
)
from repro.util.errors import ServiceModelError


class TestCatalog:
    def test_generic_names(self):
        catalog = generic_catalog(3)
        assert list(catalog) == ["s0", "s1", "s2"]
        assert len(catalog) == 3

    def test_contains(self):
        catalog = generic_catalog(2)
        assert "s0" in catalog
        assert "s9" not in catalog

    def test_empty_rejected(self):
        with pytest.raises(ServiceModelError):
            generic_catalog(0)

    def test_duplicates_rejected(self):
        with pytest.raises(ServiceModelError):
            ServiceCatalog(names=["a", "a"])

    def test_descriptions(self):
        catalog = multimedia_catalog()
        assert "watermark" in catalog
        assert "copyright" in catalog.describe("watermark")

    def test_describe_unknown_raises(self):
        with pytest.raises(ServiceModelError):
            multimedia_catalog().describe("nope")

    def test_description_for_unknown_service_rejected(self):
        with pytest.raises(ServiceModelError):
            ServiceCatalog(names=["a"], descriptions={"b": "?"})

    def test_web_catalog_nonempty(self):
        assert len(web_catalog()) >= 4

    def test_scaled_catalog_scales(self):
        small = scaled_catalog(100)
        large = scaled_catalog(1000)
        assert len(large) > len(small)

    def test_scaled_catalog_instance_target(self):
        catalog = scaled_catalog(800, services_per_proxy_mean=7, instances_per_service=8)
        assert len(catalog) == round(800 * 7 / 8)


class TestLinearGraph:
    def test_chain_structure(self):
        sg = linear_graph(["a", "b", "c"])
        assert sg.slot_count == 3
        assert sg.is_linear
        assert sg.source_slots() == [0]
        assert sg.sink_slots() == [2]
        assert sg.topological_order() == [0, 1, 2]

    def test_single_service(self):
        sg = linear_graph(["a"])
        assert sg.is_linear
        assert sg.source_slots() == sg.sink_slots() == [0]

    def test_repeated_service_allowed(self):
        """The MPEG example compresses twice — same name, distinct slots."""
        sg = linear_graph(["compress", "mix", "compress"])
        assert sg.slot_count == 3
        assert sg.service_of(0) == sg.service_of(2) == "compress"

    def test_empty_rejected(self):
        with pytest.raises(ServiceModelError):
            linear_graph([])

    def test_single_configuration(self):
        sg = linear_graph(["a", "b"])
        assert sg.configurations() == [[0, 1]]


class TestServiceGraphValidation:
    def test_cycle_rejected(self):
        with pytest.raises(ServiceModelError):
            ServiceGraph(services={0: "a", 1: "b"}, edges={(0, 1), (1, 0)})

    def test_self_edge_rejected(self):
        with pytest.raises(ServiceModelError):
            ServiceGraph(services={0: "a"}, edges={(0, 0)})

    def test_unknown_slot_edge_rejected(self):
        with pytest.raises(ServiceModelError):
            ServiceGraph(services={0: "a"}, edges={(0, 5)})

    def test_empty_rejected(self):
        with pytest.raises(ServiceModelError):
            ServiceGraph(services={})

    def test_unknown_slot_service_lookup(self):
        sg = linear_graph(["a"])
        with pytest.raises(ServiceModelError):
            sg.service_of(99)


class TestBranchingGraph:
    def test_figure_2b_shape(self):
        """Two alternative heads merging into a shared tail."""
        sg = branching_graph(chains=[["s0"], ["s3"]], tail=["s1", "s2"])
        assert not sg.is_linear
        assert len(sg.source_slots()) == 2
        assert len(sg.sink_slots()) == 1
        configs = sg.configurations()
        names = [[sg.service_of(s) for s in c] for c in configs]
        assert ["s0", "s1", "s2"] in names
        assert ["s3", "s1", "s2"] in names

    def test_skip_edge_configuration(self):
        """Figure 2(b) also allows s3 -> s2 directly."""
        sg = branching_graph(chains=[["s0"], ["s3"]], tail=["s1", "s2"])
        # add the skip edge s3 -> s2 (slot ids: s0=0, s3=1, s1=2, s2=3)
        sg2 = ServiceGraph(
            services=dict(sg.services), edges=set(sg.edges) | {(1, 3)}
        )
        names = [[sg2.service_of(s) for s in c] for c in sg2.configurations()]
        assert ["s3", "s2"] in names
        assert len(names) == 3

    def test_empty_chain_rejected(self):
        with pytest.raises(ServiceModelError):
            branching_graph(chains=[[]])

    def test_no_chains_rejected(self):
        with pytest.raises(ServiceModelError):
            branching_graph(chains=[])

    def test_is_configuration(self):
        sg = branching_graph(chains=[["a"], ["b"]], tail=["c"])
        assert sg.is_configuration([0, 2])
        assert sg.is_configuration([1, 2])
        assert not sg.is_configuration([0, 1])
        assert not sg.is_configuration([2])
        assert not sg.is_configuration([])


class TestRequest:
    def test_roundtrip(self):
        sg = linear_graph(["a", "b"])
        request = ServiceRequest(1, sg, 2)
        assert request.length == 2
        assert "a" in repr(request)

    def test_none_endpoint_rejected(self):
        with pytest.raises(ServiceModelError):
            ServiceRequest(None, linear_graph(["a"]), 2)


class TestPlacement:
    def test_per_proxy_counts_in_range(self):
        catalog = generic_catalog(30)
        placement = install_services(range(20), catalog, seed=1)
        for services in placement.values():
            assert 4 <= len(services) <= 10

    def test_full_catalog_coverage(self):
        catalog = generic_catalog(50)
        placement = install_services(range(10), catalog, min_per_proxy=2,
                                     max_per_proxy=4, seed=1)
        union = set()
        for services in placement.values():
            union |= services
        assert union == set(catalog.names)

    def test_deterministic_for_seed(self):
        catalog = generic_catalog(30)
        a = install_services(range(10), catalog, seed=5)
        b = install_services(range(10), catalog, seed=5)
        assert a == b

    def test_bad_bounds_rejected(self):
        catalog = generic_catalog(30)
        with pytest.raises(ServiceModelError):
            install_services(range(5), catalog, min_per_proxy=5, max_per_proxy=2)

    def test_max_exceeding_catalog_rejected(self):
        catalog = generic_catalog(3)
        with pytest.raises(ServiceModelError):
            install_services(range(5), catalog, max_per_proxy=10)

    def test_empty_proxies_rejected(self):
        with pytest.raises(ServiceModelError):
            install_services([], generic_catalog(5))

    def test_providers_of(self):
        placement = {1: frozenset({"a"}), 2: frozenset({"a", "b"}), 3: frozenset({"b"})}
        assert providers_of(placement, "a") == [1, 2]
        assert providers_of(placement, "zzz") == []

    def test_aggregate_capability_is_union(self):
        placement = {1: frozenset({"a"}), 2: frozenset({"b"})}
        assert aggregate_capability(placement, [1, 2]) == frozenset({"a", "b"})

    def test_aggregate_unknown_proxy_raises(self):
        with pytest.raises(ServiceModelError):
            aggregate_capability({1: frozenset()}, [1, 99])


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 20), st.data())
def test_configurations_are_valid_paths(n, data):
    """Property: every enumerated configuration passes is_configuration."""
    # build a random DAG over n slots with edges only forward
    edges = set()
    for a in range(n):
        for b in range(a + 1, n):
            if data.draw(st.booleans(), label=f"edge{a}-{b}"):
                edges.add((a, b))
    sg = ServiceGraph(services={i: f"s{i}" for i in range(n)}, edges=edges)
    try:
        configs = sg.configurations(limit=5000)
    except ServiceModelError:
        # dense DAGs legitimately exceed the enumeration guard — that is the
        # guard doing its job, not a correctness failure
        return
    assert configs  # at least one source-sink path always exists
    for config in configs:
        assert sg.is_configuration(config)
