"""Tests for the columnar overlay state (struct-of-arrays snapshot)."""

import numpy as np
import pytest

from repro.overlay.hfc import HFCTopology
from repro.routing import HierarchicalRouter, validate_path
from repro.routing.batch import query_tables
from repro.state import ColumnarOverlayState
from repro.util.errors import StateError


@pytest.fixture(scope="module")
def state(framework):
    return framework.columnar


class TestShape:
    def test_build_attaches_state(self, framework, state):
        assert framework.hfc.columnar is state

    def test_dimensions(self, framework, state):
        assert state.size == len(framework.overlay.proxies)
        assert state.dimension == framework.space.dimension
        assert state.cluster_count == framework.clustering.cluster_count

    def test_validate_passes(self, state):
        state.validate()

    def test_validate_rejects_bad_labels(self, framework):
        broken = ColumnarOverlayState.from_framework(framework)
        broken.labels = broken.labels.copy()
        broken.labels[0] = broken.cluster_count + 5
        with pytest.raises(StateError):
            broken.validate()

    def test_validate_rejects_short_ptr(self, framework):
        broken = ColumnarOverlayState.from_framework(framework)
        broken.cluster_ptr = broken.cluster_ptr.copy()
        broken.cluster_ptr[-1] = broken.size - 1
        with pytest.raises(StateError):
            broken.validate()


class TestAccessors:
    def test_row_round_trip(self, framework, state):
        for proxy in framework.overlay.proxies:
            assert int(state.proxies[state.row_of(proxy)]) == proxy

    def test_unknown_proxy_rejected(self, state):
        with pytest.raises(StateError):
            state.row_of(-12345)

    def test_members_preserve_clustering_order(self, framework, state):
        for cid in range(state.cluster_count):
            assert state.members(cid) == list(framework.clustering.members(cid))

    def test_borders_dict_round_trip(self, framework, state):
        assert state.borders_dict() == framework.hfc.borders

    def test_placement_round_trip(self, framework, state):
        assert state.placement_dict() == framework.overlay.placement

    def test_cluster_block_matches_space(self, framework, state):
        for cid in range(state.cluster_count):
            block = state.cluster_block(cid)
            expected = framework.space.array(framework.clustering.members(cid))
            assert np.array_equal(block, expected)


class TestViews:
    def test_space_view_is_zero_copy(self, state):
        space = state.space_view()
        assert np.shares_memory(space._stacked, state.coords)

    def test_space_view_coordinates_exact(self, framework, state):
        space = state.space_view()
        for proxy in framework.overlay.proxies:
            assert space.coordinate(proxy) == framework.space.coordinate(proxy)

    def test_clustering_view_round_trip(self, framework, state):
        view = state.clustering_view()
        assert view.labels == framework.clustering.labels
        assert view.clusters == framework.clustering.clusters

    def test_hfc_view_routes_identically(self, framework, state):
        hfc = state.hfc_view(framework.physical)
        route_a, true_a = framework.hfc.routing_matrices()
        route_b, true_b = hfc.routing_matrices()
        assert np.array_equal(route_a, route_b)
        assert np.array_equal(true_a, true_b)

    def test_hfc_view_paths_validate(self, framework, state):
        hfc = state.hfc_view(framework.physical)
        router = HierarchicalRouter(hfc)
        for seed in range(6):
            request = framework.random_request(seed=seed)
            path = router.route(request)
            validate_path(path, request, hfc.overlay)


class TestQueryTables:
    def test_matches_object_graph_builder(self, framework, state):
        # A bare topology (no columnar attachment) exercises the fallback.
        bare = HFCTopology(
            overlay=framework.overlay,
            clustering=framework.clustering,
            space=framework.space,
            borders=framework.hfc.borders,
        )
        obj = query_tables(bare)
        col = state.query_tables()
        assert col.cluster_count == obj.cluster_count
        assert col.border_list == obj.border_list
        assert col.border_code == obj.border_code
        assert np.array_equal(col.border_row, obj.border_row)
        assert np.array_equal(col.ext, obj.ext)
        assert np.array_equal(col.d_border, obj.d_border)

    def test_delegation_shares_one_instance(self, framework, state):
        assert query_tables(framework.hfc) is state.query_tables()


class TestFromParts:
    def test_duplicate_proxies_rejected(self, framework):
        proxies = list(framework.overlay.proxies)
        proxies[1] = proxies[0]
        with pytest.raises(StateError):
            ColumnarOverlayState.from_parts(
                proxies=proxies,
                space=framework.space,
                clustering=framework.clustering,
                borders=framework.hfc.borders,
                placement=framework.overlay.placement,
            )

    def test_partial_proxy_list_rejected(self, framework):
        with pytest.raises(StateError):
            ColumnarOverlayState.from_parts(
                proxies=list(framework.overlay.proxies)[:-1],
                space=framework.space,
                clustering=framework.clustering,
                borders=framework.hfc.borders,
                placement=framework.overlay.placement,
            )

    def test_version_recorded(self, framework):
        from repro.core.versioning import OverlayVersion

        state = ColumnarOverlayState.from_parts(
            proxies=list(framework.overlay.proxies),
            space=framework.space,
            clustering=framework.clustering,
            borders=framework.hfc.borders,
            placement=framework.overlay.placement,
            version=OverlayVersion(epoch=3, step=17),
        )
        assert state.version.epoch == 3 and state.version.step == 17
