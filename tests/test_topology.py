"""Tests for the transit-stub and Waxman topology generators."""

import pytest

from repro.graph import is_connected
from repro.netsim import TransitStubConfig, transit_stub, waxman
from repro.util.errors import TopologyError


class TestTransitStub:
    def test_node_count_matches_request(self, small_topology):
        assert small_topology.graph.node_count == 200

    def test_connected(self, small_topology):
        assert is_connected(small_topology.graph)

    def test_transit_count_from_config(self, small_topology):
        cfg = TransitStubConfig()
        expected = cfg.transit_domains * cfg.transit_nodes_per_domain
        assert len(small_topology.transit_nodes) == expected

    def test_stub_nodes_dominate(self, small_topology):
        assert len(small_topology.stub_nodes) > len(small_topology.transit_nodes) * 5

    def test_every_node_has_position_and_kind(self, small_topology):
        for node in small_topology.graph.nodes():
            assert node in small_topology.positions
            assert small_topology.node_kind[node] in ("transit", "stub")

    def test_stub_nodes_have_domains(self, small_topology):
        for node in small_topology.stub_nodes:
            assert small_topology.stub_domain[node] >= 0

    def test_positive_link_delays(self, small_topology):
        for _, _, w in small_topology.graph.edges():
            assert w > 0

    def test_deterministic_for_seed(self):
        a = transit_stub(200, seed=5)
        b = transit_stub(200, seed=5)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_different_seeds_differ(self):
        a = transit_stub(200, seed=5)
        b = transit_stub(200, seed=6)
        assert sorted(a.graph.edges()) != sorted(b.graph.edges())

    def test_too_small_budget_raises(self):
        with pytest.raises(TopologyError):
            transit_stub(20)

    @pytest.mark.parametrize("size", [150, 300, 600])
    def test_various_sizes_connected(self, size):
        topo = transit_stub(size, seed=size)
        assert topo.graph.node_count == size
        assert is_connected(topo.graph)

    def test_stub_domains_are_local(self, small_topology):
        """Stub domains should be geographically tight relative to the plane."""
        import math

        from collections import defaultdict

        domains = defaultdict(list)
        for node in small_topology.stub_nodes:
            domains[small_topology.stub_domain[node]].append(node)
        spreads = []
        for nodes in domains.values():
            if len(nodes) < 2:
                continue
            pts = [small_topology.positions[n] for n in nodes]
            cx = sum(p[0] for p in pts) / len(pts)
            cy = sum(p[1] for p in pts) / len(pts)
            spreads.append(
                max(math.dist(p, (cx, cy)) for p in pts)
            )
        # every domain should fit well inside the 1000-unit plane
        assert max(spreads) < 500


class TestWaxman:
    def test_connected_and_sized(self):
        topo = waxman(50, seed=3)
        assert topo.graph.node_count == 50
        assert is_connected(topo.graph)

    def test_all_nodes_are_stubs(self):
        topo = waxman(10, seed=3)
        assert len(topo.stub_nodes) == 10

    def test_single_node(self):
        topo = waxman(1, seed=3)
        assert topo.graph.node_count == 1

    def test_zero_nodes_rejected(self):
        with pytest.raises(TopologyError):
            waxman(0)

    def test_higher_alpha_means_denser(self):
        sparse = waxman(60, alpha=0.1, seed=4)
        dense = waxman(60, alpha=0.95, seed=4)
        assert dense.graph.edge_count > sparse.graph.edge_count
