"""Tests for the open-loop traffic engine (repro.traffic).

Covers the shared popularity sampler, arrival processes and rate shapes,
session/traffic config validation, steady-state measurement, the engine's
determinism contract (byte-identical traces for a given config + seed),
the rate-sweep saturation finder, and the sustained-load-under-faults
composition with the convergence auditor.
"""

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.experiments.workload import WorkloadConfig
from repro.faults import crash_restart_plan
from repro.traffic import (
    MMPP,
    Diurnal,
    FlashCrowd,
    Poisson,
    SessionConfig,
    SteadyStateCollector,
    TrafficConfig,
    TrafficEngine,
    quantile,
    rate_sweep,
    run_traffic_under_faults,
    traffic_proxy,
)
from repro.traffic.measure import RequestRecord
from repro.util import ReproError, TrafficError
from repro.util.sampling import PopularitySampler, zipf_weights


# -- shared sampler (satellite 1) ---------------------------------------------------


class TestPopularitySampler:
    def test_zipf_weights_shape(self):
        weights = zipf_weights(4, 1.0)
        assert weights == [1.0, 0.5, pytest.approx(1 / 3), 0.25]
        assert zipf_weights(3, 2.0)[1] == 0.25

    def test_zipf_weights_validation(self):
        with pytest.raises(ReproError):
            zipf_weights(0)
        with pytest.raises(ReproError):
            zipf_weights(5, exponent=0.0)

    def test_sampler_validation(self):
        with pytest.raises(ReproError):
            PopularitySampler([])
        with pytest.raises(ReproError):
            PopularitySampler(["a"], popularity="pareto")

    def test_uniform_mode_has_no_weights(self):
        sampler = PopularitySampler(["a", "b"], popularity="uniform")
        assert sampler.weights is None

    def test_draws_are_deterministic(self):
        sampler = PopularitySampler(list("abcdef"), popularity="zipf")
        first = [sampler.draw(random.Random(5)) for _ in range(20)]
        second = [sampler.draw(random.Random(5)) for _ in range(20)]
        assert first == second

    def test_zipf_skews_toward_head(self):
        sampler = PopularitySampler(list(range(10)), popularity="zipf", exponent=1.5)
        rng = random.Random(11)
        draws = [sampler.draw(rng) for _ in range(2000)]
        assert draws.count(0) > draws.count(9) * 3

    def test_workload_config_validation_edges(self):
        with pytest.raises(ReproError):
            WorkloadConfig(request_count=0)
        with pytest.raises(ReproError):
            WorkloadConfig(min_length=0)
        with pytest.raises(ReproError):
            WorkloadConfig(min_length=6, max_length=5)
        with pytest.raises(ReproError):
            WorkloadConfig(nonlinear_fraction=1.5)
        with pytest.raises(ReproError):
            WorkloadConfig(popularity="pareto")
        with pytest.raises(ReproError):
            WorkloadConfig(popularity="zipf", zipf_exponent=0.0)


# -- arrival processes --------------------------------------------------------------


class TestArrivals:
    def test_poisson_validation(self):
        with pytest.raises(TrafficError):
            Poisson(rate=0.0)

    def test_mmpp_validation(self):
        with pytest.raises(TrafficError):
            MMPP(rates=(0.01,))
        with pytest.raises(TrafficError):
            MMPP(rates=(0.0, 0.0))
        with pytest.raises(TrafficError):
            MMPP(mean_dwell=0.0)

    def test_shape_validation(self):
        with pytest.raises(TrafficError):
            Diurnal(period=0.0)
        with pytest.raises(TrafficError):
            FlashCrowd(ramp=3000.0, duration=4000.0)
        with pytest.raises(TrafficError):
            FlashCrowd(magnitude=0.5)

    def test_diurnal_factor_bounds(self):
        shape = Diurnal(period=1000.0, trough=0.25)
        factors = [shape.factor(t) for t in range(0, 2001, 50)]
        assert all(0.25 <= f <= 1.0 + 1e-12 for f in factors)
        assert shape.factor(0.0) == pytest.approx(0.25)
        assert shape.factor(500.0) == pytest.approx(1.0)

    def test_flash_crowd_profile(self):
        shape = FlashCrowd(start=100.0, duration=400.0, magnitude=3.0, ramp=100.0)
        assert shape.factor(50.0) == 1.0
        assert shape.factor(150.0) == pytest.approx(2.0)  # mid-ramp
        assert shape.factor(300.0) == 3.0  # plateau
        assert shape.factor(600.0) == 1.0

    def test_arrivals_are_monotone_and_deterministic(self):
        for process in (
            Poisson(rate=0.05),
            Poisson(rate=0.05, shapes=(Diurnal(period=500.0),)),
            MMPP(rates=(0.01, 0.1), mean_dwell=200.0),
        ):
            def times(seed):
                sampler = process.sampler(random.Random(seed))
                out, t = [], 0.0
                for _ in range(50):
                    t = sampler.next_after(t)
                    out.append(t)
                return out

            first = times(3)
            assert times(3) == first
            assert all(b > a for a, b in zip(first, first[1:]))
            assert times(4) != first

    def test_shaped_rate_matches_mean(self):
        # thinning against a 4x flash crowd must still produce roughly the
        # shaped mean rate, not the peak rate
        process = Poisson(
            rate=0.1,
            shapes=(FlashCrowd(start=1e9, duration=1e3, magnitude=4.0, ramp=100.0),),
        )
        sampler = process.sampler(random.Random(7))
        t, n = 0.0, 400
        for _ in range(n):
            t = sampler.next_after(t)
        assert n / t == pytest.approx(0.1, rel=0.25)


# -- config validation --------------------------------------------------------------


class TestConfigs:
    def test_session_validation(self):
        with pytest.raises(TrafficError):
            SessionConfig(mean_lifetime=0.0)
        with pytest.raises(TrafficError):
            SessionConfig(lifetime="weibull")
        with pytest.raises(TrafficError):
            SessionConfig(gap_sigma=0.0)
        with pytest.raises(TrafficError):
            SessionConfig(min_length=5, max_length=4)
        with pytest.raises(TrafficError):
            SessionConfig(popularity="pareto")

    def test_session_draws(self):
        config = SessionConfig(
            mean_lifetime=100.0, lifetime="fixed", mean_gap=25.0, cadence="fixed"
        )
        rng = random.Random(0)
        assert config.draw_lifetime(rng) == 100.0
        assert config.draw_gap(rng) == 25.0
        assert config.mean_requests() == 5.0
        assert 4 <= config.draw_length(rng) <= 10

    def test_lognormal_mean_is_calibrated(self):
        config = SessionConfig(mean_lifetime=500.0, lifetime="lognormal")
        rng = random.Random(1)
        draws = [config.draw_lifetime(rng) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(500.0, rel=0.1)

    def test_traffic_validation(self):
        with pytest.raises(TrafficError):
            TrafficConfig(duration=0.0)
        with pytest.raises(TrafficError):
            TrafficConfig(warmup=10_000.0, duration=10_000.0)
        with pytest.raises(TrafficError):
            TrafficConfig(batch_interval=0.0)
        with pytest.raises(TrafficError):
            TrafficConfig(max_in_flight=0)
        with pytest.raises(TrafficError):
            TrafficConfig(delivery="magic")


# -- measurement --------------------------------------------------------------------


class TestMeasure:
    def test_quantile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 4.0
        assert quantile(values, 0.5) == 2.5
        assert math.isnan(quantile([], 0.5))
        with pytest.raises(TrafficError):
            quantile(values, 1.5)

    def test_continuity_windows(self):
        collector = SteadyStateCollector(warmup=0.0, horizon=100.0)
        for rid, (issued, completed) in enumerate(
            [(10.0, 20.0), (30.0, None), (50.0, 60.0), (90.0, 95.0)]
        ):
            collector.request(
                RequestRecord(rid=rid, session=0, issued_at=issued, completed_at=completed)
            )
        assert collector.continuity(0.0, 40.0) == 0.5
        assert collector.continuity(40.0, 100.0) == 1.0
        assert math.isnan(collector.continuity(200.0, 300.0))

    def test_traffic_proxy_resolver(self):
        assert traffic_proxy(("traffic", 7)) == 7
        assert traffic_proxy(3) == 3
        assert traffic_proxy(("state", 4)) == ("state", 4)


# -- the engine ---------------------------------------------------------------------


QUICK = TrafficConfig(
    arrival=Poisson(rate=0.008),
    duration=4_000.0,
    warmup=800.0,
    session=SessionConfig(mean_lifetime=1_000.0, mean_gap=300.0),
)


class TestEngine:
    def test_steady_state_run(self, tiny_framework):
        engine = TrafficEngine(tiny_framework, QUICK, seed=1)
        report = engine.run()
        assert report.requests_offered > 0
        assert report.requests_completed > 0
        assert report.goodput_ratio > 0.9
        assert report.latency_p50 <= report.latency_p95 <= report.latency_p99
        assert report.in_flight_peak >= 1
        assert engine.finish() is report  # idempotent

    def test_admission_cap_rejects(self, tiny_framework):
        config = TrafficConfig(
            arrival=Poisson(rate=0.05),
            duration=3_000.0,
            warmup=500.0,
            max_in_flight=5,
            session=SessionConfig(mean_lifetime=2_000.0, mean_gap=500.0),
        )
        engine = TrafficEngine(tiny_framework, config, seed=2)
        report = engine.run()
        assert report.session_rejections > 0
        assert report.goodput_ratio < 1.0
        assert report.in_flight_peak <= 5

    def test_telemetry_counters(self, tiny_framework):
        engine = TrafficEngine(tiny_framework, QUICK, seed=3)
        report = engine.run()
        registry = engine.sim.telemetry.registry
        assert registry.total("traffic.arrivals") == report.session_arrivals
        assert registry.total("traffic.requests") == len(engine.collector.records)
        assert registry.total("traffic.completed") > 0

    def test_analytic_mode_close_to_hop_mode(self, tiny_framework):
        hop = TrafficEngine(tiny_framework, QUICK, seed=4).run()
        analytic = TrafficEngine(
            tiny_framework,
            TrafficConfig(
                arrival=QUICK.arrival,
                duration=QUICK.duration,
                warmup=QUICK.warmup,
                session=QUICK.session,
                delivery="analytic",
            ),
            seed=4,
        ).run()
        assert analytic.requests_offered == hop.requests_offered
        assert analytic.latency_p50 == pytest.approx(hop.latency_p50, rel=0.15)

    def test_double_start_raises(self, tiny_framework):
        engine = TrafficEngine(tiny_framework, QUICK, seed=5)
        engine.start()
        with pytest.raises(TrafficError):
            engine.start()

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_trace_is_byte_identical(self, tiny_framework, tmp_path_factory, seed):
        def trace_bytes(tag):
            engine = TrafficEngine(tiny_framework, QUICK, seed=seed)
            engine.run()
            path = tmp_path_factory.mktemp("traces") / f"{tag}.jsonl"
            engine.dump_trace(str(path))
            return path.read_bytes()

        assert trace_bytes("a") == trace_bytes("b")

    def test_trace_is_jsonl(self, tiny_framework, tmp_path):
        engine = TrafficEngine(tiny_framework, QUICK, seed=6)
        engine.run()
        path = tmp_path / "run.trace.jsonl"
        count = engine.dump_trace(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == count == len(engine.trace)
        events = {json.loads(line)["event"] for line in lines}
        assert {"arrival", "admit", "request", "complete"} <= events


# -- rate sweep ---------------------------------------------------------------------


class TestRateSweep:
    def test_sweep_finds_saturation(self, tiny_framework):
        config = TrafficConfig(
            arrival=Poisson(rate=0.005),
            duration=3_000.0,
            warmup=600.0,
            max_in_flight=40,
            service_time=4.0,
        )
        result = rate_sweep(
            tiny_framework, [0.005, 0.02, 0.08], config=config, seed=3
        )
        assert len(result.points) == 3
        goodputs = [p.report.goodput_ratio for p in result.points]
        assert goodputs[0] > goodputs[-1]
        assert result.saturation_rate in (0.02, 0.08)
        assert len(result.rows()) == 3

    def test_sweep_validation(self, tiny_framework):
        with pytest.raises(TrafficError):
            rate_sweep(tiny_framework, [])
        with pytest.raises(TrafficError):
            rate_sweep(tiny_framework, [0.02, 0.01])


# -- faults composition -------------------------------------------------------------


class TestUnderFaults:
    def test_crash_restart_scenario(self, tiny_framework):
        plan = crash_restart_plan(tiny_framework.hfc, seed=21)
        result = run_traffic_under_faults(
            tiny_framework,
            plan,
            config=TrafficConfig(
                arrival=Poisson(rate=0.01),
                duration=4_000.0,
                warmup=500.0,
                session=SessionConfig(mean_lifetime=1_200.0, mean_gap=300.0),
            ),
            traffic_seed=8,
        )
        assert result.passed, [c.detail for c in result.scenario.failures()]
        assert 0.0 < result.fault_continuity <= 1.0
        assert result.calm_continuity > 0.8
        payload = result.to_dict()
        assert payload["passed"] is True
        assert payload["traffic"]["requests_offered"] > 0


# -- CLI ---------------------------------------------------------------------------


class TestCli:
    def test_traffic_command(self, capsys, tmp_path):
        trace = tmp_path / "cli.trace.jsonl"
        code = main([
            "traffic", "--proxies", "30", "--rate", "0.008",
            "--duration", "3000", "--trace-out", str(trace),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "steady state" in out
        assert trace.exists()
