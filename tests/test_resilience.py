"""Tests for the resilience experiment harness."""

import pytest

from repro.experiments.resilience import render_resilience, run_resilience_experiment


@pytest.fixture(scope="module")
def rows():
    return run_resilience_experiment(
        proxy_count=40, sessions=4, packets_per_session=60, seed=11
    )


class TestResilienceExperiment:
    def test_both_policies_present(self, rows):
        assert [r.policy for r in rows] == ["no recovery", "reroute"]

    def test_recovery_helps(self, rows):
        by = {r.policy: r for r in rows}
        assert (
            by["reroute"].delivery_rate.mean
            >= by["no recovery"].delivery_rate.mean
        )

    def test_recovery_latency_reported_only_for_reroute(self, rows):
        by = {r.policy: r for r in rows}
        assert by["no recovery"].recovery_latency is None
        # rerouting sessions should record at least some recoveries
        assert by["reroute"].recovery_latency is not None

    def test_rates_are_probabilities(self, rows):
        for row in rows:
            assert 0.0 <= row.delivery_rate.mean <= 1.0

    def test_render(self, rows):
        text = render_resilience(rows)
        assert "delivery rate" in text
        assert "reroute" in text
