"""Tests for service multicast trees."""

import random

import pytest

from repro.multicast import (
    MulticastRequest,
    build_service_tree,
    unicast_baseline_cost,
)
from repro.routing import HierarchicalRouter, validate_path
from repro.services import ServiceRequest, linear_graph
from repro.util.errors import RoutingError


@pytest.fixture(scope="module")
def router(framework):
    return HierarchicalRouter(framework.hfc)


def make_request(framework, rng, dest_count=5, length=4):
    proxies = framework.overlay.proxies
    picked = rng.sample(proxies, dest_count + 1)
    names = [rng.choice(list(framework.catalog.names)) for _ in range(length)]
    return MulticastRequest(
        source_proxy=picked[0],
        service_graph=linear_graph(names),
        destinations=tuple(picked[1:]),
    )


class TestRequestValidation:
    def test_needs_destinations(self, framework):
        with pytest.raises(RoutingError):
            MulticastRequest(1, linear_graph(["a"]), ())

    def test_duplicate_destinations_rejected(self, framework):
        with pytest.raises(RoutingError):
            MulticastRequest(1, linear_graph(["a"]), (2, 2))

    def test_source_as_destination_rejected(self, framework):
        with pytest.raises(RoutingError):
            MulticastRequest(1, linear_graph(["a"]), (1, 2))


class TestTreeConstruction:
    def test_every_destination_served_validly(self, framework, router):
        rng = random.Random(91)
        for _ in range(5):
            request = make_request(framework, rng)
            tree = build_service_tree(router, request)
            for destination in request.destinations:
                path = tree.path_to(destination)
                unicast = ServiceRequest(
                    request.source_proxy, request.service_graph, destination
                )
                validate_path(path, unicast, framework.overlay)

    def test_chain_ends_at_last_service(self, framework, router):
        rng = random.Random(92)
        request = make_request(framework, rng)
        tree = build_service_tree(router, request)
        assert tree.chain.hops[-1].service is not None
        assert tree.tail == tree.chain.hops[-1].proxy

    def test_unknown_destination_rejected(self, framework, router):
        rng = random.Random(93)
        request = make_request(framework, rng)
        tree = build_service_tree(router, request)
        with pytest.raises(RoutingError):
            tree.path_to(-999)

    def test_tree_cheaper_than_unicast_for_many_destinations(
        self, framework, router
    ):
        """With enough destinations the shared chain + tree must beat per-
        destination unicast on total cost (services are paid once)."""
        rng = random.Random(94)
        wins = 0
        for _ in range(5):
            request = make_request(framework, rng, dest_count=8, length=6)
            tree = build_service_tree(router, request)
            tree_cost = tree.total_cost(framework.overlay)
            unicast_cost = unicast_baseline_cost(
                router, request, framework.overlay
            )
            if tree_cost < unicast_cost:
                wins += 1
        assert wins >= 4  # allow one unlucky draw

    def test_single_destination_tree_close_to_unicast(self, framework, router):
        """With one destination the tree degenerates to (chain + branch) —
        within the anchor search's reach of the unicast path."""
        rng = random.Random(95)
        request = make_request(framework, rng, dest_count=1)
        tree = build_service_tree(router, request)
        unicast_cost = unicast_baseline_cost(router, request, framework.overlay)
        assert tree.total_cost(framework.overlay) <= unicast_cost * 1.5

    def test_more_anchors_never_worse_estimate(self, framework, router):
        """Widening the anchor search can only improve the chosen tree's
        estimated cost (it is a min over a superset)."""
        from repro.multicast.tree import _estimated_tree_cost

        rng = random.Random(96)
        request = make_request(framework, rng, dest_count=6)
        narrow = build_service_tree(router, request, anchor_candidates=1)
        wide = build_service_tree(router, request, anchor_candidates=None)
        space = framework.space
        assert _estimated_tree_cost(space, wide.chain, wide) <= (
            _estimated_tree_cost(space, narrow.chain, narrow) + 1e-9
        )

    def test_branch_of_covers_all_destinations(self, framework, router):
        rng = random.Random(97)
        request = make_request(framework, rng, dest_count=6)
        tree = build_service_tree(router, request)
        assert set(tree.branch_of) == set(request.destinations)
        for destination, branch in tree.branch_of.items():
            assert branch[0] == tree.tail or branch == [tree.tail]
            assert branch[-1] == destination or destination == tree.tail
