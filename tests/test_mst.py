"""Tests for union-find and the three MST implementations."""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, UnionFind, euclidean_mst, kruskal_mst, prim_mst
from repro.graph.components import is_connected
from repro.util.errors import GraphError


class TestUnionFind:
    def test_singletons_start_disjoint(self):
        uf = UnionFind([1, 2, 3])
        assert not uf.connected(1, 2)

    def test_union_connects(self):
        uf = UnionFind([1, 2])
        assert uf.union(1, 2) is True
        assert uf.connected(1, 2)

    def test_union_already_merged_returns_false(self):
        uf = UnionFind([1, 2])
        uf.union(1, 2)
        assert uf.union(1, 2) is False

    def test_transitivity(self):
        uf = UnionFind([1, 2, 3])
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.connected(1, 3)

    def test_find_unknown_raises(self):
        uf = UnionFind()
        with pytest.raises(GraphError):
            uf.find("nope")

    def test_groups(self):
        uf = UnionFind([1, 2, 3, 4])
        uf.union(1, 2)
        uf.union(3, 4)
        groups = {frozenset(g) for g in uf.groups()}
        assert groups == {frozenset({1, 2}), frozenset({3, 4})}

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add(1)
        uf.add(1)
        assert uf.find(1) == 1


def square_graph():
    g = Graph()
    g.add_edge("a", "b", 1.0)
    g.add_edge("b", "c", 2.0)
    g.add_edge("c", "d", 3.0)
    g.add_edge("d", "a", 4.0)
    g.add_edge("a", "c", 10.0)
    return g


class TestKruskalPrim:
    def test_tree_edge_count(self):
        tree = kruskal_mst(square_graph())
        assert tree.edge_count == 3

    def test_known_mst_weight(self):
        assert kruskal_mst(square_graph()).total_weight() == pytest.approx(6.0)
        assert prim_mst(square_graph()).total_weight() == pytest.approx(6.0)

    def test_kruskal_handles_forest(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        g.add_edge(3, 4, 1.0)
        forest = kruskal_mst(g)
        assert forest.edge_count == 2
        assert not is_connected(forest)

    def test_prim_rejects_disconnected(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        g.add_node(3)
        with pytest.raises(GraphError):
            prim_mst(g)

    def test_empty_graph(self):
        assert kruskal_mst(Graph()).node_count == 0
        assert prim_mst(Graph()).node_count == 0


@st.composite
def random_connected_graph(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    g = Graph()
    g.add_nodes(range(n))
    # spanning chain guarantees connectivity
    for i in range(1, n):
        g.add_edge(i - 1, i, draw(st.floats(0.1, 10.0)))
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1), st.floats(0.1, 10.0)),
            max_size=20,
        )
    )
    for u, v, w in extra:
        if u != v:
            g.add_edge(u, v, w)
    return g


@settings(max_examples=50, deadline=None)
@given(random_connected_graph())
def test_mst_weight_matches_networkx(g):
    """Property: Kruskal and Prim match networkx's MST weight."""
    nxg = nx.Graph()
    for u, v, w in g.edges():
        nxg.add_edge(u, v, weight=w)
    expected = sum(d["weight"] for _, _, d in nx.minimum_spanning_edges(nxg, data=True))
    assert kruskal_mst(g).total_weight() == pytest.approx(expected)
    assert prim_mst(g).total_weight() == pytest.approx(expected)


class TestEuclideanMst:
    def test_empty_and_single(self):
        assert euclidean_mst(np.zeros((0, 2))) == []
        assert euclidean_mst(np.zeros((1, 2))) == []

    def test_two_points(self):
        edges = euclidean_mst(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert len(edges) == 1
        assert edges[0][2] == pytest.approx(5.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(GraphError):
            euclidean_mst(np.zeros(5))

    def test_collinear_points_chain(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
        edges = euclidean_mst(pts)
        assert len(edges) == 3
        assert sum(w for _, _, w in edges) == pytest.approx(3.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
            min_size=2,
            max_size=25,
        )
    )
    def test_matches_explicit_complete_graph_mst(self, points):
        """Property: vectorised Prim equals Kruskal on the complete graph."""
        pts = np.array(points)
        edges = euclidean_mst(pts)
        total = sum(w for _, _, w in edges)

        g = Graph()
        g.add_nodes(range(len(points)))
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                g.add_edge(i, j, math.dist(points[i], points[j]))
        expected = kruskal_mst(g).total_weight()
        assert total == pytest.approx(expected, abs=1e-9)
