"""Tests for the dynamic-membership extension (joins, leaves, restructuring)."""

import pytest

from repro.membership import DynamicOverlay, run_churn_session
from repro.routing import HierarchicalRouter, validate_path
from repro.services import ServiceRequest, linear_graph
from repro.util.errors import MembershipError


@pytest.fixture
def dyn(framework):
    return DynamicOverlay(framework, restructure_tolerance=None)


def free_stub(framework, dyn):
    used = set(dyn.proxies)
    return next(s for s in framework.physical.topology.stub_nodes if s not in used)


class TestJoin:
    def test_join_adds_member(self, framework, dyn):
        router_id = free_stub(framework, dyn)
        before = dyn.size
        dyn.join(router_id, frozenset({"s0", "s1"}))
        assert dyn.size == before + 1
        assert router_id in dyn.proxies

    def test_join_assigns_nearest_cluster(self, framework, dyn):
        router_id = free_stub(framework, dyn)
        dyn.join(router_id, frozenset({"s0"}))
        cid = dyn.clustering.cluster_of(router_id)
        nearest = dyn.space.nearest(router_id, [p for p in dyn.proxies if p != router_id])
        assert cid == dyn.clustering.cluster_of(nearest)

    def test_join_duplicate_rejected(self, framework, dyn):
        existing = dyn.proxies[0]
        with pytest.raises(MembershipError):
            dyn.join(existing, frozenset({"s0"}))

    def test_join_updates_placement_and_space(self, framework, dyn):
        router_id = free_stub(framework, dyn)
        dyn.join(router_id, frozenset({"zzz"}))
        assert dyn.overlay.placement[router_id] == frozenset({"zzz"})
        assert router_id in dyn.space

    def test_join_recorded_in_history(self, framework, dyn):
        router_id = free_stub(framework, dyn)
        dyn.join(router_id, frozenset({"s0"}))
        assert dyn.history[-1].kind == "join"
        assert dyn.history[-1].proxy == router_id

    def test_joined_proxy_is_routable(self, framework, dyn):
        """A joined proxy's unique service must become reachable."""
        router_id = free_stub(framework, dyn)
        dyn.join(router_id, frozenset({"unique-new-service"}))
        router = HierarchicalRouter(dyn.hfc)
        others = [p for p in dyn.proxies if p != router_id]
        request = ServiceRequest(
            others[0], linear_graph(["unique-new-service"]), others[1]
        )
        path = router.route(request)
        validate_path(path, request, dyn.overlay)
        assert any(h.proxy == router_id for h in path.service_hops())


class TestLeave:
    def test_leave_removes_member(self, framework, dyn):
        victim = dyn.proxies[0]
        before = dyn.size
        dyn.leave(victim)
        assert dyn.size == before - 1
        assert victim not in dyn.proxies

    def test_leave_unknown_rejected(self, dyn):
        with pytest.raises(MembershipError):
            dyn.leave(-999)

    def test_leave_border_reselects(self, framework, dyn):
        """Removing a border proxy must yield a consistent new HFC."""
        border = dyn.hfc.all_border_nodes()[0]
        dyn.leave(border)
        k = dyn.hfc.cluster_count
        for i in range(k):
            for j in range(k):
                if i != j:
                    b = dyn.hfc.border(i, j)
                    assert b != border
                    assert dyn.hfc.cluster_of(b) == i

    def test_last_members_leave_drops_cluster(self, framework, dyn):
        """Draining a whole cluster compacts cluster ids."""
        smallest = min(dyn.clustering.clusters, key=len)
        count_before = dyn.clustering.cluster_count
        for proxy in list(smallest):
            dyn.leave(proxy)
        assert dyn.clustering.cluster_count == count_before - 1

    def test_cannot_shrink_below_two(self, framework):
        dyn = DynamicOverlay(framework, restructure_tolerance=None)
        for proxy in list(dyn.proxies)[:-2]:
            dyn.leave(proxy)
        with pytest.raises(MembershipError):
            dyn.leave(dyn.proxies[0])


class TestRestructure:
    def test_manual_restructure_matches_fresh_quality(self, framework, dyn):
        dyn.restructure()
        assert dyn.quality() == pytest.approx(dyn.fresh_quality(), rel=1e-6)

    def test_restructure_recorded(self, framework, dyn):
        dyn.restructure()
        assert dyn.history[-1].kind == "restructure"

    def test_auto_restructure_triggers(self, framework):
        """With a tolerance, churn sessions must keep quality near fresh."""
        dyn = run_churn_session(
            framework, events=30, seed=4, restructure_tolerance=0.7
        )
        q, fresh = dyn.quality(), dyn.fresh_quality()
        if q == q and fresh == fresh and fresh != float("inf"):  # NaN/inf guard
            assert q >= 0.7 * fresh - 1e-6


class TestVersioning:
    def test_incremental_is_the_default(self, dyn):
        assert dyn.incremental is True

    def test_join_and_leave_bump_step(self, framework, dyn):
        v0 = dyn.version
        router_id = free_stub(framework, dyn)
        dyn.join(router_id, frozenset({"s0"}))
        assert dyn.version == v0.bump()
        dyn.leave(router_id)
        assert dyn.version == v0.bump().bump()

    def test_restructure_bumps_epoch(self, dyn):
        epoch = dyn.version.epoch
        dyn.restructure()
        assert dyn.version.epoch == epoch + 1
        assert dyn.version.step == 0

    def test_notifier_fires_per_event(self, framework, dyn):
        seen = []
        dyn.notifier.subscribe(
            lambda version, **info: seen.append((version, info["kind"]))
        )
        router_id = free_stub(framework, dyn)
        dyn.join(router_id, frozenset({"s0"}))
        dyn.leave(router_id)
        assert [kind for _, kind in seen] == ["join", "leave"]
        assert seen[0][0] < seen[1][0]

    def test_full_mode_produces_same_topology(self, framework):
        inc = DynamicOverlay(framework, restructure_tolerance=None)
        full = DynamicOverlay(
            framework, restructure_tolerance=None, incremental=False
        )
        victim = inc.hfc.all_border_nodes()[0]
        inc.leave(victim)
        full.leave(victim)
        assert inc.hfc.borders == full.hfc.borders

    def test_quality_tracking_can_be_disabled(self, framework):
        dyn = DynamicOverlay(
            framework, restructure_tolerance=None, track_quality=False
        )
        dyn.leave(dyn.proxies[0])
        assert dyn.history[-1].quality_after is None

    def test_tolerates_missing_telemetry(self, framework):
        dyn = DynamicOverlay(framework, restructure_tolerance=None)
        dyn.telemetry = None  # e.g. a stripped embedded deployment
        dyn.leave(dyn.proxies[0])  # must not raise
        assert dyn.history[-1].kind == "leave"


class TestChurnSession:
    def test_history_populated(self, framework):
        dyn = run_churn_session(framework, events=20, seed=3,
                                restructure_tolerance=None)
        assert len(dyn.history) == 20

    def test_routing_still_works_after_churn(self, framework):
        dyn = run_churn_session(framework, events=25, seed=5,
                                restructure_tolerance=0.7)
        router = HierarchicalRouter(dyn.hfc)
        import random

        rng = random.Random(11)
        for _ in range(5):
            src, dst = rng.sample(dyn.proxies, 2)
            service_union = set()
            for p in dyn.proxies:
                service_union |= dyn.overlay.placement[p]
            services = rng.sample(sorted(service_union), 3)
            request = ServiceRequest(src, linear_graph(services), dst)
            path = router.route(request)
            validate_path(path, request, dyn.overlay)

    def test_framework_untouched(self, framework):
        before_proxies = list(framework.overlay.proxies)
        before_labels = dict(framework.clustering.labels)
        run_churn_session(framework, events=15, seed=6)
        assert framework.overlay.proxies == before_proxies
        assert framework.clustering.labels == before_labels
