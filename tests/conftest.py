"""Shared fixtures: small deterministic environments reused across tests.

Session-scoped because building a framework involves the full pipeline
(topology generation, embedding, clustering); tests must not mutate them.
"""

from __future__ import annotations

import pytest

from repro.core import FrameworkConfig, HFCFramework
from repro.netsim import PhysicalNetwork, transit_stub


@pytest.fixture(scope="session")
def small_topology():
    """A 200-router transit-stub topology (seeded)."""
    return transit_stub(200, seed=101)


@pytest.fixture(scope="session")
def small_physical(small_topology):
    """Delay oracle over the small topology, mild measurement noise."""
    return PhysicalNetwork(small_topology, noise=0.1, seed=102)


@pytest.fixture(scope="session")
def framework():
    """A fully built 80-proxy HFC framework (the workhorse fixture)."""
    return HFCFramework.build(proxy_count=80, seed=7)


@pytest.fixture(scope="session")
def tiny_framework():
    """A 30-proxy framework for tests that iterate many requests."""
    return HFCFramework.build(
        proxy_count=30,
        config=FrameworkConfig(physical_nodes=150),
        seed=9,
    )
