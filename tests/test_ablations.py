"""Tests for the ablation harnesses (A1-A7)."""

import pytest

from repro.experiments.ablations import (
    render_border_ablation,
    render_dimension_ablation,
    render_inconsistency_ablation,
    render_mesh_information_ablation,
    render_method_ablation,
    run_border_ablation,
    run_dimension_ablation,
    run_inconsistency_ablation,
    run_mesh_information_ablation,
    run_method_ablation,
)
from repro.experiments.environments import EnvironmentSpec

TINY = EnvironmentSpec(physical_nodes=150, landmarks=10, proxies=40, clients=10)


class TestDimensionAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_dimension_ablation(
            dimensions=(2, 5), requests=20, spec=TINY, seed=1
        )

    def test_row_per_dimension(self, rows):
        assert [r.dimension for r in rows] == [2, 5]

    def test_higher_dimension_more_accurate(self, rows):
        assert rows[1].median_rel_error <= rows[0].median_rel_error + 0.05

    def test_values_sane(self, rows):
        for row in rows:
            assert 0 <= row.median_rel_error < 1.5
            assert row.cluster_count >= 1
            assert row.hfc_mean_delay > 0

    def test_render(self, rows):
        text = render_dimension_ablation(rows)
        assert "median rel. err" in text


class TestInconsistencyAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_inconsistency_ablation(
            factors=(1.5, 3.0), requests=20, spec=TINY, seed=2
        )

    def test_lower_factor_no_fewer_clusters(self, rows):
        assert rows[0].cluster_count >= rows[1].cluster_count

    def test_overheads_positive(self, rows):
        for row in rows:
            assert row.coord_overhead > 0
            assert row.service_overhead > 0
            assert 0 < row.largest_fraction <= 1

    def test_render(self, rows):
        assert "factor" in render_inconsistency_ablation(rows)


class TestBorderAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_border_ablation(requests=25, spec=TINY, seed=3)

    def test_both_rules_present(self, rows):
        assert {r.rule for r in rows} == {"closest", "random"}

    def test_closest_rule_not_worse(self, rows):
        by_rule = {r.rule: r for r in rows}
        # the paper's geometric argument: closest-pair borders route better
        assert (
            by_rule["closest"].hfc_mean_delay
            <= by_rule["random"].hfc_mean_delay * 1.05
        )

    def test_loads_positive(self, rows):
        for row in rows:
            assert row.max_border_load >= 1
            assert row.mean_border_load >= 1

    def test_render(self, rows):
        assert "border rule" in render_border_ablation(rows)


class TestMethodAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_method_ablation(requests=25, spec=TINY, seed=4)

    def test_all_methods_present(self, rows):
        assert [r.method for r in rows] == ["external", "backtrack", "exact"]

    def test_backtrack_not_worse_than_external(self, rows):
        by = {r.method: r.hfc_mean_delay for r in rows}
        assert by["backtrack"] <= by["external"] * 1.05

    def test_render(self, rows):
        assert "CSP method" in render_method_ablation(rows)


class TestMeshInformationAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_mesh_information_ablation(requests=25, spec=TINY, seed=5)

    def test_both_weights_present(self, rows):
        assert {r.weight for r in rows} == {"coords", "true"}

    def test_true_information_helps_the_mesh(self, rows):
        by = {r.weight: r.mesh_mean_delay for r in rows}
        assert by["true"] <= by["coords"] * 1.05

    def test_render(self, rows):
        assert "mesh link weights" in render_mesh_information_ablation(rows)


class TestAggregationAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments.ablations import run_aggregation_ablation

        return run_aggregation_ablation(requests=25, spec=TINY, seed=6)

    def test_both_representations_present(self, rows):
        assert {r.representation for r in rows} == {
            "all borders (paper)",
            "single logical node",
        }

    def test_delays_positive(self, rows):
        assert all(r.hfc_mean_delay > 0 for r in rows)

    def test_render(self, rows):
        from repro.experiments.ablations import render_aggregation_ablation

        assert "cluster representation" in render_aggregation_ablation(rows)


class TestCentroidRouterPaths:
    def test_paths_validate(self, framework):
        from repro.routing.aggregation import CentroidAggregationRouter
        from repro.routing import validate_path

        router = CentroidAggregationRouter(framework.hfc)
        for seed in range(10):
            request = framework.random_request(seed=seed)
            path = router.route(request)
            validate_path(path, request, framework.overlay)


class TestLandmarkAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments.ablations import run_landmark_ablation

        return run_landmark_ablation(requests=20, spec=TINY, seed=7)

    def test_both_placements_present(self, rows):
        assert {r.placement for r in rows} == {"k-center", "random"}

    def test_errors_and_delays_sane(self, rows):
        for row in rows:
            assert 0 <= row.median_rel_error < 1.5
            assert row.hfc_mean_delay > 0

    def test_render(self, rows):
        from repro.experiments.ablations import render_landmark_ablation

        assert "landmark placement" in render_landmark_ablation(rows)


class TestMeshFamilyAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments.ablations import run_mesh_family_ablation

        return run_mesh_family_ablation(requests=20, spec=TINY, seed=8)

    def test_all_topologies_present(self, rows):
        assert [r.topology for r in rows] == [
            "regular mesh (paper)", "gabriel mesh", "HFC (hierarchical)",
        ]

    def test_delays_and_edges_positive(self, rows):
        for row in rows:
            assert row.mean_delay > 0
            assert row.edges > 0

    def test_render(self, rows):
        from repro.experiments.ablations import render_mesh_family_ablation

        assert "overlay topology" in render_mesh_family_ablation(rows)
