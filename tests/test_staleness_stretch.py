"""Tests for the staleness (E6) and stretch (E7) experiment harnesses."""

import pytest

from repro.experiments.environments import EnvironmentSpec
from repro.experiments.staleness import render_staleness, run_staleness_experiment
from repro.experiments.stretch import render_stretch, run_stretch_analysis
from repro.util.errors import ReproError

TINY = EnvironmentSpec(physical_nodes=150, landmarks=10, proxies=40, clients=10)


class TestStaleness:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_staleness_experiment(
            proxy_count=40, change_count=15, request_count=30, seed=3
        )

    def test_both_states_present(self, rows):
        assert [r.state for r in rows] == ["stale tables", "re-converged"]

    def test_fresh_tables_never_infeasible(self, rows):
        """Changes preserve the capability set, so fresh routing always works."""
        by = {r.state: r for r in rows}
        assert by["re-converged"].infeasible == 0
        assert by["re-converged"].routed == 30

    def test_counts_partition_requests(self, rows):
        for row in rows:
            assert row.routed + row.infeasible == 30

    def test_render(self, rows):
        assert "SCT_C state" in render_staleness(rows)


class TestStretch:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_stretch_analysis(request_count=40, spec=TINY, seed=4)

    def test_strategies_present(self, rows):
        assert [r.strategy for r in rows] == ["mesh", "hfc_agg", "hfc_full"]

    def test_stretch_at_least_one(self, rows):
        for row in rows:
            assert row.median >= 1.0 - 1e-9

    def test_percentiles_ordered(self, rows):
        for row in rows:
            assert row.median <= row.p90 <= row.p99 <= row.worst

    def test_oracle_not_allowed_as_strategy(self):
        with pytest.raises(ReproError):
            run_stretch_analysis(strategies=("oracle",), spec=TINY, seed=5)

    def test_render(self, rows):
        assert "p99" in render_stretch(rows)
