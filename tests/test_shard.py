"""Tests for the sharded event simulation (repro.netsim.shard).

The contract under test, per DESIGN §14:

* ``shards=1`` is bit-identical to the monolithic engine (same telemetry
  registry, same traces);
* results are invariant to the shard count for deterministic scenarios
  (routing results, telemetry totals, fault audit outcomes);
* the conservation ledger ``sent + duplicated == delivered + dropped +
  pending`` holds at every barrier, including under faults and churn;
* sustained churn with leaves shrinks the process registry and never
  raises StateError for in-flight messages to departed proxies (the
  pre-fix crash).
"""

import math

import numpy as np
import pytest

from repro.core import FrameworkConfig, HFCFramework
from repro.faults import crash_restart_plan, partition_heal_plan, run_fault_scenario
from repro.membership import DynamicOverlay
from repro.netsim import Message, ShardedSimulator, ShardPlan, Simulator
from repro.netsim.shard import (
    DRIVER,
    coordinate_lookahead,
    lookahead_from_matrix,
    partition_contiguous,
)
from repro.state.protocol import StateDistributionProtocol
from repro.telemetry import Telemetry
from repro.traffic.shardload import run_shard_load, synthetic_overlay
from repro.util.errors import StateError


@pytest.fixture(scope="module")
def framework():
    return HFCFramework.build(proxy_count=40, seed=5)


@pytest.fixture(scope="module")
def overlay_state():
    return synthetic_overlay(240, 6, seed=3)


class TestPartition:
    def test_boundaries_cover_all_clusters(self):
        bounds = partition_contiguous([10, 10, 10, 10], 2)
        assert bounds[0] == 0 and bounds[-1] == 4
        assert bounds == sorted(bounds)

    def test_balanced_split(self):
        assert partition_contiguous([5, 5, 5, 5], 2) == [0, 2, 4]

    def test_uneven_sizes_stay_contiguous(self):
        bounds = partition_contiguous([100, 1, 1, 1], 2)
        assert bounds == [0, 1, 4]

    def test_each_shard_gets_a_cluster(self):
        bounds = partition_contiguous([100, 1, 1], 3)
        assert bounds == [0, 1, 2, 3]

    def test_more_shards_than_clusters_rejected(self):
        with pytest.raises(StateError):
            partition_contiguous([1, 1], 3)

    def test_zero_shards_rejected(self):
        with pytest.raises(StateError):
            partition_contiguous([1, 1], 0)


class TestLookahead:
    def test_matrix_lookahead_is_cross_shard_min(self):
        delays = np.array(
            [[0.0, 1.0, 9.0], [1.0, 0.0, 7.0], [9.0, 7.0, 0.0]]
        )
        shard = np.array([0, 0, 1])
        assert lookahead_from_matrix(delays, shard) == 7.0

    def test_matrix_lookahead_single_shard_is_inf(self):
        delays = np.zeros((2, 2))
        assert lookahead_from_matrix(delays, np.array([0, 0])) == math.inf

    def test_coordinate_bound_respects_grid_gap(self, overlay_state):
        bounds = partition_contiguous(
            [int(s) for s in np.diff(overlay_state.cluster_ptr)], 2
        )
        bound = coordinate_lookahead(overlay_state, bounds)
        # grid spacing 200, radius 40: a healthy gap survives the bound
        assert 0.0 < bound <= 200.0
        # and the bound never exceeds any actual cross-shard distance
        split = bounds[1]
        cut = int(overlay_state.cluster_ptr[split])
        low, high = overlay_state.coords[:cut], overlay_state.coords[cut:]
        actual_min = float(
            np.linalg.norm(low[:, None, :] - high[None, :, :], axis=2).min()
        )
        assert bound <= actual_min


class TestPlan:
    def test_from_state_partitions_every_proxy(self, overlay_state):
        plan = ShardPlan.from_state(overlay_state, 3)
        assert plan.shards == 3
        assert sum(plan.shard_sizes()) == overlay_state.size
        assert all(size > 0 for size in plan.shard_sizes())

    def test_shard_of_tuple_addresses(self, overlay_state):
        plan = ShardPlan.from_state(overlay_state, 2)
        proxy = int(overlay_state.proxies[0])
        assert plan.shard_of(("traffic", proxy)) == plan.shard_of(proxy)
        assert plan.shard_of("not-a-proxy") == DRIVER

    def test_views_are_zero_copy(self, overlay_state):
        plan = ShardPlan.from_state(overlay_state, 2)
        for view in plan.views:
            assert np.shares_memory(view.member_rows, overlay_state.cluster_members)
            assert np.shares_memory(view.cluster_ptr, overlay_state.cluster_ptr)
            assert np.shares_memory(view.border_rows, overlay_state.border_matrix)
            assert view.coords is overlay_state.coords

    def test_views_tile_the_state(self, overlay_state):
        plan = ShardPlan.from_state(overlay_state, 3)
        rows = np.concatenate([view.member_rows for view in plan.views])
        assert np.array_equal(np.sort(rows), np.arange(overlay_state.size))

    def test_nonpositive_lookahead_rejected(self, overlay_state):
        with pytest.raises(StateError):
            ShardPlan.from_state(overlay_state, 2, lookahead=0.0)

    def test_from_framework_uses_physical_delays(self, framework):
        plan = ShardPlan.from_framework(framework, 2)
        assert 0.0 < plan.lookahead < math.inf
        # the exact minimum cross-shard physical delay, by construction
        overlay = framework.overlay
        state = framework.columnar
        matrix = overlay.true_delay_matrix()
        order = np.array([overlay.index_of(int(p)) for p in state.proxies])
        reindexed = matrix[np.ix_(order, order)]
        row_shard = np.zeros(state.size, dtype=np.int64)
        for view in plan.views:
            row_shard[view.member_rows] = view.shard
        assert plan.lookahead == lookahead_from_matrix(reindexed, row_shard)


class TestLookaheadGuard:
    def test_cross_shard_send_below_lookahead_raises(self, overlay_state):
        plan = ShardPlan.from_state(overlay_state, 2, lookahead=50.0)
        sim = ShardedSimulator(plan, telemetry=Telemetry())
        a = int(plan.views[0].proxy_ids()[0])
        b = int(plan.views[1].proxy_ids()[0])

        class Sink:
            def __init__(self, address):
                self.address = address
                self.simulator = None

            def start(self):
                pass

            def receive(self, message):
                pass

        sim.register(Sink(a))
        sim.register(Sink(b))

        def violate():
            sim.send(Message(a, b, "k", None), delay=1.0)

        # the send happens inside shard 0's window, where the guard lives
        lane = sim._lanes[plan.shard_of(a)]
        lane.schedule(10.0, violate)
        with pytest.raises(StateError, match="lookahead"):
            sim.run_until(200.0)


def _registry_snapshot(sim):
    return sim.telemetry.registry.snapshot()


def _pristine_placement(framework):
    """run_fault_scenario restarts mutate the overlay's service placement
    (the victim comes back with a rotated set); snapshot/restore it so
    back-to-back runs on one framework see identical ground truth."""
    from contextlib import contextmanager

    @contextmanager
    def _guard():
        saved = dict(framework.hfc.overlay.placement)
        try:
            yield
        finally:
            framework.hfc.overlay.placement.clear()
            framework.hfc.overlay.placement.update(saved)

    return _guard()


def _normalized(value):
    """Round floats (12 significant digits) recursively: cross-shard runs
    accumulate histogram sums in a different order, so float totals agree
    only up to summation reordering."""
    if isinstance(value, float):
        return float(f"{value:.12g}")
    if isinstance(value, dict):
        return {k: _normalized(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalized(v) for v in value]
    return value


def _scenario_digest(result):
    return {
        "passed": result.passed,
        "reconverged_at": result.reconverged_at,
        "horizon": result.horizon,
        "deadline": result.deadline,
        "counters": result.counters,
        # per-window execution order interleaves differently across shard
        # counts; the *set* of fault events is the invariant
        "trace": sorted(result.trace, key=lambda e: sorted(e.items(), key=str)),
        "checks": [check.to_dict() for check in result.checks],
    }


class TestBitIdentity:
    """shards=1 must be indistinguishable from the monolithic engine."""

    def test_protocol_registry_identical(self, framework):
        mono = Simulator(telemetry=Telemetry())
        StateDistributionProtocol(framework.hfc, seed=11, sim=mono).run(8000.0)

        plan = ShardPlan.from_framework(framework, 1)
        sharded = ShardedSimulator(plan, telemetry=Telemetry())
        StateDistributionProtocol(framework.hfc, seed=11, sim=sharded).run(8000.0)

        assert sharded.now == mono.now
        assert _registry_snapshot(sharded) == _registry_snapshot(mono)

    def test_fault_scenario_identical(self, framework):
        plan = crash_restart_plan(framework.hfc, seed=31)

        mono = Simulator(telemetry=Telemetry())
        with _pristine_placement(framework):
            base = run_fault_scenario(framework, plan, sim=mono)

        sharded = ShardedSimulator(
            ShardPlan.from_framework(framework, 1), telemetry=Telemetry()
        )
        with _pristine_placement(framework):
            other = run_fault_scenario(framework, plan, sim=sharded)

        # bit-identity: even the event-ordered audit trace matches
        assert other.trace == base.trace
        assert _scenario_digest(other) == _scenario_digest(base)
        assert _registry_snapshot(sharded) == _registry_snapshot(mono)


class TestShardInvariance:
    """Deterministic scenarios must not depend on the shard count."""

    @pytest.mark.parametrize("shards", [2, 4])
    def test_protocol_totals_invariant(self, framework, shards):
        mono = Simulator(telemetry=Telemetry())
        StateDistributionProtocol(framework.hfc, seed=11, sim=mono).run(8000.0)

        plan = ShardPlan.from_framework(framework, shards)
        sharded = ShardedSimulator(plan, telemetry=Telemetry())
        StateDistributionProtocol(framework.hfc, seed=11, sim=sharded).run(8000.0)

        assert sharded.conservation()["balanced"]
        assert _normalized(_registry_snapshot(sharded)) == _normalized(
            _registry_snapshot(mono)
        )

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("plan_builder", [crash_restart_plan, partition_heal_plan])
    def test_fault_audit_invariant(self, framework, shards, plan_builder):
        plan = plan_builder(framework.hfc)

        mono = Simulator(telemetry=Telemetry())
        with _pristine_placement(framework):
            base = run_fault_scenario(framework, plan, sim=mono)

        sharded = ShardedSimulator(
            ShardPlan.from_framework(framework, shards), telemetry=Telemetry()
        )
        with _pristine_placement(framework):
            other = run_fault_scenario(framework, plan, sim=sharded)

        assert _normalized(_scenario_digest(other)) == _normalized(
            _scenario_digest(base)
        )
        assert sharded.conservation()["balanced"]
        assert _normalized(_registry_snapshot(sharded)) == _normalized(
            _registry_snapshot(mono)
        )

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_synthetic_traffic_invariant(self, overlay_state, shards):
        result = run_shard_load(
            overlay_state, shards=shards, period=300.0, duration=1200.0, seed=3
        )
        # every issued request completes, whatever the partition
        assert result.completed_ratio == 1.0
        baseline = run_shard_load(
            overlay_state, shards=1, period=300.0, duration=1200.0, seed=3
        )
        assert result.requests == baseline.requests
        assert result.completed == baseline.completed
        assert result.hops_intra + result.hops_cross == (
            baseline.hops_intra + baseline.hops_cross
        )
        assert result.events == baseline.events


class TestWorkerMode:
    def test_worker_processes_match_in_process(self, overlay_state):
        kwargs = dict(period=300.0, duration=900.0, seed=3)
        local = run_shard_load(overlay_state, shards=2, **kwargs)
        remote = run_shard_load(overlay_state, shards=2, workers=2, **kwargs)
        assert remote.workers == 2
        assert remote.requests == local.requests
        assert remote.completed == local.completed
        assert remote.hops_intra == local.hops_intra
        assert remote.hops_cross == local.hops_cross
        assert remote.events == local.events

    def test_worker_count_must_match_shards(self, overlay_state):
        with pytest.raises(StateError, match="workers"):
            run_shard_load(
                overlay_state, shards=2, workers=3, period=300.0, duration=600.0
            )


class TestFrameworkFactory:
    def test_default_is_monolithic(self, framework):
        sim = framework.simulator()
        assert type(sim) is Simulator

    def test_sharded_when_asked(self, framework):
        sim = framework.simulator(shards=2)
        assert isinstance(sim, ShardedSimulator)
        assert sim.shards == 2

    def test_config_default_applies(self):
        fw = HFCFramework.build(
            proxy_count=30, seed=5, config=FrameworkConfig(sim_shards=2)
        )
        assert isinstance(fw.simulator(), ShardedSimulator)

    def test_shards_clamped_to_clusters(self, framework):
        sim = framework.simulator(shards=10_000)
        assert sim.shards <= framework.columnar.cluster_count


class TestChurnRegression:
    """Sustained churn with leaves: the pre-fix engine crashed here.

    Before ``Simulator.deregister``, a leave left the agent registered
    forever (``_processes`` grew without bound across sessions) and any
    fix that removed it made the next in-flight delivery raise
    StateError. Now leaves shrink the registry and in-flight messages to
    departed proxies become counted drops.
    """

    def test_leaves_shrink_registry_without_stateerror(self):
        fw = HFCFramework.build(proxy_count=40, seed=5)
        protocol = StateDistributionProtocol(
            fw.hfc, seed=9, sim=Simulator(telemetry=Telemetry())
        )
        overlay = DynamicOverlay(fw, track_quality=False)
        protocol.track_membership(overlay)

        sim = protocol.sim
        sim.run_until(1200.0)
        before = sim.process_count
        assert before == 40

        # leave proxies mid-run: broadcasts to them are already in flight
        victims = [p for p in list(protocol.states) if p != fw.overlay.proxies[0]][:6]
        for i, victim in enumerate(victims):
            overlay.leave(victim)
            sim.run_until(sim.now + 400.0)  # no StateError from stale traffic
        sim.run_until(sim.now + 2000.0)

        assert sim.process_count == before - len(victims)
        for victim in victims:
            assert not sim.is_registered(victim)
            assert victim not in protocol.states
        ledger = sim.conservation()
        assert ledger["balanced"], ledger
        departures = sim.telemetry.registry.counter("protocol.departures")
        assert departures.value == len(victims)

    def test_departed_periodics_stop(self):
        fw = HFCFramework.build(proxy_count=30, seed=5)
        protocol = StateDistributionProtocol(
            fw.hfc, seed=9, sim=Simulator(telemetry=Telemetry())
        )
        sim = protocol.sim
        sim.run_until(1500.0)
        victim = next(iter(protocol.states))
        protocol.remove_proxy(victim)
        # run long enough that a zombie periodic would certainly fire
        horizon = sim.now + 5 * protocol.aggregate_period
        sim.run_until(horizon)
        sent = sim.telemetry.registry
        # no message sent by the departed proxy after removal: its periodic
        # broadcasts stopped re-arming (owner-tagged schedule_every)
        for metric in sent.collect("sim.messages.sent"):
            pass  # counters exist; the strong check is below
        before = sim.messages_sent
        sim.run_until(horizon + 5 * protocol.aggregate_period)
        after_others = sim.messages_sent - before
        # remaining proxies keep broadcasting, so traffic continues...
        assert after_others > 0
        # ...but conservation still holds and the victim stays gone
        assert sim.conservation()["balanced"]
        assert not sim.is_registered(victim)


class TestFaultChurnConservation:
    """Property-style sweep: conservation holds under the standard fault
    matrix composed with churn-driven leaves."""

    def test_standard_matrix_with_churn(self):
        from repro.faults.scenarios import standard_fault_matrix

        fw = HFCFramework.build(proxy_count=30, seed=5)
        matrix = standard_fault_matrix(fw.hfc)
        for name, plan in sorted(matrix.items()):
            protocol = StateDistributionProtocol(
                fw.hfc,
                seed=plan.seed,
                sim=Simulator(telemetry=Telemetry()),
            )
            overlay = DynamicOverlay(fw, track_quality=False)
            protocol.track_membership(overlay)
            from repro.faults.injector import FaultInjector

            FaultInjector(plan).install(protocol.sim)
            sim = protocol.sim
            victims = iter(
                [p for p in list(protocol.states) if p != fw.overlay.proxies[0]][:3]
            )
            for t in (800.0, 2400.0, 4000.0):
                sim.run_until(t)
                victim = next(victims)
                if victim in protocol.states:
                    overlay.leave(victim)
                ledger = sim.conservation()
                assert ledger["balanced"], (name, t, ledger)
            sim.run_until(9000.0)
            ledger = sim.conservation()
            assert ledger["balanced"], (name, ledger)
