"""Tests for the command-line interface and JSON serialisation."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import (
    EnvironmentSpec,
    run_overhead_experiment,
    run_path_efficiency,
)
from repro.experiments.serialize import (
    dump_json,
    efficiency_to_dict,
    overhead_to_dict,
)
from repro.telemetry import Telemetry, use_telemetry

TINY = EnvironmentSpec(physical_nodes=150, landmarks=10, proxies=40, clients=10)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.proxies == 100
        assert args.seed == 7

    def test_fig10_strategies_flag(self):
        args = build_parser().parse_args(["fig10", "--strategies", "mesh,oracle"])
        assert args.strategies == "mesh,oracle"


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--proxies", "40", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "hierarchical" in out
        assert "oracle" in out

    def test_table1_runs(self, capsys):
        assert main(["table1", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "proxies" in out

    def test_fig9_with_json(self, capsys, tmp_path):
        target = tmp_path / "fig9.json"
        code = main([
            "fig9", "--scale", "0.12", "--topologies", "1",
            "--seed", "3", "--json", str(target),
        ])
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["figure"] == "9"
        assert len(payload["panels"]["coordinates"]) == 4

    def test_fig10_with_json(self, capsys, tmp_path):
        target = tmp_path / "fig10.json"
        code = main([
            "fig10", "--scale", "0.12", "--topologies", "1",
            "--requests", "5", "--strategies", "hfc_agg",
            "--seed", "3", "--json", str(target),
        ])
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["strategies"] == ["hfc_agg"]

    def test_protocol_runs(self, capsys):
        assert main(["protocol", "--proxies", "40", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "local_state" in out
        assert "converged" in out

    def test_protocol_with_json(self, capsys, tmp_path):
        target = tmp_path / "protocol.json"
        code = main([
            "protocol", "--proxies", "40", "--seed", "3",
            "--json", str(target),
        ])
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["messages_by_kind"]["local_state"] > 0
        assert payload["total_messages"] == sum(
            payload["messages_by_kind"].values()
        )
        assert "p95" in payload["delivery_latency"]["local_state"]


class TestSerialize:
    def test_overhead_roundtrip(self, tmp_path):
        result = run_overhead_experiment([TINY], topologies_per_size=1, seed=5)
        payload = overhead_to_dict(result)
        target = tmp_path / "o.json"
        dump_json(payload, str(target))
        loaded = json.loads(target.read_text())
        assert loaded["panels"]["service"][0]["proxies"] == 40
        assert loaded["panels"]["service"][0]["flat"] == 40.0

    def test_efficiency_roundtrip(self, tmp_path):
        result = run_path_efficiency(
            [TINY], strategies=("hfc_agg",), topologies_per_size=1,
            requests_per_topology=5, seed=6,
        )
        payload = efficiency_to_dict(result)
        target = tmp_path / "e.json"
        dump_json(payload, str(target))
        loaded = json.loads(target.read_text())
        assert loaded["points"][0]["mean_delay"]["hfc_agg"] > 0


class TestTelemetryCLI:
    """The ``telemetry`` subcommand and the shared ``--telemetry-out`` flag."""

    def test_telemetry_command_prints_metrics(self, capsys):
        with use_telemetry(Telemetry()):
            code = main([
                "telemetry", "--proxies", "40", "--requests", "6", "--seed", "3",
            ])
        assert code == 0
        out = capsys.readouterr().out
        assert "routing.requests" in out
        assert "sim.messages.delivered" in out
        assert "sim.delivery.latency" in out
        assert "spans finished" in out

    def test_telemetry_command_json_snapshot(self, capsys, tmp_path):
        target = tmp_path / "telemetry.json"
        with use_telemetry(Telemetry()):
            code = main([
                "telemetry", "--proxies", "40", "--requests", "6",
                "--seed", "3", "--json", str(target),
            ])
        assert code == 0
        payload = json.loads(target.read_text())
        names = {c["name"] for c in payload["metrics"]["counters"]}
        assert "routing.cache.hits" in names or "routing.cache.misses" in names
        assert payload["spans"]["finished"] > 0

    def test_telemetry_out_flag_on_protocol(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        with use_telemetry(Telemetry()):
            code = main([
                "protocol", "--proxies", "40", "--seed", "3",
                "--telemetry-out", str(target),
            ])
        assert code == 0
        payload = json.loads(target.read_text())
        counters = {c["name"] for c in payload["metrics"]["counters"]}
        assert "sim.messages.delivered" in counters
        histograms = {h["name"] for h in payload["metrics"]["histograms"]}
        assert "sim.delivery.latency" in histograms


class TestReportCommand:
    def test_report_runs_without_ablations(self, capsys):
        code = main([
            "report", "--scale", "0.12", "--topologies", "1",
            "--requests", "5", "--no-ablations", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig 9(a)" in out
        assert "Fig 10" in out
        assert "Ablations" not in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        code = main([
            "report", "--scale", "0.12", "--topologies", "1",
            "--requests", "5", "--no-ablations", "--seed", "3",
            "--json", str(target),
        ])
        assert code == 0
        assert "Fig 10" in target.read_text()
