"""Tests for Zahn MST clustering, quality metrics, and the k-center baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    Clustering,
    ClusteringConfig,
    cluster_nodes,
    inter_cluster_mean_distance,
    intra_cluster_mean_distance,
    kcenter_cluster,
    separation_ratio,
    silhouette_mean,
    size_statistics,
)
from repro.coords import CoordinateSpace
from repro.util.errors import ClusteringError


def blobs(centers, per_blob=6, spread=1.0, seed=0):
    """Well-separated Gaussian blobs as a CoordinateSpace."""
    rng = np.random.default_rng(seed)
    coords = {}
    for b, (cx, cy) in enumerate(centers):
        for i in range(per_blob):
            coords[f"b{b}n{i}"] = (
                cx + rng.normal(0, spread),
                cy + rng.normal(0, spread),
            )
    return CoordinateSpace(coords)


class TestConfigValidation:
    def test_factor_must_exceed_one(self):
        with pytest.raises(ClusteringError):
            ClusteringConfig(factor=1.0)

    def test_depth_validation(self):
        with pytest.raises(ClusteringError):
            ClusteringConfig(depth=0)
        ClusteringConfig(depth=None)  # whole-subtree mode is valid

    def test_combine_validation(self):
        with pytest.raises(ClusteringError):
            ClusteringConfig(combine="median")

    def test_max_clusters_validation(self):
        with pytest.raises(ClusteringError):
            ClusteringConfig(max_clusters=0)


class TestClusterDetection:
    def test_separated_blobs_found(self):
        space = blobs([(0, 0), (100, 0), (0, 100)], per_blob=8)
        clustering = cluster_nodes(space)
        assert clustering.cluster_count == 3
        # each cluster contains exactly one blob
        for members in clustering.clusters:
            prefixes = {m[:2] for m in members}
            assert len(prefixes) == 1

    def test_single_blob_stays_whole(self):
        space = blobs([(0, 0)], per_blob=12)
        clustering = cluster_nodes(space)
        assert clustering.cluster_count == 1

    def test_partition_covers_all_nodes(self):
        space = blobs([(0, 0), (50, 50)], per_blob=7)
        clustering = cluster_nodes(space)
        all_members = [m for c in clustering.clusters for m in c]
        assert sorted(all_members) == sorted(space.nodes())
        assert len(all_members) == len(set(all_members))

    def test_labels_consistent_with_clusters(self):
        space = blobs([(0, 0), (50, 50)])
        clustering = cluster_nodes(space)
        for cid, members in enumerate(clustering.clusters):
            for m in members:
                assert clustering.cluster_of(m) == cid

    def test_single_node(self):
        space = CoordinateSpace({"only": (1.0, 2.0)})
        clustering = cluster_nodes(space)
        assert clustering.cluster_count == 1
        assert clustering.clusters == [["only"]]

    def test_empty_rejected(self):
        space = CoordinateSpace({"a": (0, 0)})
        with pytest.raises(ClusteringError):
            cluster_nodes(space, nodes=[])

    def test_higher_factor_fewer_clusters(self):
        space = blobs([(0, 0), (30, 0), (60, 0), (90, 0)], per_blob=5, spread=2.0)
        low = cluster_nodes(space, config=ClusteringConfig(factor=1.5, min_cluster_size=1))
        high = cluster_nodes(space, config=ClusteringConfig(factor=6.0, min_cluster_size=1))
        assert high.cluster_count <= low.cluster_count

    def test_max_clusters_cap(self):
        space = blobs([(0, 0), (100, 0), (0, 100), (100, 100)], per_blob=5)
        capped = cluster_nodes(
            space, config=ClusteringConfig(max_clusters=2, min_cluster_size=1)
        )
        assert capped.cluster_count <= 2

    def test_min_cluster_size_merges_singletons(self):
        # two tight blobs plus one distant outlier
        space = blobs([(0, 0), (100, 100)], per_blob=6)
        space = space.merged_with({"outlier": (500.0, 500.0)})
        clustering = cluster_nodes(space, config=ClusteringConfig(min_cluster_size=2))
        assert all(len(c) >= 2 for c in clustering.clusters)

    def test_min_cluster_size_disabled_keeps_singleton(self):
        space = blobs([(0, 0), (100, 100)], per_blob=6)
        space = space.merged_with({"outlier": (500.0, 500.0)})
        clustering = cluster_nodes(space, config=ClusteringConfig(min_cluster_size=1))
        assert any(len(c) == 1 for c in clustering.clusters)

    def test_removed_edges_recorded(self):
        space = blobs([(0, 0), (100, 0)], per_blob=6)
        clustering = cluster_nodes(space)
        assert len(clustering.removed_edges) >= 1
        for u, v, length, ratio in clustering.removed_edges:
            assert ratio > 2.0  # default factor
            assert length > 0

    def test_subset_of_nodes(self):
        space = blobs([(0, 0), (100, 0)], per_blob=6)
        subset = space.nodes()[:8]
        clustering = cluster_nodes(space, nodes=subset)
        assert sorted(m for c in clustering.clusters for m in c) == sorted(subset)

    def test_coincident_points(self):
        space = CoordinateSpace({f"p{i}": (1.0, 1.0) for i in range(5)})
        clustering = cluster_nodes(space)
        assert clustering.cluster_count == 1


class TestClusteringObject:
    def test_sizes(self):
        clustering = Clustering(
            clusters=[["a", "b"], ["c"]], labels={"a": 0, "b": 0, "c": 1}
        )
        assert clustering.sizes() == [2, 1]

    def test_same_cluster(self):
        clustering = Clustering(
            clusters=[["a", "b"], ["c"]], labels={"a": 0, "b": 0, "c": 1}
        )
        assert clustering.same_cluster("a", "b")
        assert not clustering.same_cluster("a", "c")

    def test_unknown_node_raises(self):
        clustering = Clustering(clusters=[["a"]], labels={"a": 0})
        with pytest.raises(ClusteringError):
            clustering.cluster_of("zzz")

    def test_bad_cluster_id_raises(self):
        clustering = Clustering(clusters=[["a"]], labels={"a": 0})
        with pytest.raises(ClusteringError):
            clustering.members(3)


class TestQualityMetrics:
    @pytest.fixture
    def clustered_blobs(self):
        space = blobs([(0, 0), (200, 0), (0, 200)], per_blob=8)
        return space, cluster_nodes(space)

    def test_separation_is_large_for_blobs(self, clustered_blobs):
        space, clustering = clustered_blobs
        assert separation_ratio(space, clustering) > 10

    def test_intra_lt_inter(self, clustered_blobs):
        space, clustering = clustered_blobs
        assert intra_cluster_mean_distance(space, clustering) < inter_cluster_mean_distance(
            space, clustering
        )

    def test_silhouette_near_one_for_blobs(self, clustered_blobs):
        space, clustering = clustered_blobs
        assert silhouette_mean(space, clustering) > 0.8

    def test_silhouette_requires_two_clusters(self):
        space = blobs([(0, 0)])
        clustering = cluster_nodes(space)
        with pytest.raises(ClusteringError):
            silhouette_mean(space, clustering)

    def test_size_statistics(self, clustered_blobs):
        _, clustering = clustered_blobs
        stats = size_statistics(clustering)
        assert stats["count"] == 3
        assert stats["min"] == stats["max"] == 8
        assert stats["largest_fraction"] == pytest.approx(8 / 24)

    def test_inter_requires_two_clusters(self):
        space = blobs([(0, 0)])
        clustering = cluster_nodes(space)
        with pytest.raises(ClusteringError):
            inter_cluster_mean_distance(space, clustering)


class TestKCenter:
    def test_k_clusters_returned(self):
        space = blobs([(0, 0), (100, 0), (0, 100)], per_blob=6)
        clustering = kcenter_cluster(space, 3, seed=1)
        assert clustering.cluster_count == 3

    def test_partition_complete(self):
        space = blobs([(0, 0), (100, 0)], per_blob=6)
        clustering = kcenter_cluster(space, 2, seed=1)
        assert sorted(m for c in clustering.clusters for m in c) == sorted(space.nodes())

    def test_k_larger_than_n_clamped(self):
        space = CoordinateSpace({"a": (0, 0), "b": (1, 1)})
        clustering = kcenter_cluster(space, 10, seed=1)
        assert clustering.cluster_count <= 2

    def test_invalid_k(self):
        space = CoordinateSpace({"a": (0, 0)})
        with pytest.raises(ClusteringError):
            kcenter_cluster(space, 0)

    def test_blob_purity(self):
        space = blobs([(0, 0), (500, 0), (0, 500)], per_blob=6)
        clustering = kcenter_cluster(space, 3, seed=1)
        for members in clustering.clusters:
            assert len({m[:2] for m in members}) == 1


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(-1000, 1000), st.floats(-1000, 1000)),
        min_size=2,
        max_size=30,
        unique=True,
    ),
    st.floats(1.5, 5.0),
)
def test_clustering_is_always_a_partition(points, factor):
    """Property: any input yields a complete, disjoint partition."""
    space = CoordinateSpace({f"p{i}": p for i, p in enumerate(points)})
    clustering = cluster_nodes(
        space, config=ClusteringConfig(factor=factor, min_cluster_size=1)
    )
    flattened = [m for c in clustering.clusters for m in c]
    assert sorted(flattened) == sorted(space.nodes())
    assert len(flattened) == len(set(flattened))
    for node in space.nodes():
        assert node in clustering.clusters[clustering.cluster_of(node)]
