"""Tests for deterministic fault injection and the convergence auditor."""

import json

import pytest

from repro.core import HFCFramework
from repro.faults import (
    ConvergenceAuditor,
    CrashRestart,
    DelayJitter,
    Duplicate,
    FaultInjector,
    FaultPlan,
    LinkLoss,
    Partition,
    Reorder,
    crash_restart_plan,
    loss_burst_plan,
    partition_heal_plan,
    reorder_duplicate_plan,
    run_fault_scenario,
    standard_fault_matrix,
)
from repro.netsim.eventsim import Process, Simulator
from repro.state.delta import DeltaAssembler, DeltaEmitter
from repro.state.protocol import StateDistributionProtocol
from repro.util.errors import FaultError


class TestFaultPlan:
    def test_invalid_window_rejected(self):
        with pytest.raises(FaultError):
            LinkLoss(start=10.0, end=5.0, loss_rate=0.5)
        with pytest.raises(FaultError):
            DelayJitter(start=-1.0, end=5.0, jitter=10.0)

    def test_invalid_probability_rejected(self):
        with pytest.raises(FaultError):
            LinkLoss(start=0.0, end=5.0, loss_rate=1.5)
        with pytest.raises(FaultError):
            Duplicate(start=0.0, end=5.0, probability=-0.1)

    def test_partition_needs_two_disjoint_groups(self):
        with pytest.raises(FaultError):
            Partition(start=0.0, end=5.0, groups=(frozenset({"a"}),))
        with pytest.raises(FaultError):
            Partition(
                start=0.0,
                end=5.0,
                groups=(frozenset({"a", "b"}), frozenset({"b", "c"})),
            )

    def test_partition_severs_only_across_groups(self):
        p = Partition(
            start=0.0, end=5.0, groups=(frozenset({"a"}), frozenset({"b"}))
        )
        assert p.severs("a", "b") and p.severs("b", "a")
        assert not p.severs("a", "a")
        assert not p.severs("a", "outsider")

    def test_crash_restart_ordering_validated(self):
        with pytest.raises(FaultError):
            CrashRestart(proxy="a", crash_at=10.0, restart_at=5.0)
        spec = CrashRestart(proxy="a", crash_at=10.0, restart_at=20.0)
        assert not spec.down_at(9.9)
        assert spec.down_at(10.0) and spec.down_at(19.9)
        assert not spec.down_at(20.0)

    def test_warm_restart_requires_a_restart(self):
        with pytest.raises(FaultError):
            CrashRestart(proxy="a", crash_at=10.0, warm_restart=True)

    def test_last_fault_end(self):
        plan = FaultPlan(
            seed=1,
            specs=(
                LinkLoss(start=0.0, end=30.0, loss_rate=0.1),
                CrashRestart(proxy="a", crash_at=5.0, restart_at=50.0),
                CrashRestart(proxy="b", crash_at=70.0),  # never restarts
            ),
        )
        assert plan.last_fault_end == 70.0
        assert plan.permanently_down(80.0) == frozenset({"b"})
        assert plan.permanently_down(60.0) == frozenset()

    def test_describe_lists_specs(self):
        plan = FaultPlan(seed=5, specs=[LinkLoss(start=0.0, end=1.0, loss_rate=0.2)])
        assert plan.specs == (LinkLoss(start=0.0, end=1.0, loss_rate=0.2),)
        assert "seed=5" in plan.describe()
        assert "LinkLoss" in plan.describe()


class _Sink(Process):
    def __init__(self, address):
        super().__init__(address)
        self.got = []

    def receive(self, message):
        self.got.append((self.simulator.now, message.payload))


def _pair(plan):
    """A two-process simulator with *plan* installed; returns (sim, a, b, inj)."""
    sim = Simulator()
    a, b = _Sink("a"), _Sink("b")
    sim.register(a)
    sim.register(b)
    injector = FaultInjector(plan).install(sim)
    return sim, a, b, injector


class TestInjector:
    def test_certain_loss_drops_in_window_only(self):
        plan = FaultPlan(seed=1, specs=(LinkLoss(start=0.0, end=10.0, loss_rate=1.0),))
        sim, a, b, injector = _pair(plan)
        sim.schedule(1.0, lambda: a.send("b", "data", "in-window", delay=1.0))
        sim.schedule(12.0, lambda: a.send("b", "data", "after", delay=1.0))
        sim.run_until(20.0)
        assert [p for _, p in b.got] == ["after"]
        assert sim.telemetry.registry.total("faults.dropped") == 1
        assert any(e["fault"] == "drop" and e["cause"] == "loss" for e in injector.trace)

    def test_directed_loss_leaves_other_links_alone(self):
        plan = FaultPlan(
            seed=1,
            specs=(
                LinkLoss(start=0.0, end=10.0, loss_rate=1.0, sender="a", recipient="b"),
            ),
        )
        sim, a, b, _ = _pair(plan)
        sim.schedule(1.0, lambda: a.send("b", "data", "ab", delay=1.0))
        sim.schedule(1.0, lambda: b.send("a", "data", "ba", delay=1.0))
        sim.run_until(20.0)
        assert b.got == []
        assert [p for _, p in a.got] == ["ba"]

    def test_partition_drops_cross_group_messages(self):
        plan = FaultPlan(
            seed=1,
            specs=(
                Partition(
                    start=0.0, end=10.0, groups=(frozenset({"a"}), frozenset({"b"}))
                ),
            ),
        )
        sim, a, b, _ = _pair(plan)
        sim.schedule(1.0, lambda: a.send("b", "data", "cut", delay=1.0))
        sim.schedule(11.0, lambda: a.send("b", "data", "healed", delay=1.0))
        sim.run_until(20.0)
        assert [p for _, p in b.got] == ["healed"]

    def test_duplicate_delivers_twice(self):
        plan = FaultPlan(
            seed=1, specs=(Duplicate(start=0.0, end=10.0, probability=1.0),)
        )
        sim, a, b, _ = _pair(plan)
        sim.schedule(1.0, lambda: a.send("b", "data", "x", delay=1.0))
        sim.run_until(20.0)
        assert [p for _, p in b.got] == ["x", "x"]
        assert sim.telemetry.registry.total("faults.duplicated") == 1

    def test_jitter_and_reorder_delay_delivery(self):
        plan = FaultPlan(
            seed=1,
            specs=(
                DelayJitter(start=0.0, end=10.0, jitter=5.0),
                Reorder(start=0.0, end=10.0, probability=1.0, max_extra_delay=5.0),
            ),
        )
        sim, a, b, _ = _pair(plan)
        sim.schedule(1.0, lambda: a.send("b", "data", "late", delay=1.0))
        sim.run_until(30.0)
        (arrived, _), = b.got
        assert arrived > 2.0  # nominal arrival would be exactly 2.0
        assert sim.telemetry.registry.total("faults.delayed") == 2

    def test_crashed_recipient_kills_in_flight_messages(self):
        plan = FaultPlan(
            seed=1, specs=(CrashRestart(proxy="b", crash_at=5.0, restart_at=15.0),)
        )
        sim, a, b, _ = _pair(plan)
        # sent before the crash but arriving during downtime: dies
        sim.schedule(4.0, lambda: a.send("b", "data", "in-flight", delay=3.0))
        # sent during downtime: dies
        sim.schedule(8.0, lambda: a.send("b", "data", "down", delay=1.0))
        # arrives after restart: delivered
        sim.schedule(16.0, lambda: a.send("b", "data", "back", delay=1.0))
        sim.run_until(30.0)
        assert [p for _, p in b.got] == ["back"]
        registry = sim.telemetry.registry
        by_cause = registry.values_by_label("faults.dropped", "cause")
        assert by_cause["crash_recipient"] == 2
        assert registry.total("faults.dropped") == 2

    def test_crashed_sender_cannot_send(self):
        plan = FaultPlan(
            seed=1, specs=(CrashRestart(proxy="a", crash_at=5.0, restart_at=15.0),)
        )
        sim, a, b, _ = _pair(plan)
        sim.schedule(6.0, lambda: a.send("b", "data", "zombie", delay=1.0))
        sim.run_until(30.0)
        assert b.got == []

    def test_restart_hook_fires(self):
        spec = CrashRestart(proxy="b", crash_at=5.0, restart_at=15.0)
        plan = FaultPlan(seed=1, specs=(spec,))
        sim = Simulator()
        sim.register(_Sink("a"))
        sim.register(_Sink("b"))
        restarted = []
        FaultInjector(plan).install(sim, on_restart=restarted.append)
        sim.run_until(30.0)
        assert restarted == [spec]
        assert sim.telemetry.registry.total("faults.restarts") == 1

    def test_double_install_rejected(self):
        plan = FaultPlan(seed=1)
        sim = Simulator()
        injector = FaultInjector(plan).install(sim)
        with pytest.raises(FaultError):
            injector.install(sim)
        with pytest.raises(FaultError):
            FaultInjector(plan).install(sim)  # slot already taken


@pytest.fixture(scope="module")
def fault_framework():
    """A dedicated framework: fault scenarios mutate overlay placement."""
    return HFCFramework.build(proxy_count=48, seed=3)


class TestScenarios:
    def test_standard_matrix_reconverges(self):
        # fresh framework: the crash scenario rewrites the victim's services
        framework = HFCFramework.build(proxy_count=48, seed=3)
        results = {
            name: run_fault_scenario(framework, plan, k_periods=3)
            for name, plan in standard_fault_matrix(framework.hfc).items()
        }
        assert set(results) == {
            "loss_burst", "partition_heal", "crash_restart", "reorder_duplicate",
        }
        for name, result in results.items():
            assert result.passed, f"{name}: {[c.detail for c in result.failures()]}"
            assert result.reconverged_at is not None
            assert result.reconverged_at <= result.deadline
            assert result.recovery_time is not None

    def test_loss_burst_actually_dropped_messages(self, fault_framework):
        result = run_fault_scenario(
            fault_framework, loss_burst_plan(fault_framework.hfc), k_periods=3
        )
        assert result.passed
        assert result.counters["faults.dropped.loss"] > 0

    def test_partition_plan_severs_cluster_halves(self, fault_framework):
        plan = partition_heal_plan(fault_framework.hfc)
        result = run_fault_scenario(fault_framework, plan, k_periods=3)
        assert result.passed
        assert result.counters["faults.dropped.partition"] > 0

    def test_reorder_duplicate_stresses_delta_streams(self, fault_framework):
        plan = reorder_duplicate_plan(fault_framework.hfc)
        result = run_fault_scenario(fault_framework, plan, k_periods=3)
        assert result.passed
        assert result.counters["faults.duplicated"] > 0
        # duplicated announcements are exactly what the stale counter absorbs
        assert result.counters["delta.stale"] > 0

    def test_crash_restart_wipes_and_recovers(self):
        framework = HFCFramework.build(proxy_count=48, seed=3)
        plan = crash_restart_plan(framework.hfc)
        victim = plan.crash_specs()[0].proxy
        before = framework.hfc.overlay.placement[victim]
        result = run_fault_scenario(framework, plan, k_periods=3)
        assert result.passed
        assert result.counters["protocol.restarts"] == 1
        # the restart changed ground truth, so reconvergence proves peers
        # accepted the restarted stream rather than serving frozen state
        assert framework.hfc.overlay.placement[victim] != before

    def test_warm_restart_recovers_without_wipe(self):
        framework = HFCFramework.build(proxy_count=48, seed=3)
        victim = framework.hfc.overlay.proxies[0]
        plan = FaultPlan(
            seed=5,
            specs=(
                CrashRestart(
                    proxy=victim,
                    crash_at=2000.0,
                    restart_at=4500.0,
                    warm_restart=True,
                ),
            ),
        )
        result = run_fault_scenario(framework, plan, k_periods=3)
        assert result.passed
        # the warm path restores instead of wiping: the warm counter fires
        # and ground truth is unchanged (no services_after, no wipe)
        assert result.counters["protocol.restarts"] == 1
        assert result.counters["protocol.restarts.warm"] == 1

    def test_trace_bit_identical_across_runs(self, fault_framework):
        plan = loss_burst_plan(fault_framework.hfc)

        def trace():
            result = run_fault_scenario(fault_framework, plan, k_periods=3)
            return json.dumps(result.trace, sort_keys=True, default=repr)

        assert trace() == trace()

    def test_jsonl_dump(self, fault_framework, tmp_path):
        result = run_fault_scenario(
            fault_framework, loss_burst_plan(fault_framework.hfc), k_periods=3
        )
        path = tmp_path / "audit.jsonl"
        written = result.dump_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        assert written == len(lines) == len(result.trace) + len(result.checks)
        verdicts = [json.loads(line) for line in lines[-len(result.checks):]]
        assert all(v["passed"] for v in verdicts)

    def test_auditor_rejects_foreign_injector(self, fault_framework):
        protocol = StateDistributionProtocol(fault_framework.hfc, seed=1)
        injector = FaultInjector(FaultPlan(seed=1)).install(Simulator())
        with pytest.raises(FaultError):
            ConvergenceAuditor(protocol, injector)


class TestIncarnationRegression:
    """The stale-state bug the fault matrix flushed out.

    A crash/restart with state wipe resets the emitter's sequence numbers
    to 1. Before incarnation numbers, every receiver that saw the
    pre-crash stream rejected the restarted sender's announcements as
    stale *forever* — its capability view froze at the pre-crash state.
    """

    def test_restarted_emitter_reanchors_receiver(self):
        emitter = DeltaEmitter(refresh_every=4)
        assembler = DeltaAssembler()
        stream = ("local", "p")
        for services in ({"a"}, {"a", "b"}, {"b"}, {"b", "c"}, {"c"}):
            assembler.apply(stream, emitter.announce(stream, frozenset(services)))
        assert assembler.current(stream) == frozenset({"c"})

        rebooted = emitter.restart()
        assert rebooted.incarnation == emitter.incarnation + 1
        first = rebooted.announce(stream, frozenset({"z"}))
        assert first.is_full and first.seq == 1
        # pre-fix: seq 1 <= last applied seq (5) -> rejected as stale
        assert assembler.apply(stream, first) == frozenset({"z"})
        assert assembler.current(stream) == frozenset({"z"})
        # and subsequent deltas under the new incarnation chain normally
        second = rebooted.announce(stream, frozenset({"z", "y"}))
        assert assembler.apply(stream, second) == frozenset({"z", "y"})

    def test_same_incarnation_restart_is_the_old_bug(self):
        """Without the incarnation bump the wipe really would freeze peers."""
        emitter = DeltaEmitter(refresh_every=4)
        assembler = DeltaAssembler()
        stream = ("local", "p")
        for i in range(5):
            assembler.apply(
                stream, emitter.announce(stream, frozenset({f"s{i}"}))
            )
        # a naive restart: fresh emitter, same incarnation
        naive = DeltaEmitter(refresh_every=4, incarnation=emitter.incarnation)
        stale_before = assembler.stale
        for _ in range(8):
            assembler.apply(stream, naive.announce(stream, frozenset({"new"})))
        # early announcements are stale-rejected; worse, once the naive
        # sequence numbers catch up to the old head they chain onto the
        # PRE-CRASH base — either way the receiver never learns {"new"}
        assert assembler.stale > stale_before
        assert assembler.current(stream) != frozenset({"new"})

    def test_older_incarnation_is_stale(self):
        assembler = DeltaAssembler()
        stream = ("local", "p")
        new = DeltaEmitter(incarnation=2)
        old = DeltaEmitter(incarnation=1)
        assert assembler.apply(stream, new.announce(stream, frozenset({"n"})))
        assert assembler.apply(stream, old.announce(stream, frozenset({"o"}))) is None
        assert assembler.stale == 1
        assert assembler.current(stream) == frozenset({"n"})

    def test_protocol_wipe_state_reconverges_in_sim(self, tiny_framework):
        protocol = StateDistributionProtocol(tiny_framework.hfc, seed=21)
        protocol.run(max_time=20000.0)
        assert protocol.converged()
        victim = tiny_framework.hfc.overlay.proxies[0]
        old = tiny_framework.hfc.overlay.placement[victim]
        new_services = frozenset(sorted(old)[:-1]) if len(old) > 1 else old
        protocol.wipe_state(victim, services=new_services)
        report = protocol.run(max_time=protocol.sim.now + 15000.0)
        assert report.converged_at is not None
        assert protocol.converged()
