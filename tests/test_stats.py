"""Tests for the small-sample statistics helpers."""

import math

import pytest

from repro.experiments.stats import (
    relative_difference,
    summarize,
    t_critical_95,
)
from repro.util.errors import ReproError


class TestTCritical:
    def test_known_values(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(9) == pytest.approx(2.262)

    def test_large_df_is_normal(self):
        assert t_critical_95(1000) == pytest.approx(1.960)

    def test_monotone_decreasing(self):
        values = [t_critical_95(df) for df in range(1, 40)]
        assert values == sorted(values, reverse=True)

    def test_invalid_df(self):
        with pytest.raises(ReproError):
            t_critical_95(0)


class TestSummarize:
    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            summarize([])

    def test_single_value(self):
        s = summarize([5.0])
        assert s.mean == 5.0
        assert s.std == 0.0
        assert math.isinf(s.ci95)

    def test_constant_sample(self):
        s = summarize([3.0] * 10)
        assert s.mean == 3.0
        assert s.std == 0.0
        assert s.ci95 == 0.0

    def test_known_sample(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.mean == 3.0
        assert s.std == pytest.approx(math.sqrt(2.5))
        assert s.ci95 == pytest.approx(2.776 * math.sqrt(2.5) / math.sqrt(5))

    def test_interval_bounds(self):
        s = summarize([10.0, 12.0, 14.0])
        assert s.low == pytest.approx(s.mean - s.ci95)
        assert s.high == pytest.approx(s.mean + s.ci95)

    def test_overlaps(self):
        a = summarize([1.0, 2.0, 3.0])
        b = summarize([2.5, 3.5, 4.5])
        far = summarize([100.0, 101.0, 102.0])
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(far)

    def test_str_format(self):
        assert "n=3" in str(summarize([1.0, 2.0, 3.0]))


class TestRelativeDifference:
    def test_positive_when_a_larger(self):
        assert relative_difference(12.0, 10.0) == pytest.approx(0.2)

    def test_zero_denominator_rejected(self):
        with pytest.raises(ReproError):
            relative_difference(1.0, 0.0)
