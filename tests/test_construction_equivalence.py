"""Equivalence suite: vectorized construction == the reference code path.

The PR that vectorized the Section-3 construction pipeline (batched
Nelder-Mead embedding, squared-distance argmin Prim, blocked border-pair
minima) claims the fast kernels are *drop-in*: same MST edge sets, same
cluster partitions, same border pairs as the original per-host/per-pair
loops. These tests pin that claim:

* solver-level, bit-exact: the batched Nelder-Mead replays the scalar
  algorithm's decisions, so on identical inputs the results are identical
  to the last bit (hypothesis-driven);
* kernel-level: MST edge sets, cluster partitions and border selections
  agree between the fast and reference implementations across random
  topologies (hypothesis-driven, integer coordinates so distance ties are
  exact in both squared and rooted form);
* pipeline-level: end-to-end construction over real transit-stub networks
  produces identical clusters and identical border pairs in both modes
  (fixed seeds; the vectorized mode measures true delays from the landmark
  side, which shifts floats by summation order, so coordinates agree to
  tolerance rather than bitwise while the topology stays identical).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.mstcluster import ClusteringConfig, cluster_nodes
from repro.coords.embedding import locate_host, locate_hosts, locate_hosts_parallel
from repro.coords.neldermead import (
    minimize_with_restarts,
    minimize_with_restarts_batch,
    nelder_mead,
    nelder_mead_batch,
)
from repro.coords.space import CoordinateSpace
from repro.graph.mst import dense_prim_mst, euclidean_mst, euclidean_mst_reference
from repro.netsim import PhysicalNetwork, transit_stub
from repro.overlay.hfc import (
    select_borders_closest,
    select_borders_closest_reference,
)


def gnp_objectives(landmarks, measured):
    """Scalar and batched forms of the per-host GNP objective."""
    safe = np.where(measured > 0, measured, 1.0)

    def scalar(i):
        def f(point):
            est = np.sqrt(np.sum((landmarks - point) ** 2, axis=1))
            return float(np.sum(((est - measured[i]) / safe[i]) ** 2))

        return f

    def batched(points, idx):
        diff = landmarks[None, :, :] - points[:, None, :]
        est = np.sqrt(np.sum(diff**2, axis=2))
        return np.sum(((est - measured[idx]) / safe[idx]) ** 2, axis=1)

    return scalar, batched


class TestBatchedNelderMead:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        batch=st.integers(1, 12),
        dim=st.integers(1, 3),
    )
    def test_bit_identical_to_scalar_loop(self, seed, batch, dim):
        rng = np.random.default_rng(seed)
        m = 6
        landmarks = rng.uniform(0.0, 100.0, (m, dim))
        measured = rng.uniform(0.5, 120.0, (batch, m))
        scalar, batched = gnp_objectives(landmarks, measured)
        x0s = rng.uniform(0.0, 100.0, (batch, dim))
        steps = rng.uniform(0.5, 5.0, batch)
        xtols = rng.uniform(1e-8, 1e-5, batch)

        result = nelder_mead_batch(
            batched, x0s, initial_step=steps, xtol=xtols, max_iterations=300
        )
        for i in range(batch):
            ref = nelder_mead(
                scalar(i),
                x0s[i],
                initial_step=float(steps[i]),
                xtol=float(xtols[i]),
                max_iterations=300,
            )
            assert np.array_equal(ref.x, result.x[i])
            assert ref.fun == result.fun[i]
            assert ref.iterations == result.iterations[i]
            assert ref.converged == bool(result.converged[i])

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), batch=st.integers(1, 8))
    def test_restarts_bit_identical(self, seed, batch):
        rng = np.random.default_rng(seed)
        m, dim, n_starts = 5, 2, 3
        landmarks = rng.uniform(0.0, 50.0, (m, dim))
        measured = rng.uniform(0.5, 80.0, (batch, m))
        scalar, batched = gnp_objectives(landmarks, measured)
        starts = rng.uniform(0.0, 50.0, (batch, n_starts, dim))

        result = minimize_with_restarts_batch(
            batched, starts, initial_step=2.0, xtol=1e-7, max_iterations=250
        )
        for i in range(batch):
            ref = minimize_with_restarts(
                scalar(i),
                list(starts[i]),
                initial_step=2.0,
                xtol=1e-7,
                max_iterations=250,
            )
            assert np.array_equal(ref.x, result.x[i])
            assert ref.fun == result.fun[i]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            nelder_mead_batch(lambda p, i: np.zeros(len(p)), np.zeros((3,)))
        with pytest.raises(ValueError):
            minimize_with_restarts_batch(
                lambda p, i: np.zeros(len(p)), np.zeros((3, 2))
            )
        with pytest.raises(ValueError):
            nelder_mead_batch(
                lambda p, i: np.zeros(len(p)),
                np.zeros((3, 2)),
                initial_step=np.ones(4),
            )


class TestLocateHostsBatch:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        hosts=st.integers(1, 10),
        m=st.integers(3, 8),
        dim=st.integers(1, 3),
    )
    def test_bit_identical_to_per_host_loop(self, seed, hosts, m, dim):
        rng = np.random.default_rng(seed)
        landmarks = rng.uniform(0.0, 100.0, (m, dim))
        positions = rng.uniform(0.0, 100.0, (hosts, dim))
        true = np.sqrt(
            ((landmarks[None, :, :] - positions[:, None, :]) ** 2).sum(axis=2)
        )
        measured = true * rng.uniform(1.0, 1.15, (hosts, m))

        batch = locate_hosts(landmarks, measured)
        for i in range(hosts):
            ref = locate_host(landmarks, measured[i])
            assert np.array_equal(ref, batch[i])

    def test_parallel_matches_serial(self):
        rng = np.random.default_rng(3)
        landmarks = rng.uniform(0.0, 100.0, (8, 2))
        measured = rng.uniform(1.0, 150.0, (200, 8))
        serial = locate_hosts(landmarks, measured)
        fanned = locate_hosts_parallel(landmarks, measured, workers=2)
        assert np.array_equal(serial, fanned)

    def test_empty_batch(self):
        out = locate_hosts(np.zeros((4, 2)), np.zeros((0, 4)))
        assert out.shape == (0, 2)

    def test_shape_mismatch_rejected(self):
        from repro.util.errors import EmbeddingError

        with pytest.raises(EmbeddingError):
            locate_hosts(np.zeros((4, 2)), np.zeros((3, 5)))


#: integer lattice points — squared distances are exact floats, so the
#: squared-distance Prim and the rooted reference rank candidates identically
#: even at exact ties.
lattice_points = st.lists(
    st.tuples(st.integers(-60, 60), st.integers(-60, 60)),
    min_size=2,
    max_size=40,
    unique=True,
)


def canonical_edges(edges):
    return {(min(i, j), max(i, j)) for i, j, _ in edges}


class TestMstEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(points=lattice_points)
    def test_edge_sets_match_reference(self, points):
        pts = np.asarray(points, dtype=float)
        fast = euclidean_mst(pts)
        ref = euclidean_mst_reference(pts)
        assert canonical_edges(fast) == canonical_edges(ref)
        assert np.allclose(
            sorted(w for _, _, w in fast), sorted(w for _, _, w in ref)
        )

    @settings(max_examples=25, deadline=None)
    @given(points=lattice_points)
    def test_dense_prim_agrees_on_explicit_matrix(self, points):
        pts = np.asarray(points, dtype=float)
        diff = pts[:, None, :] - pts[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        np.fill_diagonal(dist, np.inf)
        dense = dense_prim_mst(dist)
        ref = euclidean_mst_reference(pts)
        # Tie-broken trees may differ edge-wise but never weight-wise.
        assert np.isclose(
            sum(w for _, _, w in dense), sum(w for _, _, w in ref)
        )

    def test_dense_prim_disconnected_raises(self):
        from repro.util.errors import GraphError

        w = np.full((3, 3), np.inf)
        w[0, 1] = w[1, 0] = 1.0
        with pytest.raises(GraphError):
            dense_prim_mst(w)


class TestClusterPartitionEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(points=lattice_points)
    def test_partitions_match_reference_mst(self, points):
        space = CoordinateSpace(
            {i: tuple(map(float, p)) for i, p in enumerate(points)}
        )
        config = ClusteringConfig(factor=2.0, min_cluster_size=1)
        fast = cluster_nodes(space, config=config, mst=euclidean_mst)
        ref = cluster_nodes(space, config=config, mst=euclidean_mst_reference)
        assert fast.clusters == ref.clusters
        assert fast.labels == ref.labels


class TestBorderEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        points=st.lists(
            st.tuples(st.integers(-60, 60), st.integers(-60, 60)),
            min_size=4,
            max_size=36,
            unique=True,
        ),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_blocked_minima_match_per_pair_scan(self, points, seed):
        space = CoordinateSpace(
            {i: tuple(map(float, p)) for i, p in enumerate(points)}
        )
        rng = np.random.default_rng(seed)
        k = int(rng.integers(2, min(5, len(points)) + 1))
        labels = np.asarray(
            [i % k for i in range(len(points))], dtype=int
        )
        rng.shuffle(labels)
        clusters = [sorted(np.flatnonzero(labels == c).tolist()) for c in range(k)]
        clusters = [c for c in clusters if c]
        from repro.cluster.mstcluster import Clustering

        clustering = Clustering(
            clusters=clusters,
            labels={n: cid for cid, ms in enumerate(clusters) for n in ms},
        )
        fast = select_borders_closest(space, clustering)
        ref = select_borders_closest_reference(space, clustering)
        assert fast == ref


class TestMeasureManyEquivalence:
    @pytest.mark.parametrize("noise", [0.0, 0.10])
    def test_same_noise_stream_as_sequential_measure(self, noise):
        topo = transit_stub(120, seed=5)
        net_a = PhysicalNetwork(topo, noise=noise, seed=9)
        net_b = PhysicalNetwork(topo, noise=noise, seed=9)
        nodes = topo.graph.nodes()
        sources, targets = nodes[:15], nodes[20:25]
        loop = np.array(
            [[net_a.measure(s, t, probes=3) for t in targets] for s in sources]
        )
        batch = net_b.measure_many(sources, targets, probes=3)
        # True delays may differ by reversed-summation ulps; the noise
        # multipliers come from the identical RNG stream.
        assert np.allclose(loop, batch, rtol=1e-12, atol=0.0)

    def test_probes_validated(self):
        topo = transit_stub(120, seed=5)
        net = PhysicalNetwork(topo, seed=1)
        with pytest.raises(ValueError):
            net.measure_many([0], [1], probes=0)


@pytest.mark.parametrize("seed", [1, 7, 42])
class TestPipelineEquivalence:
    """End-to-end: identical clusters and border pairs in both modes."""

    def _build(self, seed, vectorized):
        from repro.coords.embedding import build_coordinate_space

        topo = transit_stub(150, seed=seed)
        net = PhysicalNetwork(topo, noise=0.10, seed=seed)
        proxies = net.pick_overlay_nodes(80, seed=seed)
        space, report = build_coordinate_space(
            net, proxies, seed=seed, vectorized=vectorized
        )
        mst = euclidean_mst if vectorized else euclidean_mst_reference
        clustering = cluster_nodes(space, proxies, mst=mst)
        return space, report, clustering, proxies

    def test_identical_clusters_and_borders(self, seed):
        space_v, report_v, cl_v, proxies = self._build(seed, True)
        space_r, report_r, cl_r, _ = self._build(seed, False)

        assert cl_v.clusters == cl_r.clusters
        assert cl_v.labels == cl_r.labels
        assert report_v.landmark_ids == report_r.landmark_ids
        assert report_v.measurement_count == report_r.measurement_count
        assert np.array_equal(
            report_v.landmark_coordinates, report_r.landmark_coordinates
        )
        # Coordinates agree to measurement-direction tolerance...
        assert np.allclose(
            space_v.array(proxies), space_r.array(proxies), atol=1e-3
        )
        # ...and the selected borders are identical.
        borders_v = select_borders_closest(space_v, cl_v)
        borders_r = select_borders_closest_reference(space_r, cl_r)
        assert borders_v == borders_r

    def test_worker_fanout_identical(self, seed):
        from repro.coords.embedding import build_coordinate_space

        topo = transit_stub(150, seed=seed)
        net_a = PhysicalNetwork(topo, noise=0.10, seed=seed)
        proxies = net_a.pick_overlay_nodes(80, seed=seed)
        space_a, _ = build_coordinate_space(net_a, proxies, seed=seed)
        net_b = PhysicalNetwork(topo, noise=0.10, seed=seed)
        net_b.pick_overlay_nodes(80, seed=seed)
        space_b, _ = build_coordinate_space(net_b, proxies, seed=seed, workers=2)
        assert np.array_equal(space_a.array(proxies), space_b.array(proxies))


class TestFrameworkModes:
    def test_framework_vectorized_flag_same_topology(self):
        from repro.core import HFCFramework
        from repro.core.config import FrameworkConfig

        fast = HFCFramework.build(
            proxy_count=60,
            seed=11,
            config=FrameworkConfig(vectorized_construction=True),
        )
        slow = HFCFramework.build(
            proxy_count=60,
            seed=11,
            config=FrameworkConfig(vectorized_construction=False),
        )
        assert fast.clustering.clusters == slow.clustering.clusters
        assert fast.hfc.borders == slow.hfc.borders

    def test_construction_spans_recorded(self):
        from repro.core import HFCFramework
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        HFCFramework.build(proxy_count=24, seed=3, telemetry=telemetry)
        roots = telemetry.tracer.snapshot(limit=10)
        names = {root["name"] for root in roots}
        assert "construct" in names
        construct = next(r for r in roots if r["name"] == "construct")
        child_names = {c["name"] for c in construct["children"]}
        assert {
            "construct.topology",
            "construct.embedding",
            "construct.clustering",
            "construct.borders",
        } <= child_names
        counters = telemetry.registry.snapshot()["counters"]
        assert any(
            entry["name"] == "construct.measurements" and entry["value"] > 0
            for entry in counters
        )
