"""Tests for connected-components utilities."""

from repro.graph import Graph, component_of, connected_components, is_connected


def two_islands():
    g = Graph()
    g.add_edge(1, 2, 1.0)
    g.add_edge(2, 3, 1.0)
    g.add_edge(10, 11, 1.0)
    return g


class TestComponents:
    def test_empty_graph_has_no_components(self):
        assert connected_components(Graph()) == []

    def test_empty_graph_is_connected(self):
        # vacuous truth: at most one component
        assert is_connected(Graph())

    def test_single_node(self):
        g = Graph()
        g.add_node("x")
        assert connected_components(g) == [["x"]]
        assert is_connected(g)

    def test_two_islands_found(self):
        comps = connected_components(two_islands())
        assert len(comps) == 2
        assert {frozenset(c) for c in comps} == {
            frozenset({1, 2, 3}),
            frozenset({10, 11}),
        }

    def test_is_connected_false_for_islands(self):
        assert not is_connected(two_islands())

    def test_component_of(self):
        g = two_islands()
        assert set(component_of(g, 1)) == {1, 2, 3}
        assert set(component_of(g, 10)) == {10, 11}

    def test_isolated_nodes_are_own_components(self):
        g = Graph()
        g.add_nodes([1, 2, 3])
        assert len(connected_components(g)) == 3
