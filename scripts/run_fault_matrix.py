#!/usr/bin/env python
"""CI fault-matrix smoke: seeded fault plans under the convergence auditor.

Builds a small framework, runs the named plans from
``repro.faults.standard_fault_matrix`` (default: the three CI smoke plans
— loss burst, partition that heals, crash/restart with state wipe), and
fails (exit 1) if any auditor check fails. Optionally writes each
scenario's JSONL audit trail (fault trace + check verdicts) for artifact
upload.

Usage (the CI fault-matrix job / ``make fault-matrix``)::

    PYTHONPATH=src python scripts/run_fault_matrix.py \\
        --proxies 48 --audit-dir benchmarks/out
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import HFCFramework
from repro.faults import run_fault_scenario, standard_fault_matrix

SMOKE_PLANS = ("loss_burst", "partition_heal", "crash_restart")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--proxies", type=int, default=48)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--k-periods",
        type=int,
        default=3,
        help="reconvergence budget in protocol refresh periods",
    )
    parser.add_argument(
        "--plans",
        default=",".join(SMOKE_PLANS),
        help="comma-separated plan names ('all' = the whole matrix)",
    )
    parser.add_argument(
        "--audit-dir",
        type=Path,
        default=None,
        help="write <plan>.audit.jsonl trails into this directory",
    )
    args = parser.parse_args(argv)

    framework = HFCFramework.build(proxy_count=args.proxies, seed=args.seed)
    matrix = standard_fault_matrix(framework.hfc)
    if args.plans.strip().lower() != "all":
        wanted = [name.strip() for name in args.plans.split(",") if name.strip()]
        unknown = sorted(set(wanted) - set(matrix))
        if unknown:
            sys.exit(f"error: unknown plan(s) {unknown}; have {sorted(matrix)}")
        matrix = {name: matrix[name] for name in wanted}

    failures = []
    for name, plan in matrix.items():
        result = run_fault_scenario(framework, plan, k_periods=args.k_periods)
        print(f"{name:18s} {result.summary()}")
        for check in result.checks:
            mark = "ok " if check.passed else "FAIL"
            print(f"    [{mark}] {check.name}: {check.detail}")
        if args.audit_dir is not None:
            args.audit_dir.mkdir(parents=True, exist_ok=True)
            path = args.audit_dir / f"{name}.audit.jsonl"
            entries = result.dump_jsonl(str(path))
            print(f"    audit trail: {path} ({entries} entries)")
        if not result.passed:
            failures.append(name)

    if failures:
        print(f"\nFAIL: auditor rejected: {', '.join(failures)}")
        return 1
    print(f"\nfault matrix passed ({len(matrix)} plans, n={args.proxies})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
