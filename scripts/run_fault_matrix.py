#!/usr/bin/env python
"""CI fault-matrix smoke: seeded fault plans under the convergence auditor.

Builds a small framework, runs the named plans from
``repro.faults.standard_fault_matrix`` plus the hierarchy-aware
``super_border_crash`` scenario (crash the first top-level border proxy
of a depth-3 recursive hierarchy), and fails (exit 1) if any auditor
check fails. The super-border scenario additionally audits **per-level
aggregate reconvergence**: after the run, the depth-3 hierarchy's
``(level, group)`` capability aggregates must round-trip exactly through
the delta announcement machinery — i.e. every level of the stack agrees
with post-fault ground truth. Optionally writes each scenario's JSONL
audit trail (fault trace + check verdicts) for artifact upload.

Usage (the CI fault-matrix job / ``make fault-matrix``)::

    PYTHONPATH=src python scripts/run_fault_matrix.py \\
        --proxies 48 --audit-dir benchmarks/out
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import HFCFramework
from repro.faults import (
    run_fault_scenario,
    standard_fault_matrix,
    super_border_crash_plan,
)

SMOKE_PLANS = (
    "loss_burst",
    "partition_heal",
    "crash_restart",
    "super_border_crash",
)

#: plans that get the per-level aggregate reconvergence audit appended
HIERARCHY_PLANS = ("super_border_crash",)

#: hierarchy depth the super-border scenario and its audit build
HIERARCHY_DEPTH = 3


def per_level_reconvergence_check(framework, depth: int = HIERARCHY_DEPTH):
    """``(passed, detail)``: do per-level aggregates round-trip exactly?

    Builds a depth-*depth* hierarchy over the post-scenario topology
    (whose placement reflects the victim's rotated service set), announces
    every ``(level, group)`` aggregate through a fresh delta emitter, and
    reassembles it — the reconstructed view must equal ground truth at
    every level of the stack.
    """
    from repro.hierarchy.levels import build_levels
    from repro.state.delta import (
        DeltaAssembler,
        DeltaEmitter,
        announce_aggregates,
        assemble_aggregates,
    )

    hierarchy = build_levels(framework.hfc, depth)
    truth = hierarchy.aggregates()
    announcements = announce_aggregates(DeltaEmitter(), truth)
    view = assemble_aggregates(DeltaAssembler(), announcements)
    if view == truth:
        per_level: dict = {}
        for (level, _), _services in truth.items():
            per_level[level] = per_level.get(level, 0) + 1
        counts = ", ".join(
            f"L{level}:{count}" for level, count in sorted(per_level.items())
        )
        return True, f"{len(truth)} aggregates reconverged ({counts})"
    bad = sorted(
        key for key in set(truth) | set(view) if truth.get(key) != view.get(key)
    )
    return False, f"{len(bad)} stale aggregate stream(s): {bad[:5]}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--proxies", type=int, default=48)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--k-periods",
        type=int,
        default=3,
        help="reconvergence budget in protocol refresh periods",
    )
    parser.add_argument(
        "--plans",
        default=",".join(SMOKE_PLANS),
        help="comma-separated plan names ('all' = the whole matrix)",
    )
    parser.add_argument(
        "--audit-dir",
        type=Path,
        default=None,
        help="write <plan>.audit.jsonl trails into this directory",
    )
    args = parser.parse_args(argv)

    framework = HFCFramework.build(proxy_count=args.proxies, seed=args.seed)
    matrix = dict(standard_fault_matrix(framework.hfc))
    matrix["super_border_crash"] = super_border_crash_plan(
        framework.hfc, depth=HIERARCHY_DEPTH
    )
    if args.plans.strip().lower() != "all":
        wanted = [name.strip() for name in args.plans.split(",") if name.strip()]
        unknown = sorted(set(wanted) - set(matrix))
        if unknown:
            sys.exit(f"error: unknown plan(s) {unknown}; have {sorted(matrix)}")
        matrix = {name: matrix[name] for name in wanted}

    failures = []
    for name, plan in matrix.items():
        result = run_fault_scenario(framework, plan, k_periods=args.k_periods)
        print(f"{name:18s} {result.summary()}")
        for check in result.checks:
            mark = "ok " if check.passed else "FAIL"
            print(f"    [{mark}] {check.name}: {check.detail}")
        plan_failed = not result.passed
        if name in HIERARCHY_PLANS:
            passed, detail = per_level_reconvergence_check(framework)
            mark = "ok " if passed else "FAIL"
            print(f"    [{mark}] per_level_aggregates: {detail}")
            plan_failed = plan_failed or not passed
        if args.audit_dir is not None:
            args.audit_dir.mkdir(parents=True, exist_ok=True)
            path = args.audit_dir / f"{name}.audit.jsonl"
            entries = result.dump_jsonl(str(path))
            print(f"    audit trail: {path} ({entries} entries)")
        if plan_failed:
            failures.append(name)

    if failures:
        print(f"\nFAIL: auditor rejected: {', '.join(failures)}")
        return 1
    print(f"\nfault matrix passed ({len(matrix)} plans, n={args.proxies})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
