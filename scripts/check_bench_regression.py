#!/usr/bin/env python
"""Benchmark-regression gate for the BENCH_*.json speedup snapshots.

Compares a freshly generated ``BENCH_*.json`` (construction, churn, ...)
against the baseline committed to the repository and fails (exit 1) when
any gated speedup ratio regresses by more than ``--tolerance`` (default
25%).

The gate compares dimensionless speedup ratios (e.g. reference seconds /
vectorized seconds, full-rebuild seconds / incremental seconds, full-mode
bytes / delta-mode bytes), not absolute wall-clock: both code paths run
on the same machine in the same job, so the ratio is stable across
runner hardware while raw seconds are not. ``--metric`` selects which
keys of each entry's ``speedup`` dict are gated (repeatable; default
``total``).

Usage (the CI bench job)::

    cp BENCH_construction.json /tmp/bench_baseline.json     # committed
    pytest benchmarks/bench_construction.py --benchmark-only  # regenerates
    python scripts/check_bench_regression.py \\
        /tmp/bench_baseline.json BENCH_construction.json
    python scripts/check_bench_regression.py \\
        /tmp/churn_baseline.json BENCH_churn.json \\
        --metric maintenance --metric state_bytes

Entries are keyed by scale (``small``/``full``); only keys present in
BOTH files with the same workload size are gated, so the small CI smoke
run is never compared against the full-scale baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_entries(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    entries = data.get("entries")
    if not isinstance(entries, dict) or not entries:
        sys.exit(f"error: {path} has no benchmark entries")
    return entries


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH json")
    parser.add_argument("current", type=Path, help="freshly generated BENCH json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional speedup regression (default 0.25)",
    )
    parser.add_argument(
        "--metric",
        action="append",
        dest="metrics",
        metavar="NAME",
        help="speedup key to gate (repeatable; default: total)",
    )
    args = parser.parse_args(argv)
    metrics = args.metrics or ["total"]

    baseline = load_entries(args.baseline)
    current = load_entries(args.current)

    shared = sorted(set(baseline) & set(current))
    if not shared:
        print(
            f"no shared scales between {args.baseline} ({sorted(baseline)}) "
            f"and {args.current} ({sorted(current)}); nothing to gate"
        )
        return 0

    failures = []
    for scale in shared:
        base, cur = baseline[scale], current[scale]
        if base.get("proxies") != cur.get("proxies"):
            print(
                f"[{scale}] workload changed "
                f"(n={base.get('proxies')} -> n={cur.get('proxies')}); skipping"
            )
            continue
        for metric in metrics:
            try:
                base_speedup = float(base["speedup"][metric])
                cur_speedup = float(cur["speedup"][metric])
            except KeyError:
                sys.exit(
                    f"error: entry [{scale}] has no speedup metric {metric!r}"
                )
            floor = base_speedup * (1.0 - args.tolerance)
            verdict = "ok" if cur_speedup >= floor else "REGRESSION"
            print(
                f"[{scale}] n={cur['proxies']} {metric}: "
                f"speedup {cur_speedup:.2f}x vs baseline {base_speedup:.2f}x "
                f"(floor {floor:.2f}x) — {verdict}"
            )
            if cur_speedup < floor:
                failures.append(f"{scale}/{metric}")

    if failures:
        print(
            f"\nFAIL: speedup regressed beyond "
            f"{args.tolerance:.0%} on: {', '.join(failures)}"
        )
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
