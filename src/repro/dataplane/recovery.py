"""Failure recovery: re-routing around failed proxies.

Composes the dynamic-membership machinery with the hierarchical router: a
failed proxy is treated as having left the overlay (its cluster shrinks,
border pairs it served are re-selected), and the request is re-resolved on
the rebuilt HFC topology. This is exactly the repair story the paper's
Section 7 restructuring mechanism enables.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.core.framework import HFCFramework
from repro.membership.churn import DynamicOverlay
from repro.overlay.network import ProxyId
from repro.routing.hierarchical import HierarchicalRouter
from repro.routing.path import ServicePath
from repro.services.request import ServiceRequest
from repro.util.errors import RoutingError


def make_rerouter(framework: HFCFramework, request: ServiceRequest):
    """A :data:`~repro.dataplane.session.Rerouter` for *request*.

    Returns a callable that, given the failed proxy set, removes those
    proxies from a dynamic view of the overlay and re-routes the request
    hierarchically on the patched topology. One :class:`DynamicOverlay`
    persists across calls, so each invocation only pays for the *newly*
    failed proxies — an incremental leave per failure instead of a fresh
    overlay copy per reroute.
    """
    dyn = DynamicOverlay(
        framework, restructure_tolerance=None, track_quality=False
    )

    def reroute(failed: FrozenSet[ProxyId]) -> ServicePath:
        if request.source_proxy in failed or request.destination_proxy in failed:
            raise RoutingError("a request endpoint failed; session cannot recover")
        for proxy in sorted(failed):
            if dyn.is_member(proxy):
                dyn.leave(proxy)
        router = HierarchicalRouter(dyn.hfc)
        return router.route(request)

    return reroute
