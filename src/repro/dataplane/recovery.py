"""Failure recovery: re-routing around failed proxies.

Composes the dynamic-membership machinery with the hierarchical router: a
failed proxy is treated as having left the overlay (its cluster shrinks,
border pairs it served are re-selected), and the request is re-resolved on
the rebuilt HFC topology. This is exactly the repair story the paper's
Section 7 restructuring mechanism enables.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.core.framework import HFCFramework
from repro.membership.churn import DynamicOverlay
from repro.overlay.network import ProxyId
from repro.routing.hierarchical import HierarchicalRouter
from repro.routing.path import ServicePath
from repro.services.request import ServiceRequest
from repro.util.errors import EndpointFailedError


def make_rerouter(framework: HFCFramework, request: ServiceRequest):
    """A :data:`~repro.dataplane.session.Rerouter` for *request*.

    Returns a callable that, given the failed proxy set, removes those
    proxies from a dynamic view of the overlay and re-routes the request
    hierarchically on the patched topology. One :class:`DynamicOverlay`
    *and one router* persist across calls: each invocation only pays for
    the *newly* failed proxies (an incremental leave per failure), and the
    router is rebound to the rebuilt topology — gated on the overlay
    version, so a reroute with no new failures reuses the bound topology
    outright instead of rebuilding a router per call.

    A failed request endpoint is unrecoverable by rerouting; that case
    raises :class:`~repro.util.errors.EndpointFailedError` (a
    :class:`~repro.util.errors.SessionError`) so callers can tell "the
    session itself is dead" apart from ordinary routing failures.
    """
    dyn = DynamicOverlay(
        framework, restructure_tolerance=None, track_quality=False
    )
    router = HierarchicalRouter(dyn.hfc)
    bound_version = dyn.version

    def reroute(failed: FrozenSet[ProxyId]) -> ServicePath:
        nonlocal bound_version
        dead = {
            p
            for p in (request.source_proxy, request.destination_proxy)
            if p in failed
        }
        if dead:
            raise EndpointFailedError(
                f"session endpoint(s) {sorted(dead, key=repr)} failed; "
                "rerouting cannot recover a dead endpoint"
            )
        for proxy in sorted(failed):
            if dyn.is_member(proxy):
                dyn.leave(proxy)
        if dyn.version != bound_version:
            router.rebind(dyn.hfc)
            bound_version = dyn.version
        return router.route(request)

    return reroute
