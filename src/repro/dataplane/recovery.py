"""Failure recovery: re-routing around failed proxies.

Composes the dynamic-membership machinery with the hierarchical router: a
failed proxy is treated as having left the overlay (its cluster shrinks,
border pairs it served are re-selected), and the request is re-resolved on
the rebuilt HFC topology. This is exactly the repair story the paper's
Section 7 restructuring mechanism enables.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.core.framework import HFCFramework
from repro.membership.churn import DynamicOverlay
from repro.overlay.network import ProxyId
from repro.routing.hierarchical import HierarchicalRouter
from repro.routing.path import ServicePath
from repro.services.request import ServiceRequest
from repro.util.errors import RoutingError


def make_rerouter(framework: HFCFramework, request: ServiceRequest):
    """A :data:`~repro.dataplane.session.Rerouter` for *request*.

    Returns a callable that, given the failed proxy set, removes those
    proxies from a dynamic view of the overlay and re-routes the request
    hierarchically on the rebuilt topology.
    """

    def reroute(failed: FrozenSet[ProxyId]) -> ServicePath:
        if request.source_proxy in failed or request.destination_proxy in failed:
            raise RoutingError("a request endpoint failed; session cannot recover")
        dyn = DynamicOverlay(framework, restructure_tolerance=None)
        for proxy in failed:
            if proxy in dyn.clustering.labels:
                dyn.leave(proxy)
        router = HierarchicalRouter(dyn.hfc)
        return router.route(request)

    return reroute
