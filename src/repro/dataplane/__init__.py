"""Data-plane simulation: streaming sessions, failure injection, recovery."""

from repro.dataplane.recovery import make_rerouter
from repro.dataplane.session import (
    PacketRecord,
    SessionReport,
    StreamingSession,
    path_nominal_latency,
)

__all__ = [
    "PacketRecord",
    "SessionReport",
    "StreamingSession",
    "make_rerouter",
    "path_nominal_latency",
]
