"""Data-plane simulation: streaming a flow along a concrete service path.

Path *finding* is only useful if data then flows; this module simulates the
runtime half on the discrete-event engine. A :class:`StreamingSession`
pushes a packet train from the path's source to its destination: every
overlay link costs its ground-truth delay, every service hop adds a
processing delay.

Failures are first-class: a proxy can be scheduled to **fail** mid-session
(it silently stops forwarding — the hard case). The destination runs a
per-packet watchdog; when an expected packet times out it asks a
*rerouter* for a replacement path that avoids the failed proxies and
signals the source to switch. The session report separates delivered /
lost packets and records the recovery timeline, enabling the
failure-injection test suite and the recovery bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.netsim.eventsim import Message, Process, Simulator
from repro.overlay.network import OverlayNetwork, ProxyId
from repro.routing.path import ServicePath
from repro.telemetry import Telemetry
from repro.util.errors import RoutingError

#: builds a replacement path avoiding the given proxies (or raises)
Rerouter = Callable[[frozenset], ServicePath]


@dataclass
class PacketRecord:
    """Fate of one packet."""

    seq: int
    sent_at: float
    delivered_at: Optional[float] = None
    path_version: int = 1

    @property
    def delivered(self) -> bool:
        return self.delivered_at is not None

    @property
    def latency(self) -> Optional[float]:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at


@dataclass
class SessionReport:
    """Outcome of a streaming session."""

    records: List[PacketRecord]
    nominal_latency: float
    failed_proxies: Tuple[ProxyId, ...]
    recovery_started_at: Optional[float] = None
    recovered_at: Optional[float] = None
    final_path: Optional[ServicePath] = None

    @property
    def delivered(self) -> int:
        return sum(1 for r in self.records if r.delivered)

    @property
    def lost(self) -> int:
        return len(self.records) - self.delivered

    @property
    def mean_latency(self) -> float:
        latencies = [r.latency for r in self.records if r.latency is not None]
        if not latencies:
            return float("nan")
        return sum(latencies) / len(latencies)


def path_nominal_latency(
    path: ServicePath, overlay: OverlayNetwork, processing_delay: float
) -> float:
    """Link delays plus per-service processing along *path*."""
    proxies = path.proxies()
    total = sum(overlay.true_delay(u, v) for u, v in zip(proxies, proxies[1:]))
    total += processing_delay * len(path.service_hops())
    return total


class _Forwarder(Process):
    """One hop of one path version: receive a packet, process, forward."""

    def __init__(self, session: "StreamingSession", version: int, index: int) -> None:
        super().__init__(address=("hop", version, index))
        self.session = session
        self.version = version
        self.index = index

    def receive(self, message: Message) -> None:
        assert self.simulator is not None
        path = self.session.paths[self.version]
        hop = path.hops[self.index]
        if hop.proxy in self.session.failed and (
            self.simulator.now >= self.session.fail_times[hop.proxy]
        ):
            return  # silent failure: the packet dies here
        if self.index == len(path.hops) - 1:
            self.session._delivered(message.payload, self.simulator.now)
            return
        nxt = path.hops[self.index + 1]
        delay = self.session.overlay.true_delay(hop.proxy, nxt.proxy)
        if hop.service is not None:
            delay += self.session.processing_delay
        self.send(
            ("hop", self.version, self.index + 1),
            "packet",
            message.payload,
            delay=delay,
            size=1,
        )


class _Watchdog(Process):
    """Destination-side loss detection and recovery trigger."""

    def __init__(self, session: "StreamingSession") -> None:
        super().__init__(address=("watchdog",))
        self.session = session

    def check(self, seq: int) -> None:
        session = self.session
        record = session.report.records[seq]
        if record.delivered or session.recovery_triggered:
            return
        session._trigger_recovery()


class StreamingSession:
    """Simulate a packet train over a service path, with optional failures.

    Args:
        overlay: delay oracle.
        path: the concrete service path to stream over.
        packet_count: packets in the train.
        packet_interval: inter-packet emission gap (ms).
        processing_delay: per-service processing time at service hops (ms).
        detection_margin: extra wait beyond the nominal latency before the
            destination declares a packet lost.
    """

    def __init__(
        self,
        overlay: OverlayNetwork,
        path: ServicePath,
        *,
        packet_count: int = 40,
        packet_interval: float = 5.0,
        processing_delay: float = 1.0,
        detection_margin: float = 20.0,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if packet_count < 1:
            raise RoutingError("packet_count must be >= 1")
        self.overlay = overlay
        self.packet_count = packet_count
        self.packet_interval = packet_interval
        self.processing_delay = processing_delay
        self.detection_margin = detection_margin

        self.paths: Dict[int, ServicePath] = {1: path}
        self.active_version = 1
        self.failed: frozenset = frozenset()
        self.fail_times: Dict[ProxyId, float] = {}
        self.rerouter: Optional[Rerouter] = None
        self.recovery_triggered = False
        self.sim = Simulator(telemetry=telemetry)
        self.report = SessionReport(
            records=[],
            nominal_latency=path_nominal_latency(
                path, overlay, processing_delay
            ),
            failed_proxies=(),
        )
        self._watchdog = _Watchdog(self)

    # -- public API ---------------------------------------------------------------

    def run(
        self,
        *,
        failures: Optional[Dict[ProxyId, float]] = None,
        rerouter: Optional[Rerouter] = None,
    ) -> SessionReport:
        """Stream the packet train; returns the session report.

        Args:
            failures: ``{proxy: fail_time}`` — each proxy silently stops
                forwarding at its fail time.
            rerouter: called with the set of failed proxies once loss is
                detected; must return a replacement path (or raise).
        """
        failures = failures or {}
        self.failed = frozenset(failures)
        self.fail_times = dict(failures)
        self.rerouter = rerouter
        self.report.failed_proxies = tuple(sorted(failures, key=repr))
        for proxy, fail_time in sorted(failures.items(), key=lambda kv: repr(kv[0])):
            self.sim.telemetry.events.record(
                "session.failure_injected", proxy=proxy, fail_time=fail_time
            )

        self.sim.register(self._watchdog)
        self._register_version(1)

        for seq in range(self.packet_count):
            send_at = seq * self.packet_interval
            self.report.records.append(
                PacketRecord(seq=seq, sent_at=send_at)
            )
            self.sim.schedule(send_at, lambda s=seq: self._emit(s))
            deadline = send_at + self.report.nominal_latency + self.detection_margin
            self.sim.schedule(deadline, lambda s=seq: self._watchdog.check(s))
        self.sim.run_all()
        self.report.final_path = self.paths[self.active_version]
        self._record_outcome()
        return self.report

    def _record_outcome(self) -> None:
        """Aggregate the packet fates into the session's telemetry scope."""
        telemetry = self.sim.telemetry
        registry = telemetry.registry
        delivered = registry.counter("session.packets", outcome="delivered")
        lost = registry.counter("session.packets", outcome="lost")
        latency = registry.histogram("session.packet.latency")
        for record in self.report.records:
            if record.latency is not None:
                delivered.inc()
                latency.observe(record.latency)
            else:
                lost.inc()
        if self.report.recovered_at is not None:
            registry.histogram("session.recovery.time").observe(
                self.report.recovered_at - (self.report.recovery_started_at or 0.0)
            )
        telemetry.publish()

    # -- internals ----------------------------------------------------------------

    def _register_version(self, version: int) -> None:
        for index in range(len(self.paths[version].hops)):
            self.sim.register(_Forwarder(self, version, index))

    def _emit(self, seq: int) -> None:
        version = self.active_version
        record = self.report.records[seq]
        record.sent_at = self.sim.now
        record.path_version = version
        # inject directly at hop 0 (the source proxy)
        self.sim.send(
            Message(("source",), ("hop", version, 0), "packet", seq, size=1),
            delay=0.0,
        )

    def _delivered(self, seq: int, now: float) -> None:
        record = self.report.records[seq]
        if record.delivered_at is None:
            record.delivered_at = now
            if (
                self.recovery_triggered
                and self.report.recovered_at is None
                and record.path_version > 1
            ):
                self.report.recovered_at = now
                self.sim.telemetry.events.record(
                    "session.recovered", seq=seq, path_version=record.path_version
                )

    def _trigger_recovery(self) -> None:
        self.recovery_triggered = True
        self.report.recovery_started_at = self.sim.now
        self.sim.telemetry.events.record(
            "session.recovery_started",
            failed=sorted(self.failed, key=repr),
            rerouter=self.rerouter is not None,
        )
        if self.rerouter is None:
            return
        new_path = self.rerouter(self.failed)
        overlap = self.failed & set(new_path.proxies())
        if overlap:
            raise RoutingError(
                f"rerouter returned a path through failed proxies {overlap}"
            )
        version = self.active_version + 1
        self.paths[version] = new_path
        self._register_version(version)
        # the switch command travels destination -> source before taking effect
        old = self.paths[self.active_version]
        switch_delay = self.overlay.true_delay(old.destination, old.source)

        def switch() -> None:
            self.active_version = version

        self.sim.schedule(switch_delay, switch)
