"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything originating here with a single ``except`` clause while still
being able to discriminate the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class GraphError(ReproError):
    """A graph operation received an invalid graph or node."""


class TopologyError(ReproError):
    """A network-topology generator was asked for an impossible topology."""


class EmbeddingError(ReproError):
    """Coordinate embedding failed (bad landmarks, dimension, or data)."""


class ClusteringError(ReproError):
    """Clustering was given invalid input or produced an invalid partition."""


class ServiceModelError(ReproError):
    """A service graph or service request is malformed."""


class RoutingError(ReproError):
    """No feasible service path exists, or routing input is invalid."""


class NoFeasiblePathError(RoutingError):
    """The requested service graph cannot be satisfied by the overlay.

    Raised when no mapping of the requested services onto proxies connects the
    source proxy to the destination proxy.
    """


class SessionError(RoutingError):
    """A data-plane streaming session cannot continue.

    Subclasses :class:`RoutingError` so existing recovery-policy code that
    treats any routing failure as "session lost" keeps working, while new
    callers can discriminate session-level failures precisely.
    """


class EndpointFailedError(SessionError):
    """A session endpoint (source or destination proxy) failed.

    Unlike a mid-path failure this is unrecoverable: no reroute can avoid
    the endpoints, so the session must be abandoned.
    """


class StateError(ReproError):
    """State tables or the distribution protocol were used inconsistently."""


class FaultError(ReproError):
    """A fault plan or fault injector was configured inconsistently."""


class TrafficError(ReproError):
    """A traffic-engine configuration or run was invalid."""


class MembershipError(ReproError):
    """Dynamic membership operation was invalid (e.g. unknown proxy)."""


class TelemetryError(ReproError):
    """A telemetry primitive was declared or used inconsistently."""
