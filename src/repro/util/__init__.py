"""Shared plumbing: RNG handling, validation, exceptions."""

from repro.util.errors import (
    ClusteringError,
    EmbeddingError,
    GraphError,
    MembershipError,
    NoFeasiblePathError,
    ReproError,
    RoutingError,
    ServiceModelError,
    StateError,
    TopologyError,
    TrafficError,
)
from repro.util.rng import RngLike, ensure_rng, spawn
from repro.util.sampling import PopularitySampler, zipf_weights

__all__ = [
    "ClusteringError",
    "EmbeddingError",
    "GraphError",
    "MembershipError",
    "NoFeasiblePathError",
    "PopularitySampler",
    "ReproError",
    "RngLike",
    "RoutingError",
    "ServiceModelError",
    "StateError",
    "TopologyError",
    "TrafficError",
    "ensure_rng",
    "spawn",
    "zipf_weights",
]
