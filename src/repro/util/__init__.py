"""Shared plumbing: RNG handling, validation, exceptions."""

from repro.util.errors import (
    ClusteringError,
    EmbeddingError,
    GraphError,
    MembershipError,
    NoFeasiblePathError,
    ReproError,
    RoutingError,
    ServiceModelError,
    StateError,
    TopologyError,
)
from repro.util.rng import RngLike, ensure_rng, spawn

__all__ = [
    "ClusteringError",
    "EmbeddingError",
    "GraphError",
    "MembershipError",
    "NoFeasiblePathError",
    "ReproError",
    "RngLike",
    "RoutingError",
    "ServiceModelError",
    "StateError",
    "TopologyError",
    "ensure_rng",
    "spawn",
]
