"""Seeded random-number plumbing.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`random.Random`, or ``None`` (fresh nondeterministic state).
:func:`ensure_rng` normalises those three forms so call sites stay one line.

A dedicated helper :func:`spawn` derives an independent child generator from a
parent, so that e.g. topology generation and workload generation driven by the
same experiment seed do not interleave draws (adding a draw to one would
otherwise perturb the other).
"""

from __future__ import annotations

import random
from typing import Optional, Union

RngLike = Union[int, random.Random, None]


def ensure_rng(seed: RngLike = None) -> random.Random:
    """Return a ``random.Random`` for *seed*.

    ``seed`` may be an ``int`` (seeds a fresh generator), an existing
    ``random.Random`` (returned as-is), or ``None`` (fresh, OS-seeded).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn(rng: random.Random, label: str) -> random.Random:
    """Derive an independent child generator from *rng*, keyed by *label*.

    The child's seed is drawn from the parent, mixed with a stable hash of
    ``label`` so distinct labels yield distinct streams even when called in
    a different order across versions.
    """
    base = rng.getrandbits(64)
    mix = _stable_hash(label)
    return random.Random(base ^ mix)


def _stable_hash(text: str) -> int:
    """A process-independent 64-bit FNV-1a hash of *text*.

    ``hash()`` is salted per process for strings, which would break
    reproducibility across runs; FNV-1a is stable.
    """
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value
