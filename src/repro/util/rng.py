"""Seeded random-number plumbing.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`random.Random`, or ``None`` (fresh nondeterministic state).
:func:`ensure_rng` normalises those three forms so call sites stay one line.

A dedicated helper :func:`spawn` derives an independent child generator from a
parent, so that e.g. topology generation and workload generation driven by the
same experiment seed do not interleave draws (adding a draw to one would
otherwise perturb the other).
"""

from __future__ import annotations

import random
from typing import Union

RngLike = Union[int, random.Random, None]


def ensure_rng(seed: RngLike = None) -> random.Random:
    """Return a ``random.Random`` for *seed*.

    ``seed`` may be an ``int`` (seeds a fresh generator), an existing
    ``random.Random`` (returned as-is), or ``None`` (fresh, OS-seeded).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn(rng: random.Random, label: str) -> random.Random:
    """Derive an independent child generator from *rng*, keyed by *label*.

    The child's seed is drawn from the parent, mixed with a stable hash of
    ``label`` so distinct labels yield distinct streams even when called in
    a different order across versions.
    """
    base = rng.getrandbits(64)
    mix = _stable_hash(label)
    return random.Random(base ^ mix)


def numpy_generator(seed: RngLike = None, label: str = "numpy"):
    """A ``numpy.random.Generator`` derived from the library's RNG plumbing.

    The vectorized construction kernels occasionally need bulk random draws
    (e.g. random topologies in the property/benchmark suites). Drawing them
    from ``numpy`` directly would fork an undocumented second seed universe,
    so this helper derives the numpy generator from the same
    ``random.Random`` stream everything else uses: the parent contributes 64
    seed bits (one ``getrandbits`` draw, exactly like :func:`spawn`) mixed
    with the stable hash of *label*.

    Two consequences, by design:

    * the numpy stream is a pure function of ``(seed, label, draws so far)``
      — reruns reproduce it, and distinct labels give independent streams;
    * the parent ``random.Random`` advances by exactly one draw, the same
      perturbation :func:`spawn` makes, so interleaving ``rng.gauss``-based
      and numpy-based consumers stays deterministic (no silent drift between
      the scalar and vectorized code paths).
    """
    import numpy as np

    rng = ensure_rng(seed)
    base = rng.getrandbits(64)
    return np.random.default_rng(base ^ _stable_hash(label))


def _stable_hash(text: str) -> int:
    """A process-independent 64-bit FNV-1a hash of *text*.

    ``hash()`` is salted per process for strings, which would break
    reproducibility across runs; FNV-1a is stable.
    """
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value
