"""Shared popularity sampling: uniform and Zipf-weighted draws.

Both the batch workload generator (``experiments/workload.py``) and the
open-loop traffic engine (``repro.traffic``) draw service names from the
same popularity models; this module is the single home for the weighting
code so the two layers cannot drift.

Determinism contract: :meth:`PopularitySampler.draw` consumes exactly one
``rng.choice`` call in uniform mode and exactly one ``rng.choices`` call
in zipf mode — the same draw sequence the original workload sampler made,
so seeds produce bit-identical request streams across the refactor.
"""

from __future__ import annotations

import random
from typing import Generic, List, Optional, Sequence, TypeVar

from repro.util.errors import ReproError

T = TypeVar("T")

#: popularity models understood by :class:`PopularitySampler`
POPULARITY_MODELS = ("uniform", "zipf")


def zipf_weights(count: int, exponent: float = 1.0) -> List[float]:
    """Zipf(rank) weights for *count* items: item i gets ``1/(i+1)**s``.

    The first item is the most popular; weights are unnormalised (the
    stdlib's ``random.choices`` normalises internally, and keeping the raw
    form preserves the historical draw sequence).
    """
    if count < 1:
        raise ReproError("zipf_weights needs at least one item")
    if exponent <= 0:
        raise ReproError("zipf exponent must be positive")
    return [1.0 / (rank + 1) ** exponent for rank in range(count)]


class PopularitySampler(Generic[T]):
    """Draws items by uniform or Zipf(rank) popularity.

    Items keep their given order; in zipf mode the first item is the most
    popular. The sampler itself is stateless — randomness comes from the
    ``rng`` passed to each :meth:`draw`, so one sampler can serve several
    independent streams.
    """

    def __init__(
        self,
        items: Sequence[T],
        *,
        popularity: str = "uniform",
        exponent: float = 1.0,
    ) -> None:
        if not items:
            raise ReproError("PopularitySampler needs a non-empty item list")
        if popularity not in POPULARITY_MODELS:
            raise ReproError(
                f"popularity must be one of {POPULARITY_MODELS}, got {popularity!r}"
            )
        self._items = list(items)
        self.popularity = popularity
        self.exponent = exponent
        self._weights: Optional[List[float]] = (
            None if popularity == "uniform" else zipf_weights(len(items), exponent)
        )

    @property
    def items(self) -> List[T]:
        return list(self._items)

    @property
    def weights(self) -> Optional[List[float]]:
        """The raw Zipf weights (None in uniform mode)."""
        return None if self._weights is None else list(self._weights)

    def draw(self, rng: random.Random) -> T:
        """One item, drawn with the configured popularity from *rng*."""
        if self._weights is None:
            return rng.choice(self._items)
        return rng.choices(self._items, weights=self._weights, k=1)[0]
