"""Small argument-validation helpers shared across the library.

These raise :class:`ValueError`/:class:`TypeError` (standard library
conventions) for programmer errors, reserving the :mod:`repro.util.errors`
hierarchy for domain failures.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def require_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def require_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def require_at_least(name: str, value: float, minimum: float) -> None:
    """Raise ``ValueError`` unless ``value >= minimum``."""
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")


def require_non_empty(name: str, items: Sequence) -> None:
    """Raise ``ValueError`` if *items* is empty."""
    if len(items) == 0:
        raise ValueError(f"{name} must not be empty")


def require_unique(name: str, items: Iterable) -> None:
    """Raise ``ValueError`` if *items* contains duplicates."""
    seen = set()
    for item in items:
        if item in seen:
            raise ValueError(f"{name} contains duplicate element {item!r}")
        seen.add(item)
