"""Composable-services model: catalogs, service graphs, requests, placement."""

from repro.services.catalog import (
    ServiceCatalog,
    ServiceName,
    generic_catalog,
    multimedia_catalog,
    scaled_catalog,
    web_catalog,
)
from repro.services.graph import ServiceGraph, branching_graph, linear_graph
from repro.services.placement import (
    Placement,
    aggregate_capability,
    install_services,
    providers_of,
)
from repro.services.request import ServiceRequest

__all__ = [
    "Placement",
    "ServiceCatalog",
    "ServiceGraph",
    "ServiceName",
    "ServiceRequest",
    "aggregate_capability",
    "branching_graph",
    "generic_catalog",
    "install_services",
    "linear_graph",
    "multimedia_catalog",
    "providers_of",
    "scaled_catalog",
    "web_catalog",
]
