"""Service names and catalogs (paper Section 2.1).

Services are uniquely named middleware/application functions (watermarking,
transcoding, translation, ...). The paper's state aggregation relies only on
unique names and set union, so a service is represented by its name string
and a catalog is an ordered collection of names.

The catalog also carries optional human-readable descriptions so the example
applications can mirror the paper's two motivating scenarios (MPEG
customization and web-document processing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Sequence

from repro.util.errors import ServiceModelError

ServiceName = str


@dataclass(frozen=True)
class ServiceCatalog:
    """An ordered, duplicate-free collection of service names."""

    names: Sequence[ServiceName]
    descriptions: Dict[ServiceName, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.names:
            raise ServiceModelError("catalog must contain at least one service")
        if len(set(self.names)) != len(self.names):
            raise ServiceModelError("catalog contains duplicate service names")
        unknown = set(self.descriptions) - set(self.names)
        if unknown:
            raise ServiceModelError(f"descriptions for unknown services: {sorted(unknown)}")

    def __len__(self) -> int:
        return len(self.names)

    def __iter__(self) -> Iterator[ServiceName]:
        return iter(self.names)

    def __contains__(self, name: ServiceName) -> bool:
        return name in set(self.names)

    def describe(self, name: ServiceName) -> str:
        """Human-readable description of *name* (falls back to the name)."""
        if name not in set(self.names):
            raise ServiceModelError(f"unknown service {name!r}")
        return self.descriptions.get(name, name)


def generic_catalog(size: int, prefix: str = "s") -> ServiceCatalog:
    """A catalog of *size* generically named services: s0, s1, ..."""
    if size < 1:
        raise ServiceModelError(f"catalog size must be >= 1, got {size}")
    return ServiceCatalog(names=[f"{prefix}{i}" for i in range(size)])


def multimedia_catalog() -> ServiceCatalog:
    """The paper's first motivating scenario: MPEG stream customization."""
    descriptions = {
        "watermark": "embed a copyright watermark",
        "mpeg_to_h261": "transcode MPEG to H.261 to reduce bandwidth",
        "mix_audio": "merge a background-music track into the stream",
        "compress": "recompress for lower bandwidth",
        "mpeg2jpeg": "transcode MPEG frames to JPEG",
        "jpeg2h261": "transcode JPEG frames to H.261",
        "resize": "downscale the video frame size",
        "caption": "burn subtitles into the frames",
    }
    return ServiceCatalog(names=list(descriptions), descriptions=descriptions)


def web_catalog() -> ServiceCatalog:
    """The paper's second motivating scenario: web-document customization."""
    descriptions = {
        "translate": "translate the document to another language",
        "merge": "merge with a document from another machine",
        "format": "re-format for the client device",
        "summarize": "produce an abstract of the document",
        "compress_doc": "compress the document for transfer",
        "render_thumbnails": "render image thumbnails",
    }
    return ServiceCatalog(names=list(descriptions), descriptions=descriptions)


def scaled_catalog(proxy_count: int, services_per_proxy_mean: float = 7.0,
                   instances_per_service: float = 8.0) -> ServiceCatalog:
    """A generically named catalog sized so each service has a bounded
    number of instances.

    With ``n`` proxies each installing ~``services_per_proxy_mean`` services,
    a catalog of ``n * mean / instances_per_service`` names yields about
    *instances_per_service* replicas per service — keeping service-DAG sizes
    stable as the overlay grows, which is how the paper's request mix stays
    satisfiable at every scale.
    """
    if proxy_count < 1:
        raise ServiceModelError("proxy_count must be >= 1")
    size = max(4, round(proxy_count * services_per_proxy_mean / instances_per_service))
    return generic_catalog(size)
