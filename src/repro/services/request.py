"""Service requests: source proxy + service graph + destination proxy."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.services.graph import ServiceGraph
from repro.util.errors import ServiceModelError

ProxyId = Hashable


@dataclass(frozen=True)
class ServiceRequest:
    """A client's request for a composed service path (paper Section 2.2).

    The request asks for a mapping of the service graph's slots onto proxies
    so that data flowing from *source_proxy* to *destination_proxy* is
    processed by a feasible configuration of *service_graph* along the way.

    Attributes:
        source_proxy: where the raw data originates (e.g. the media server's
            proxy).
        service_graph: the dependency DAG of requested services.
        destination_proxy: the proxy feeding the client.
    """

    source_proxy: ProxyId
    service_graph: ServiceGraph
    destination_proxy: ProxyId

    def __post_init__(self) -> None:
        if self.source_proxy is None or self.destination_proxy is None:
            raise ServiceModelError("request endpoints must not be None")

    @property
    def length(self) -> int:
        """Number of service slots requested."""
        return self.service_graph.slot_count

    def __repr__(self) -> str:
        names = [
            self.service_graph.service_of(s)
            for s in self.service_graph.topological_order()
        ]
        return (
            f"ServiceRequest({self.source_proxy!r} -> "
            f"{names} -> {self.destination_proxy!r})"
        )
