"""Service graphs (SG): linear and non-linear dependency DAGs.

A service request carries an SG expressing *which* services are needed and
*in what order* they may be composed (paper Section 2.1, Figure 2). An SG is
a DAG whose nodes are service *slots* — a slot has a unique id plus the name
of the service filling it, so the same service may legitimately appear twice
(the MPEG example compresses twice). A **feasible configuration** is any
directed path from a source slot (no predecessors) to a sink slot (no
successors): a linear SG has exactly one configuration, a non-linear SG may
have many, and the router picks whichever configuration yields the shortest
mapped path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.services.catalog import ServiceName
from repro.util.errors import ServiceModelError

SlotId = int


@dataclass(frozen=True)
class ServiceGraph:
    """An immutable service-dependency DAG.

    Attributes:
        services: slot id -> service name.
        edges: dependency edges ``(a, b)`` meaning slot a feeds slot b
            (the paper's ``s_a -> s_b``).
    """

    services: Dict[SlotId, ServiceName]
    edges: FrozenSet[Tuple[SlotId, SlotId]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.services:
            raise ServiceModelError("service graph must contain at least one slot")
        object.__setattr__(self, "edges", frozenset(self.edges))
        for a, b in self.edges:
            if a not in self.services or b not in self.services:
                raise ServiceModelError(f"edge ({a}, {b}) references unknown slot")
            if a == b:
                raise ServiceModelError(f"self-dependency on slot {a}")
        # Reject cycles up front: everything downstream assumes a DAG.
        self.topological_order()

    # -- structure --------------------------------------------------------

    @property
    def slot_count(self) -> int:
        """Number of service slots."""
        return len(self.services)

    def slots(self) -> List[SlotId]:
        """All slot ids in insertion order."""
        return list(self.services)

    def service_of(self, slot: SlotId) -> ServiceName:
        """The service name filling *slot*."""
        try:
            return self.services[slot]
        except KeyError:
            raise ServiceModelError(f"unknown slot {slot}") from None

    def service_names(self) -> Set[ServiceName]:
        """The distinct service names appearing in the SG."""
        return set(self.services.values())

    def successors(self, slot: SlotId) -> List[SlotId]:
        """Slots directly depending on *slot*."""
        return sorted(b for a, b in self.edges if a == slot)

    def predecessors(self, slot: SlotId) -> List[SlotId]:
        """Slots *slot* directly depends on."""
        return sorted(a for a, b in self.edges if b == slot)

    def source_slots(self) -> List[SlotId]:
        """Slots with no predecessors (the SG's *source services*)."""
        targets = {b for _, b in self.edges}
        return [s for s in self.services if s not in targets]

    def sink_slots(self) -> List[SlotId]:
        """Slots with no successors (the SG's *sink services*)."""
        origins = {a for a, _ in self.edges}
        return [s for s in self.services if s not in origins]

    @property
    def is_linear(self) -> bool:
        """True if the SG is a single chain (one configuration)."""
        order = self.topological_order()
        if len(order) <= 1:
            return not self.edges
        expected = {(order[i], order[i + 1]) for i in range(len(order) - 1)}
        return self.edges == frozenset(expected)

    def topological_order(self) -> List[SlotId]:
        """Slots in a deterministic topological order.

        Kahn's algorithm with sorted tie-breaking; raises
        :class:`ServiceModelError` on a cycle.
        """
        indegree = {s: 0 for s in self.services}
        for _, b in self.edges:
            indegree[b] += 1
        ready = sorted(s for s, d in indegree.items() if d == 0)
        order: List[SlotId] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            changed = False
            for succ in self.successors(node):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
                    changed = True
            if changed:
                ready.sort()
        if len(order) != len(self.services):
            raise ServiceModelError("service graph contains a cycle")
        return order

    # -- configurations ------------------------------------------------------

    def configurations(self, limit: int = 10000) -> List[List[SlotId]]:
        """All feasible configurations (source-slot -> sink-slot paths).

        Exponential in the worst case, so guarded by *limit*; intended for
        small SGs, tests, and brute-force verification of the routers.
        """
        sinks = set(self.sink_slots())
        results: List[List[SlotId]] = []

        def extend(path: List[SlotId]) -> None:
            if len(results) >= limit:
                raise ServiceModelError(f"more than {limit} configurations")
            node = path[-1]
            if node in sinks:
                results.append(list(path))
                return
            for succ in self.successors(node):
                path.append(succ)
                extend(path)
                path.pop()

        for source in self.source_slots():
            extend([source])
        return results

    def is_configuration(self, slots: Sequence[SlotId]) -> bool:
        """True if *slots* is a feasible configuration of this SG."""
        if not slots:
            return False
        if slots[0] not in self.source_slots() or slots[-1] not in self.sink_slots():
            return False
        return all((a, b) in self.edges for a, b in zip(slots, slots[1:]))


def linear_graph(service_names: Sequence[ServiceName]) -> ServiceGraph:
    """A linear SG: names[0] -> names[1] -> ... (paper Figure 2(a))."""
    if not service_names:
        raise ServiceModelError("linear service graph needs at least one service")
    services = {i: name for i, name in enumerate(service_names)}
    edges = {(i, i + 1) for i in range(len(service_names) - 1)}
    return ServiceGraph(services=services, edges=frozenset(edges))


def branching_graph(
    chains: Sequence[Sequence[ServiceName]],
    tail: Sequence[ServiceName] = (),
) -> ServiceGraph:
    """A non-linear SG: several alternative source chains merging into one tail.

    Example — the paper's Figure 2(b) shape::

        branching_graph(chains=[["s0"], ["s3"]], tail=["s1", "s2"])

    gives configurations s0->s1->s2 and s3->s1->s2; add extra edges for
    skip configurations via :class:`ServiceGraph` directly.
    """
    if not chains or not any(chains):
        raise ServiceModelError("branching graph needs at least one non-empty chain")
    services: Dict[SlotId, ServiceName] = {}
    edges: Set[Tuple[SlotId, SlotId]] = set()
    next_id = 0
    chain_tails: List[SlotId] = []
    for chain in chains:
        if not chain:
            raise ServiceModelError("chains must be non-empty")
        prev = None
        for name in chain:
            services[next_id] = name
            if prev is not None:
                edges.add((prev, next_id))
            prev = next_id
            next_id += 1
        assert prev is not None
        chain_tails.append(prev)
    prev_tail = None
    for name in tail:
        services[next_id] = name
        if prev_tail is None:
            for t in chain_tails:
                edges.add((t, next_id))
        else:
            edges.add((prev_tail, next_id))
        prev_tail = next_id
        next_id += 1
    return ServiceGraph(services=services, edges=frozenset(edges))
