"""Static service installation on proxies (paper Section 2.2, Table 1).

The paper assumes no active services: each proxy carries a fixed set of
services installed ahead of time, which makes proxies functionally
heterogeneous. Table 1 installs between 4 and 10 services per proxy; this
module reproduces that and guarantees the whole catalog stays available
somewhere (so the workload generator can always build satisfiable requests).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Sequence, Set

from repro.services.catalog import ServiceCatalog, ServiceName
from repro.util.errors import ServiceModelError
from repro.util.rng import RngLike, ensure_rng

ProxyId = Hashable
Placement = Dict[ProxyId, FrozenSet[ServiceName]]


def install_services(
    proxies: Sequence[ProxyId],
    catalog: ServiceCatalog,
    *,
    min_per_proxy: int = 4,
    max_per_proxy: int = 10,
    seed: RngLike = None,
) -> Placement:
    """Install a uniform-random number of catalog services on each proxy.

    Each proxy receives ``U[min_per_proxy, max_per_proxy]`` *distinct*
    services drawn uniformly from the catalog. Afterwards, any catalog
    service that no proxy received is force-installed on a random proxy so
    the system-wide union always equals the catalog (the paper's request
    generator implicitly assumes every requested service exists somewhere).

    Returns ``{proxy: frozenset(service names)}``.
    """
    if not proxies:
        raise ServiceModelError("cannot install services on zero proxies")
    if not 1 <= min_per_proxy <= max_per_proxy:
        raise ServiceModelError(
            f"invalid per-proxy bounds [{min_per_proxy}, {max_per_proxy}]"
        )
    if max_per_proxy > len(catalog):
        raise ServiceModelError(
            f"max_per_proxy={max_per_proxy} exceeds catalog size {len(catalog)}"
        )
    rng = ensure_rng(seed)
    names = list(catalog.names)
    chosen: Dict[ProxyId, Set[ServiceName]] = {}
    for proxy in proxies:
        count = rng.randint(min_per_proxy, max_per_proxy)
        chosen[proxy] = set(rng.sample(names, count))

    installed_union: Set[ServiceName] = set()
    for services in chosen.values():
        installed_union |= services
    missing = [n for n in names if n not in installed_union]
    proxy_list = list(proxies)
    for name in missing:
        chosen[rng.choice(proxy_list)].add(name)

    return {proxy: frozenset(services) for proxy, services in chosen.items()}


def providers_of(placement: Placement, service: ServiceName) -> List[ProxyId]:
    """All proxies hosting *service*, in placement order."""
    return [proxy for proxy, services in placement.items() if service in services]


def aggregate_capability(
    placement: Placement, members: Sequence[ProxyId]
) -> FrozenSet[ServiceName]:
    """Union of the members' service sets — the paper's cluster aggregation.

    This is exactly the aggregate-state rule of Section 4:
    ``S = S_1 ∪ S_2 ∪ ... ∪ S_m``.
    """
    union: Set[ServiceName] = set()
    for proxy in members:
        try:
            union |= placement[proxy]
        except KeyError:
            raise ServiceModelError(f"proxy {proxy!r} has no placement entry") from None
    return frozenset(union)
