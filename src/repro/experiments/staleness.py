"""Experiment E6: routing under stale aggregate state.

The paper's protocol (Section 4) is periodic soft-state, so SCT_C lags
reality whenever services change. This experiment quantifies the cost of
that lag: after the protocol converges, a burst of placement changes is
injected (services uninstalled and installed elsewhere), and the same
workload is routed

* **immediately** — against the now-stale SCT_C an observer proxy holds;
* **after re-convergence** — against fresh tables.

Stale-state routing can fail two ways, both measured: a request can become
*infeasible* (the stale table advertises a service a cluster no longer
has — the intra-cluster conquer step then fails cleanly), or it can be
*silently suboptimal* (a better, newly installed provider is not yet
advertised).

Both passes use ONE :class:`~repro.routing.cache.CachedHierarchicalRouter`
bound to the protocol's capability feed — the router notices the table
revision moved between the passes and drops its CSP cache by itself, which
is exactly the versioned-consumption contract production routers follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.framework import HFCFramework
from repro.experiments.report import ascii_table
from repro.experiments.workload import resolve_requests
from repro.routing.cache import CachedHierarchicalRouter
from repro.services.request import ServiceRequest
from repro.state.protocol import StateDistributionProtocol
from repro.util.rng import RngLike, ensure_rng, spawn


@dataclass
class StalenessRow:
    """Routing outcomes for one table freshness level."""

    state: str
    routed: int
    infeasible: int
    mean_delay: float


def run_staleness_experiment(
    *,
    proxy_count: int = 60,
    change_count: int = 10,
    request_count: int = 80,
    seed: RngLike = None,
) -> List[StalenessRow]:
    """Measure routing quality against stale vs re-converged SCT_C.

    *change_count* placement changes move one random installed service from
    one proxy to another (so the system-wide capability set is preserved and
    every request stays satisfiable *somewhere*).
    """
    rng = ensure_rng(seed)
    framework = HFCFramework.build(
        proxy_count=proxy_count, seed=spawn(rng, "framework")
    )
    protocol = StateDistributionProtocol(framework.hfc, seed=spawn(rng, "protocol"))
    first = protocol.run(max_time=30000.0)
    assert first.converged_at is not None, "baseline protocol did not converge"

    requests: List[ServiceRequest] = [
        framework.random_request(seed=spawn(rng, f"req{i}").getrandbits(48))
        for i in range(request_count)
    ]

    # Inject placement changes: move a service between random proxies.
    change_rng = spawn(rng, "changes")
    placement = framework.overlay.placement
    for _ in range(change_count):
        donor = change_rng.choice(framework.overlay.proxies)
        if not placement[donor]:
            continue
        service = change_rng.choice(sorted(placement[donor]))
        receiver = change_rng.choice(
            [p for p in framework.overlay.proxies if p != donor]
        )
        protocol.update_local_services(donor, placement[donor] - {service})
        protocol.update_local_services(
            receiver, placement[receiver] | {service}
        )

    # One version-aware router for both passes: it reads SCT_C through the
    # protocol's feed and self-invalidates when the table revision moves.
    router = CachedHierarchicalRouter(
        framework.hfc, capability_feed=protocol.capability_feed()
    )

    rows: List[StalenessRow] = []
    rows.append(_route_all("stale tables", framework, requests, router))

    second = protocol.run(max_time=protocol.sim.now + 60000.0)
    assert second.converged_at is not None, "protocol did not re-converge"
    rows.append(_route_all("re-converged", framework, requests, router))
    return rows


def _route_all(
    label: str,
    framework: HFCFramework,
    requests: List[ServiceRequest],
    router: CachedHierarchicalRouter,
) -> StalenessRow:
    # batched resolution: stale-table infeasibility surfaces as per-request
    # errors in the result instead of exceptions interrupting the loop
    result = resolve_requests(router, requests)
    delays: List[float] = [
        path.true_delay(framework.overlay)
        for path in result.paths
        if path is not None
    ]
    return StalenessRow(
        state=label,
        routed=len(delays),
        infeasible=result.infeasible_count,
        mean_delay=float(np.mean(delays)) if delays else float("nan"),
    )


def render_staleness(rows: List[StalenessRow]) -> str:
    """E6 rows as a printable table."""
    return ascii_table(
        ["SCT_C state", "routed", "infeasible", "mean delay"],
        [[r.state, r.routed, r.infeasible, r.mean_delay] for r in rows],
    )
