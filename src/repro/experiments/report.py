"""Plain-text reporting helpers for the experiment harnesses.

Benchmarks print the same rows/series the paper's tables and figures show;
these helpers keep that output consistent and dependency-free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render *rows* as a fixed-width ASCII table with *headers*."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: List[str] = [line]
    out.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    out.append(line)
    for row in str_rows:
        out.append(
            "| " + " | ".join(cell.rjust(w) for cell, w in zip(row, widths)) + " |"
        )
    out.append(line)
    return "\n".join(out)


def series_block(title: str, series: Dict[str, Sequence[float]], xs: Sequence[object]) -> str:
    """Render one figure's data series as labelled rows (x column first)."""
    headers = ["x"] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for values in series.values()])
    return f"{title}\n" + ascii_table(headers, rows)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
