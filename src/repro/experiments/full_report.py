"""One-command regeneration of the whole evaluation.

``generate_full_report`` runs every paper experiment (Table 1, Fig 9(a/b),
Fig 10) plus the ablations and extension studies at the requested scale and
returns one markdown document — the machine-written counterpart of
EXPERIMENTS.md. Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.ablations import (
    render_aggregation_ablation,
    render_border_ablation,
    render_dimension_ablation,
    render_inconsistency_ablation,
    render_landmark_ablation,
    render_mesh_family_ablation,
    render_mesh_information_ablation,
    render_method_ablation,
    run_aggregation_ablation,
    run_border_ablation,
    run_dimension_ablation,
    run_inconsistency_ablation,
    run_landmark_ablation,
    run_mesh_family_ablation,
    run_mesh_information_ablation,
    run_method_ablation,
)
from repro.experiments.environments import EnvironmentSpec, build_environment, scaled_table1
from repro.experiments.overhead import run_overhead_experiment
from repro.experiments.path_efficiency import run_path_efficiency
from repro.experiments.report import ascii_table
from repro.state.protocol import StateDistributionProtocol
from repro.util.rng import RngLike, ensure_rng, spawn


def render_protocol_cost(spec: EnvironmentSpec, *, seed: RngLike = 0) -> str:
    """Run the Section-4 protocol on *spec* and render its cost summary.

    The run's telemetry scope (per-kind delivery counts/bytes and latency
    histograms) is published into the process-wide registry, so a report
    generated with ``--telemetry-out`` carries the protocol's metrics.
    """
    rng = ensure_rng(seed)
    env = build_environment(spec, seed=spawn(rng, "env"))
    protocol = StateDistributionProtocol(
        env.framework.hfc, seed=spawn(rng, "protocol")
    )
    report = protocol.run(max_time=30000.0)
    protocol.sim.telemetry.publish()
    rows = []
    for kind in sorted(report.messages_by_kind):
        latency = report.delivery_latency.get(kind, {})
        rows.append([
            kind,
            report.messages_by_kind[kind],
            f"{latency.get('p50', float('nan')):.1f}",
            f"{latency.get('p95', float('nan')):.1f}",
        ])
    rows.append(["total", report.total_messages, "", ""])
    table = ascii_table(
        ["message kind", "delivered", "latency p50 (ms)", "latency p95 (ms)"],
        rows,
    )
    converged = (
        f"converged at t={report.converged_at:.0f}"
        if report.converged_at is not None
        else "did not converge"
    )
    return (
        f"{spec.proxies} proxies, "
        f"{env.framework.clustering.cluster_count} clusters — {converged}, "
        f"{report.total_size} size units delivered\n{table}"
    )


def generate_full_report(
    *,
    scale: Optional[float] = None,
    topologies: int = 2,
    requests: int = 100,
    include_ablations: bool = True,
    seed: RngLike = 0,
) -> str:
    """Run the complete evaluation and return it as one markdown document.

    Args:
        scale: fraction of the paper's Table 1 sizes (None = REPRO_SCALE).
        topologies: physical topologies per size for Fig 9 / Fig 10.
        requests: client requests per topology (Fig 10) and per ablation.
        include_ablations: also run A1-A8 (slower).
        seed: master seed.
    """
    rng = ensure_rng(seed)
    specs: List[EnvironmentSpec] = scaled_table1(scale)
    sections: List[str] = ["# Evaluation report (generated)", ""]

    sections.append("## Table 1 — environments")
    sections.append(
        ascii_table(
            ["physical", "landmarks", "proxies", "clients",
             "services/proxy", "req. length"],
            [
                [s.physical_nodes, s.landmarks, s.proxies, s.clients,
                 f"{s.min_services}-{s.max_services}",
                 f"{s.min_request_length}-{s.max_request_length}"]
                for s in specs
            ],
        )
    )
    sections.append("")

    sections.append("## Fig 9 — state-maintenance overhead")
    overhead = run_overhead_experiment(
        specs, topologies_per_size=topologies, seed=spawn(rng, "fig9")
    )
    sections.append(overhead.render())
    sections.append("")

    sections.append("## Fig 10 — service-path efficiency")
    efficiency = run_path_efficiency(
        specs,
        strategies=("mesh", "hfc_agg", "hfc_full", "oracle"),
        topologies_per_size=topologies,
        requests_per_topology=requests,
        seed=spawn(rng, "fig10"),
    )
    sections.append(efficiency.render())
    sections.append("")

    sections.append("## Protocol cost — Section 4 state distribution")
    sections.append(render_protocol_cost(specs[0], seed=spawn(rng, "protocol")))
    sections.append("")

    if include_ablations:
        spec = specs[0]
        ablation_runs = [
            ("A1 — coordinate dimension",
             lambda: render_dimension_ablation(
                 run_dimension_ablation(requests=requests, spec=spec,
                                        seed=spawn(rng, "a1")))),
            ("A2 — inconsistency factor",
             lambda: render_inconsistency_ablation(
                 run_inconsistency_ablation(requests=requests, spec=spec,
                                            seed=spawn(rng, "a2")))),
            ("A3 — border selection",
             lambda: render_border_ablation(
                 run_border_ablation(requests=requests, spec=spec,
                                     seed=spawn(rng, "a3")))),
            ("A4 — CSP relaxation method",
             lambda: render_method_ablation(
                 run_method_ablation(requests=requests, spec=spec,
                                     seed=spawn(rng, "a4")))),
            ("A5 — mesh information quality",
             lambda: render_mesh_information_ablation(
                 run_mesh_information_ablation(requests=requests, spec=spec,
                                               seed=spawn(rng, "a5")))),
            ("A6 — cluster representation",
             lambda: render_aggregation_ablation(
                 run_aggregation_ablation(requests=requests, spec=spec,
                                          seed=spawn(rng, "a6")))),
            ("A7 — landmark placement",
             lambda: render_landmark_ablation(
                 run_landmark_ablation(requests=requests, spec=spec,
                                       seed=spawn(rng, "a7")))),
            ("A8 — overlay topology family",
             lambda: render_mesh_family_ablation(
                 run_mesh_family_ablation(requests=requests, spec=spec,
                                          seed=spawn(rng, "a8")))),
        ]
        sections.append("## Ablations")
        for title, runner in ablation_runs:
            sections.append(f"### {title}")
            sections.append(runner())
            sections.append("")

    return "\n".join(sections)
