"""Experiment: state-information maintenance overhead (Fig. 9(a) and 9(b)).

For each overlay size the paper builds 10 different physical topologies,
constructs the HFC hierarchy on each, and reports the mean per-proxy
node-state counts for flat vs hierarchical organisation — once for
coordinates-related state (9(a)) and once for service-capability state
(9(b)). Flat curves are exactly ``n``; hierarchical curves are
``|own cluster| + #borders`` and ``|own cluster| + #clusters``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import FrameworkConfig
from repro.experiments.environments import (
    EnvironmentSpec,
    build_environment,
    scaled_table1,
)
from repro.experiments.report import series_block
from repro.state.overhead import (
    mean_coordinates_overhead,
    mean_service_overhead,
)
from repro.util.rng import RngLike, ensure_rng, spawn


@dataclass
class OverheadPoint:
    """One x-position of Fig. 9: overlay size vs the two curves."""

    proxies: int
    flat: float
    hierarchical: float
    hierarchical_std: float
    topologies: int


@dataclass
class OverheadResult:
    """Both Fig. 9 panels."""

    coordinates: List[OverheadPoint]
    service: List[OverheadPoint]

    def render(self) -> str:
        """The two panels as printable series blocks."""
        xs = [p.proxies for p in self.coordinates]
        blocks = [
            series_block(
                "Fig 9(a) — coordinates-related node-states per proxy",
                {
                    "flat": [p.flat for p in self.coordinates],
                    "hierarchical": [p.hierarchical for p in self.coordinates],
                },
                xs,
            ),
            series_block(
                "Fig 9(b) — service-related node-states per proxy",
                {
                    "flat": [p.flat for p in self.service],
                    "hierarchical": [p.hierarchical for p in self.service],
                },
                xs,
            ),
        ]
        return "\n\n".join(blocks)


def run_overhead_experiment(
    specs: Optional[Sequence[EnvironmentSpec]] = None,
    *,
    topologies_per_size: int = 10,
    config: Optional[FrameworkConfig] = None,
    seed: RngLike = None,
) -> OverheadResult:
    """Regenerate Fig. 9: overhead vs overlay size, flat vs hierarchical.

    Args:
        specs: environment rows (default: Table 1 at the active
            ``REPRO_SCALE``).
        topologies_per_size: physical topologies averaged per size (paper: 10).
        config: framework tunables.
        seed: master seed.
    """
    specs = list(specs) if specs is not None else scaled_table1()
    rng = ensure_rng(seed)
    coordinates: List[OverheadPoint] = []
    service: List[OverheadPoint] = []
    for spec in specs:
        coord_values = []
        service_values = []
        for t in range(topologies_per_size):
            env = build_environment(
                spec, config=config, seed=spawn(rng, f"{spec.proxies}-{t}")
            )
            coord_values.append(mean_coordinates_overhead(env.framework.hfc))
            service_values.append(mean_service_overhead(env.framework.hfc))
        coordinates.append(
            OverheadPoint(
                proxies=spec.proxies,
                flat=float(spec.proxies),
                hierarchical=float(np.mean(coord_values)),
                hierarchical_std=float(np.std(coord_values)),
                topologies=topologies_per_size,
            )
        )
        service.append(
            OverheadPoint(
                proxies=spec.proxies,
                flat=float(spec.proxies),
                hierarchical=float(np.mean(service_values)),
                hierarchical_std=float(np.std(service_values)),
                topologies=topologies_per_size,
            )
        )
    return OverheadResult(coordinates=coordinates, service=service)
