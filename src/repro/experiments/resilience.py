"""Resilience experiment: streaming sessions under proxy failures.

Combines the data plane, the membership machinery, and hierarchical
routing: sessions stream over computed paths while mid-path proxies fail
silently; delivery is measured with and without watchdog-triggered
re-routing. This quantifies the operational value of the paper's
restructuring story (Section 7) beyond clustering quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.framework import HFCFramework
from repro.dataplane.recovery import make_rerouter
from repro.dataplane.session import StreamingSession
from repro.experiments.report import ascii_table
from repro.experiments.stats import Summary, summarize
from repro.routing.hierarchical import HierarchicalRouter
from repro.util.errors import RoutingError
from repro.util.rng import RngLike, ensure_rng, spawn


@dataclass
class ResilienceRow:
    """Delivery statistics for one recovery policy."""

    policy: str
    sessions: int
    delivery_rate: Summary
    recovery_latency: Optional[Summary]


def run_resilience_experiment(
    *,
    proxy_count: int = 60,
    sessions: int = 10,
    packets_per_session: int = 80,
    packet_interval: float = 10.0,
    fail_at: float = 50.0,
    seed: RngLike = None,
) -> List[ResilienceRow]:
    """Stream *sessions* flows, fail one mid-path service proxy per flow,
    and compare delivery with and without re-routing recovery.

    Returns one row per policy ("no recovery", "reroute"), each with the
    mean delivery rate (delivered / sent, 95% CI) and — for the recovering
    policy — the recovery latency (failure to first packet on the new path).
    """
    rng = ensure_rng(seed)
    framework = HFCFramework.build(
        proxy_count=proxy_count, seed=spawn(rng, "framework")
    )
    router = HierarchicalRouter(framework.hfc)
    request_rng = spawn(rng, "requests")

    cases = []
    while len(cases) < sessions:
        request = framework.random_request(seed=request_rng.randint(0, 10**9))
        path = router.route(request)
        victims = [
            h.proxy
            for h in path.service_hops()
            if h.proxy not in (request.source_proxy, request.destination_proxy)
        ]
        if not victims:
            continue
        cases.append((request, path, victims[0]))

    rows: List[ResilienceRow] = []
    for policy in ("no recovery", "reroute"):
        rates: List[float] = []
        recoveries: List[float] = []
        for request, path, victim in cases:
            session = StreamingSession(
                framework.overlay,
                path,
                packet_count=packets_per_session,
                packet_interval=packet_interval,
            )
            rerouter = (
                make_rerouter(framework, request) if policy == "reroute" else None
            )
            try:
                report = session.run(
                    failures={victim: fail_at}, rerouter=rerouter
                )
            except RoutingError:
                rates.append(0.0)
                continue
            rates.append(report.delivered / packets_per_session)
            if report.recovered_at is not None:
                recoveries.append(report.recovered_at - fail_at)
        rows.append(
            ResilienceRow(
                policy=policy,
                sessions=len(cases),
                delivery_rate=summarize(rates),
                recovery_latency=summarize(recoveries) if recoveries else None,
            )
        )
    return rows


def render_resilience(rows: List[ResilienceRow]) -> str:
    """Resilience rows as a printable table."""
    table_rows = []
    for row in rows:
        recovery = (
            str(row.recovery_latency) if row.recovery_latency else "-"
        )
        table_rows.append(
            [row.policy, row.sessions, str(row.delivery_rate), recovery]
        )
    return ascii_table(
        ["policy", "sessions", "delivery rate", "recovery latency (ms)"],
        table_rows,
    )
