"""Ablation studies of the design choices DESIGN.md calls out.

* **A1 — coordinate-space dimension**: the paper (end of Section 6.1) leaves
  "quantify the precisions of the distance maps obtained by using coordinate
  spaces of different dimensions, and see their impact on clustering" as
  future work; this ablation does it.
* **A2 — inconsistency factor k**: Section 3.2 suggests "k = 2, 3, ..." —
  the factor trades cluster count against cluster size, moving both
  overheads and path quality.
* **A3 — border-selection rule**: Section 3 argues closest-pair borders
  maximise routing efficiency and spread load; compared against random
  border pairs.
* **A4 — CSP relaxation method**: the paper's back-tracking modification
  versus the naive external-links-only relaxation and the exact
  entry-border DP.
* **A5 — mesh information quality**: the mesh baseline with coordinate link
  weights (the paper's setting) versus perfectly measured link delays.
* **A6 — cluster representation**: all-borders visibility (the paper's
  design) versus PNNI-style single-logical-node aggregation.
* **A7 — landmark placement**: k-center-spread landmarks versus uniform
  random ones (the paper leaves placement open).
* **A8 — mesh family**: the paper's regular random mesh versus a Gabriel
  proximity mesh (Delaunay-adjacent, reference [2]) versus HFC.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.mstcluster import cluster_nodes
from repro.cluster.quality import separation_ratio, size_statistics
from repro.coords.embedding import embedding_accuracy
from repro.core.config import FrameworkConfig
from repro.experiments.environments import EnvironmentSpec, build_environment, scaled_table1
from repro.experiments.report import ascii_table
from repro.experiments.workload import (
    WorkloadConfig,
    generate_requests,
    resolve_requests,
)
from repro.overlay.hfc import build_hfc
from repro.overlay.mesh import build_mesh
from repro.routing.hierarchical import HierarchicalRouter
from repro.routing.meshrouting import MeshRouter
from repro.state.overhead import mean_coordinates_overhead, mean_service_overhead
from repro.util.rng import RngLike, ensure_rng, spawn


def _small_spec(specs: Optional[Sequence[EnvironmentSpec]] = None) -> EnvironmentSpec:
    """The smallest Table 1 row at the active scale (ablations run on it)."""
    table = list(specs) if specs is not None else scaled_table1()
    return table[0]


def _mean_delay(router, requests, overlay) -> float:
    result = resolve_requests(router, requests)
    result.raise_first()
    return float(
        np.mean([path.true_delay(overlay) for path in result.paths])
    )


# -- A1: coordinate dimension -------------------------------------------------


@dataclass
class DimensionRow:
    dimension: int
    median_rel_error: float
    cluster_count: int
    separation: float
    hfc_mean_delay: float


def run_dimension_ablation(
    dimensions: Sequence[int] = (2, 3, 5, 8),
    *,
    requests: int = 100,
    spec: Optional[EnvironmentSpec] = None,
    seed: RngLike = None,
) -> List[DimensionRow]:
    """A1: embedding accuracy, clustering quality, and path efficiency vs k."""
    rng = ensure_rng(seed)
    spec = spec or _small_spec()
    rows: List[DimensionRow] = []
    for dim in dimensions:
        config = FrameworkConfig(dimension=dim, physical_nodes=spec.physical_nodes)
        env = build_environment(spec, config=config, seed=spawn(rng, f"dim{dim}"))
        fw = env.framework
        accuracy = embedding_accuracy(
            fw.space, fw.physical, fw.overlay.proxies,
            sample_pairs=min(400, fw.overlay.size * 3),
            seed=spawn(rng, f"acc{dim}"),
        )
        try:
            separation = separation_ratio(fw.space, fw.clustering)
        except Exception:
            separation = float("nan")
        reqs = generate_requests(
            env, WorkloadConfig(request_count=requests), seed=spawn(rng, f"wl{dim}")
        )
        delay = _mean_delay(fw.hierarchical_router(), reqs, fw.overlay)
        rows.append(
            DimensionRow(
                dimension=dim,
                median_rel_error=accuracy["median"],
                cluster_count=fw.clustering.cluster_count,
                separation=separation,
                hfc_mean_delay=delay,
            )
        )
    return rows


def render_dimension_ablation(rows: Sequence[DimensionRow]) -> str:
    """A1 rows as a printable table."""
    return ascii_table(
        ["k", "median rel. err", "clusters", "separation", "HFC mean delay"],
        [
            [r.dimension, r.median_rel_error, r.cluster_count, r.separation, r.hfc_mean_delay]
            for r in rows
        ],
    )


# -- A2: inconsistency factor ------------------------------------------------------


@dataclass
class FactorRow:
    factor: float
    cluster_count: int
    largest_fraction: float
    coord_overhead: float
    service_overhead: float
    hfc_mean_delay: float


def run_inconsistency_ablation(
    factors: Sequence[float] = (1.5, 2.0, 3.0, 4.0),
    *,
    requests: int = 100,
    spec: Optional[EnvironmentSpec] = None,
    seed: RngLike = None,
) -> List[FactorRow]:
    """A2: cluster structure, overheads and path quality vs the factor k.

    The same environment (same embedding) is re-clustered per factor so the
    comparison isolates the clustering knob.
    """
    rng = ensure_rng(seed)
    spec = spec or _small_spec()
    env = build_environment(spec, seed=spawn(rng, "env"))
    fw = env.framework
    reqs = generate_requests(
        env, WorkloadConfig(request_count=requests), seed=spawn(rng, "wl")
    )
    rows: List[FactorRow] = []
    for factor in factors:
        clustering = cluster_nodes(
            fw.space,
            fw.overlay.proxies,
            replace(fw.config.clustering, factor=factor),
        )
        hfc = build_hfc(fw.overlay, clustering)
        router = HierarchicalRouter(hfc)
        stats = size_statistics(clustering)
        rows.append(
            FactorRow(
                factor=factor,
                cluster_count=clustering.cluster_count,
                largest_fraction=stats["largest_fraction"],
                coord_overhead=mean_coordinates_overhead(hfc),
                service_overhead=mean_service_overhead(hfc),
                hfc_mean_delay=_mean_delay(router, reqs, fw.overlay),
            )
        )
    return rows


def render_inconsistency_ablation(rows: Sequence[FactorRow]) -> str:
    """A2 rows as a printable table."""
    return ascii_table(
        ["factor", "clusters", "largest frac", "coord states", "svc states", "HFC delay"],
        [
            [r.factor, r.cluster_count, r.largest_fraction, r.coord_overhead,
             r.service_overhead, r.hfc_mean_delay]
            for r in rows
        ],
    )


# -- A3: border-selection rule ---------------------------------------------------


@dataclass
class BorderRow:
    rule: str
    hfc_mean_delay: float
    max_border_load: int
    mean_border_load: float


def run_border_ablation(
    *,
    requests: int = 100,
    spec: Optional[EnvironmentSpec] = None,
    seed: RngLike = None,
) -> List[BorderRow]:
    """A3: closest-pair vs random border selection on the same clustering."""
    rng = ensure_rng(seed)
    spec = spec or _small_spec()
    env = build_environment(spec, seed=spawn(rng, "env"))
    fw = env.framework
    reqs = generate_requests(
        env, WorkloadConfig(request_count=requests), seed=spawn(rng, "wl")
    )
    rows: List[BorderRow] = []
    for rule in ("closest", "random"):
        hfc = build_hfc(
            fw.overlay, fw.clustering, border_rule=rule, seed=spawn(rng, rule)
        )
        load = hfc.border_load()
        rows.append(
            BorderRow(
                rule=rule,
                hfc_mean_delay=_mean_delay(HierarchicalRouter(hfc), reqs, fw.overlay),
                max_border_load=max(load.values()),
                mean_border_load=float(np.mean(list(load.values()))),
            )
        )
    return rows


def render_border_ablation(rows: Sequence[BorderRow]) -> str:
    """A3 rows as a printable table."""
    return ascii_table(
        ["border rule", "HFC mean delay", "max load", "mean load"],
        [[r.rule, r.hfc_mean_delay, r.max_border_load, r.mean_border_load] for r in rows],
    )


# -- A4: CSP relaxation method --------------------------------------------------------


@dataclass
class MethodRow:
    method: str
    hfc_mean_delay: float


def run_method_ablation(
    *,
    requests: int = 100,
    spec: Optional[EnvironmentSpec] = None,
    seed: RngLike = None,
) -> List[MethodRow]:
    """A4: back-tracking vs external-only vs exact CSP relaxation."""
    rng = ensure_rng(seed)
    spec = spec or _small_spec()
    env = build_environment(spec, seed=spawn(rng, "env"))
    fw = env.framework
    reqs = generate_requests(
        env, WorkloadConfig(request_count=requests), seed=spawn(rng, "wl")
    )
    rows: List[MethodRow] = []
    for method in ("external", "backtrack", "exact"):
        router = fw.hierarchical_router(method=method)
        rows.append(
            MethodRow(method=method, hfc_mean_delay=_mean_delay(router, reqs, fw.overlay))
        )
    return rows


def render_method_ablation(rows: Sequence[MethodRow]) -> str:
    """A4 rows as a printable table."""
    return ascii_table(
        ["CSP method", "HFC mean delay"],
        [[r.method, r.hfc_mean_delay] for r in rows],
    )


# -- A7: landmark placement ----------------------------------------------------------


@dataclass
class LandmarkRow:
    placement: str
    median_rel_error: float
    hfc_mean_delay: float


def run_landmark_ablation(
    *,
    requests: int = 100,
    spec: Optional[EnvironmentSpec] = None,
    seed: RngLike = None,
) -> List[LandmarkRow]:
    """A7: k-center-spread landmarks (our default) vs uniform-random ones.

    The paper only says "set up a small group of m landmarks"; GNP practice
    says spread matters. Both variants run on the same physical topology and
    workload; only the landmark set differs.
    """

    from repro.experiments.environments import build_environment

    rng = ensure_rng(seed)
    spec = spec or _small_spec()
    # shared randomness drawn once so both rows see the SAME topology,
    # placement and workload; only the landmark set differs
    env_seed_value = spawn(rng, "env-shared").getrandbits(48)
    wl_seed_value = spawn(rng, "wl-shared").getrandbits(48)

    rows: List[LandmarkRow] = []
    for placement_name in ("k-center", "random"):
        env_seed = env_seed_value
        if placement_name == "k-center":
            env = build_environment(spec, seed=env_seed)
            fw = env.framework
        else:
            # rebuild with explicit random landmarks on the same physical net
            base_env = build_environment(spec, seed=env_seed)
            physical = base_env.framework.physical
            proxies = base_env.framework.overlay.proxies
            pick_rng = spawn(rng, "landmarks")
            landmarks = pick_rng.sample(physical.graph.nodes(), spec.landmarks)
            from repro.coords.embedding import build_coordinate_space

            space, _ = build_coordinate_space(
                physical,
                proxies,
                landmarks=landmarks,
                dimension=2,
                seed=spawn(rng, "embed"),
            )
            from repro.cluster.mstcluster import cluster_nodes
            from repro.overlay.hfc import build_hfc
            from repro.overlay.network import OverlayNetwork

            overlay = OverlayNetwork(
                physical=physical,
                proxies=proxies,
                placement=base_env.framework.overlay.placement,
                space=space,
            )
            clustering = cluster_nodes(
                space, proxies, base_env.framework.config.clustering
            )
            fw = base_env.framework
            fw = type(fw)(
                config=fw.config,
                physical=physical,
                overlay=overlay,
                catalog=fw.catalog,
                space=space,
                embedding_report=fw.embedding_report,
                clustering=clustering,
                hfc=build_hfc(overlay, clustering),
            )
            env = base_env
            env.framework = fw
        accuracy = embedding_accuracy(
            fw.space,
            fw.physical,
            fw.overlay.proxies,
            sample_pairs=min(400, fw.overlay.size * 3),
            seed=spawn(rng, f"acc-{placement_name}"),
        )
        reqs = generate_requests(
            env, WorkloadConfig(request_count=requests), seed=wl_seed_value
        )
        rows.append(
            LandmarkRow(
                placement=placement_name,
                median_rel_error=accuracy["median"],
                hfc_mean_delay=_mean_delay(
                    HierarchicalRouter(fw.hfc), reqs, fw.overlay
                ),
            )
        )
    return rows


def render_landmark_ablation(rows: Sequence[LandmarkRow]) -> str:
    """A7 rows as a printable table."""
    return ascii_table(
        ["landmark placement", "median rel. err", "HFC mean delay"],
        [[r.placement, r.median_rel_error, r.hfc_mean_delay] for r in rows],
    )


# -- A6: cluster-aggregation representation ----------------------------------------


@dataclass
class AggregationRow:
    representation: str
    hfc_mean_delay: float


def run_aggregation_ablation(
    *,
    requests: int = 100,
    spec: Optional[EnvironmentSpec] = None,
    seed: RngLike = None,
) -> List[AggregationRow]:
    """A6: all-borders visibility (the paper's design) vs single-logical-node
    (centroid) aggregation (the PNNI-style design the paper rejects)."""
    from repro.routing.aggregation import CentroidAggregationRouter

    rng = ensure_rng(seed)
    spec = spec or _small_spec()
    env = build_environment(spec, seed=spawn(rng, "env"))
    fw = env.framework
    reqs = generate_requests(
        env, WorkloadConfig(request_count=requests), seed=spawn(rng, "wl")
    )
    return [
        AggregationRow(
            representation="all borders (paper)",
            hfc_mean_delay=_mean_delay(
                HierarchicalRouter(fw.hfc), reqs, fw.overlay
            ),
        ),
        AggregationRow(
            representation="single logical node",
            hfc_mean_delay=_mean_delay(
                CentroidAggregationRouter(fw.hfc), reqs, fw.overlay
            ),
        ),
    ]


def render_aggregation_ablation(rows: Sequence[AggregationRow]) -> str:
    """A6 rows as a printable table."""
    return ascii_table(
        ["cluster representation", "HFC mean delay"],
        [[r.representation, r.hfc_mean_delay] for r in rows],
    )


# -- A5: mesh information quality -----------------------------------------------------


@dataclass
class MeshInfoRow:
    weight: str
    mesh_mean_delay: float


def run_mesh_information_ablation(
    *,
    requests: int = 100,
    spec: Optional[EnvironmentSpec] = None,
    seed: RngLike = None,
) -> List[MeshInfoRow]:
    """A5: mesh baseline with coordinate vs true link weights."""
    rng = ensure_rng(seed)
    spec = spec or _small_spec()
    env = build_environment(spec, seed=spawn(rng, "env"))
    fw = env.framework
    reqs = generate_requests(
        env, WorkloadConfig(request_count=requests), seed=spawn(rng, "wl")
    )
    rows: List[MeshInfoRow] = []
    for weight in ("coords", "true"):
        mesh = build_mesh(fw.overlay, weight=weight, seed=spawn(rng, f"mesh-{weight}"))
        router = MeshRouter(fw.overlay, mesh)
        rows.append(
            MeshInfoRow(
                weight=weight,
                mesh_mean_delay=_mean_delay(router, reqs, fw.overlay),
            )
        )
    return rows


def render_mesh_information_ablation(rows: Sequence[MeshInfoRow]) -> str:
    """A5 rows as a printable table."""
    return ascii_table(
        ["mesh link weights", "mesh mean delay"],
        [[r.weight, r.mesh_mean_delay] for r in rows],
    )


# -- A8: mesh family -------------------------------------------------------------


@dataclass
class MeshFamilyRow:
    topology: str
    mean_delay: float
    edges: int


def run_mesh_family_ablation(
    *,
    requests: int = 100,
    spec: Optional[EnvironmentSpec] = None,
    seed: RngLike = None,
) -> List[MeshFamilyRow]:
    """A8: regular mesh vs Gabriel proximity mesh vs HFC, same environment."""
    from repro.overlay.mesh import build_gabriel_mesh

    rng = ensure_rng(seed)
    spec = spec or _small_spec()
    env = build_environment(spec, seed=spawn(rng, "env"))
    fw = env.framework
    reqs = generate_requests(
        env, WorkloadConfig(request_count=requests), seed=spawn(rng, "wl")
    )
    regular = build_mesh(fw.overlay, seed=spawn(rng, "mesh"))
    gabriel = build_gabriel_mesh(fw.overlay)
    hfc_graph_edges = fw.hfc.overlay_graph("coords").edge_count
    rows = [
        MeshFamilyRow(
            topology="regular mesh (paper)",
            mean_delay=_mean_delay(MeshRouter(fw.overlay, regular), reqs, fw.overlay),
            edges=regular.edge_count,
        ),
        MeshFamilyRow(
            topology="gabriel mesh",
            mean_delay=_mean_delay(MeshRouter(fw.overlay, gabriel), reqs, fw.overlay),
            edges=gabriel.edge_count,
        ),
        MeshFamilyRow(
            topology="HFC (hierarchical)",
            mean_delay=_mean_delay(HierarchicalRouter(fw.hfc), reqs, fw.overlay),
            edges=hfc_graph_edges,
        ),
    ]
    return rows


def render_mesh_family_ablation(rows: Sequence[MeshFamilyRow]) -> str:
    """A8 rows as a printable table."""
    return ascii_table(
        ["overlay topology", "mean delay", "edges"],
        [[r.topology, r.mean_delay, r.edges] for r in rows],
    )
