"""Small-sample statistics for experiment reporting.

The paper averages over 5-10 topology draws; honest reporting at such
sample sizes needs confidence intervals, so the harnesses use Student-t
intervals. The t quantiles are embedded (two-sided 95%) to keep the
runtime dependency-free; beyond 30 degrees of freedom the normal
approximation is used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.util.errors import ReproError

#: two-sided 95% Student-t critical values, indexed by degrees of freedom
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}
_Z95 = 1.960


def t_critical_95(degrees_of_freedom: int) -> float:
    """Two-sided 95% t critical value (normal approximation past df=30)."""
    if degrees_of_freedom < 1:
        raise ReproError("degrees_of_freedom must be >= 1")
    return _T95.get(degrees_of_freedom, _Z95)


@dataclass(frozen=True)
class Summary:
    """Sample summary with a 95% confidence interval on the mean."""

    count: int
    mean: float
    std: float
    ci95: float

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95

    def overlaps(self, other: "Summary") -> bool:
        """True if the two 95% intervals overlap (difference not resolved)."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.ci95:.2f} (n={self.count})"


def summarize(values: Sequence[float]) -> Summary:
    """Mean, sample std, and 95% CI half-width of *values*."""
    n = len(values)
    if n == 0:
        raise ReproError("cannot summarize an empty sample")
    mean = sum(values) / n
    if n == 1:
        return Summary(count=1, mean=mean, std=0.0, ci95=float("inf"))
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(variance)
    ci95 = t_critical_95(n - 1) * std / math.sqrt(n)
    return Summary(count=n, mean=mean, std=std, ci95=ci95)


def relative_difference(a: float, b: float) -> float:
    """(a - b) / b — positive when a exceeds b."""
    if b == 0:
        raise ReproError("relative difference undefined for b == 0")
    return (a - b) / b
