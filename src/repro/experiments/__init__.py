"""Experiment harnesses regenerating the paper's tables and figures."""

from repro.experiments.environments import (
    TABLE1,
    Environment,
    EnvironmentSpec,
    build_environment,
    scale_factor,
    scaled_table1,
)
from repro.experiments.overhead import (
    OverheadPoint,
    OverheadResult,
    run_overhead_experiment,
)
from repro.experiments.path_efficiency import (
    ALL_STRATEGIES,
    DEFAULT_STRATEGIES,
    EfficiencyPoint,
    EfficiencyResult,
    run_path_efficiency,
)
from repro.experiments.report import ascii_table, series_block
from repro.experiments.workload import (
    WorkloadConfig,
    generate_requests,
    random_service_graph,
    resolve_requests,
)

__all__ = [
    "ALL_STRATEGIES",
    "DEFAULT_STRATEGIES",
    "Environment",
    "EnvironmentSpec",
    "EfficiencyPoint",
    "EfficiencyResult",
    "OverheadPoint",
    "OverheadResult",
    "TABLE1",
    "WorkloadConfig",
    "ascii_table",
    "build_environment",
    "generate_requests",
    "random_service_graph",
    "resolve_requests",
    "run_overhead_experiment",
    "run_path_efficiency",
    "scale_factor",
    "scaled_table1",
    "series_block",
]
