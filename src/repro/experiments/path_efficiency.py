"""Experiment: service-path efficiency (paper Fig. 10).

Per overlay size, up to 5 physical topologies × 1000 client requests, three
strategies per request:

* ``mesh`` — the single-level regular-mesh baseline;
* ``hfc_agg`` — the paper's hierarchical framework (HFC with topology
  abstraction and state aggregation);
* ``hfc_full`` — HFC topology without any abstraction/aggregation (full
  state everywhere); the gap to ``hfc_agg`` is the price of aggregation.

Optionally ``flat`` (fully-connected coordinate routing) and ``oracle``
(true-delay routing) give reference bounds. Every path is scored by its
ground-truth delay, regardless of what estimates the strategy routed on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import FrameworkConfig
from repro.experiments.environments import (
    Environment,
    EnvironmentSpec,
    build_environment,
    scaled_table1,
)
from repro.experiments.report import series_block
from repro.experiments.workload import (
    WorkloadConfig,
    generate_requests,
    resolve_requests,
)
from repro.util.errors import ReproError
from repro.util.rng import RngLike, ensure_rng, spawn

DEFAULT_STRATEGIES = ("mesh", "hfc_agg", "hfc_full")
ALL_STRATEGIES = ("mesh", "hfc_agg", "hfc_full", "flat", "oracle")


@dataclass
class EfficiencyPoint:
    """One x-position of Fig. 10: mean true path delay per strategy."""

    proxies: int
    mean_delay: Dict[str, float]
    std_delay: Dict[str, float]
    requests: int
    failures: Dict[str, int] = field(default_factory=dict)


@dataclass
class EfficiencyResult:
    """The full Fig. 10 series."""

    points: List[EfficiencyPoint]
    strategies: Sequence[str]

    def render(self) -> str:
        """Fig. 10's bars as a printable series block."""
        xs = [p.proxies for p in self.points]
        series = {
            name: [p.mean_delay.get(name, float("nan")) for p in self.points]
            for name in self.strategies
        }
        return series_block(
            "Fig 10 — avg. service path length (true delay units)", series, xs
        )


def _routers_for(environment: Environment, strategies: Sequence[str], seed) -> Dict[str, object]:
    framework = environment.framework
    routers: Dict[str, object] = {}
    for name in strategies:
        if name == "mesh":
            routers[name] = framework.mesh_router(seed=seed)
        elif name == "hfc_agg":
            # CSP memoisation changes nothing semantically (capabilities are
            # fixed for the run) but reflects the production configuration
            # and feeds the cache hit/miss telemetry.
            routers[name] = framework.cached_hierarchical_router()
        elif name == "hfc_full":
            routers[name] = framework.full_state_router()
        elif name == "flat":
            routers[name] = framework.flat_router()
        elif name == "oracle":
            routers[name] = framework.oracle_router()
        else:
            raise ReproError(f"unknown strategy {name!r}")
    return routers


def run_path_efficiency(
    specs: Optional[Sequence[EnvironmentSpec]] = None,
    *,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    topologies_per_size: int = 5,
    requests_per_topology: int = 1000,
    workload: Optional[WorkloadConfig] = None,
    config: Optional[FrameworkConfig] = None,
    seed: RngLike = None,
) -> EfficiencyResult:
    """Regenerate Fig. 10 (average service-path length per strategy).

    Args:
        specs: environment rows (default: Table 1 at the active
            ``REPRO_SCALE``).
        strategies: which bars to produce.
        topologies_per_size: physical topologies per size (paper: up to 5).
        requests_per_topology: client requests per run (paper: 1000).
        workload: request-mix override (defaults to the spec's 4-10 lengths).
        config: framework tunables.
        seed: master seed.
    """
    specs = list(specs) if specs is not None else scaled_table1()
    rng = ensure_rng(seed)
    points: List[EfficiencyPoint] = []
    for spec in specs:
        delays: Dict[str, List[float]] = {name: [] for name in strategies}
        failures: Dict[str, int] = {name: 0 for name in strategies}
        for t in range(topologies_per_size):
            env = build_environment(
                spec, config=config, seed=spawn(rng, f"env-{spec.proxies}-{t}")
            )
            wl = workload or WorkloadConfig(
                request_count=requests_per_topology,
                min_length=spec.min_request_length,
                max_length=spec.max_request_length,
            )
            requests = generate_requests(
                env, wl, seed=spawn(rng, f"wl-{spec.proxies}-{t}")
            )
            routers = _routers_for(
                env, strategies, seed=spawn(rng, f"mesh-{spec.proxies}-{t}")
            )
            # one batched pass per strategy: shared per-batch precompute
            # (tables, provider index, CSP memo) replaces the per-request
            # rebuild; mesh falls back to the scalar loop transparently
            for name, router in routers.items():
                result = resolve_requests(router, requests)
                failures[name] += result.infeasible_count
                delays[name].extend(
                    path.true_delay(env.framework.overlay)
                    for path in result.paths
                    if path is not None
                )
        points.append(
            EfficiencyPoint(
                proxies=spec.proxies,
                mean_delay={
                    name: float(np.mean(values)) if values else float("nan")
                    for name, values in delays.items()
                },
                std_delay={
                    name: float(np.std(values)) if values else float("nan")
                    for name, values in delays.items()
                },
                requests=topologies_per_size * requests_per_topology,
                failures=failures,
            )
        )
    return EfficiencyResult(points=points, strategies=list(strategies))
