"""JSON serialisation of experiment results.

The CLI and external tooling consume experiment outputs as plain JSON;
these converters keep the dataclasses themselves import-free of json.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.experiments.overhead import OverheadResult
from repro.experiments.path_efficiency import EfficiencyResult


def overhead_to_dict(result: OverheadResult) -> Dict[str, Any]:
    """Fig 9 result as a JSON-ready dict."""
    return {
        "figure": "9",
        "panels": {
            panel: [
                {
                    "proxies": p.proxies,
                    "flat": p.flat,
                    "hierarchical": p.hierarchical,
                    "hierarchical_std": p.hierarchical_std,
                    "topologies": p.topologies,
                }
                for p in series
            ]
            for panel, series in (
                ("coordinates", result.coordinates),
                ("service", result.service),
            )
        },
    }


def efficiency_to_dict(result: EfficiencyResult) -> Dict[str, Any]:
    """Fig 10 result as a JSON-ready dict."""
    return {
        "figure": "10",
        "strategies": list(result.strategies),
        "points": [
            {
                "proxies": p.proxies,
                "mean_delay": p.mean_delay,
                "std_delay": p.std_delay,
                "requests": p.requests,
                "failures": p.failures,
            }
            for p in result.points
        ],
    }


def dump_json(payload: Dict[str, Any], path: str) -> None:
    """Write *payload* to *path* as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
