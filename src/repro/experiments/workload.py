"""Workload generation: client service requests over an environment.

The paper's workload (Section 6.2): clients issue service requests with
4-10 services each; a request names a source proxy (where the content
originates), a service graph, and the destination proxy feeding the client.
The paper evaluates linear SGs; non-linear SGs are supported behind
``nonlinear_fraction`` for the extension benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.environments import Environment
from repro.routing.batch import BatchRouteResult
from repro.routing.path import ServicePath
from repro.services.catalog import ServiceCatalog
from repro.services.graph import ServiceGraph, branching_graph, linear_graph
from repro.services.request import ServiceRequest
from repro.util.errors import NoFeasiblePathError, ReproError
from repro.util.rng import RngLike, ensure_rng
from repro.util.sampling import POPULARITY_MODELS, PopularitySampler


@dataclass(frozen=True)
class WorkloadConfig:
    """Request-mix parameters."""

    request_count: int = 1000
    min_length: int = 4
    max_length: int = 10
    #: fraction of requests carrying a non-linear (branching) SG
    nonlinear_fraction: float = 0.0
    #: service-popularity skew: "uniform" (the paper's implicit choice) or
    #: "zipf" (realistic skewed demand; exponent via zipf_exponent)
    popularity: str = "uniform"
    zipf_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.request_count < 1:
            raise ReproError("request_count must be >= 1")
        if not 1 <= self.min_length <= self.max_length:
            raise ReproError("invalid request length bounds")
        if not 0.0 <= self.nonlinear_fraction <= 1.0:
            raise ReproError("nonlinear_fraction must be in [0, 1]")
        if self.popularity not in POPULARITY_MODELS:
            raise ReproError("popularity must be 'uniform' or 'zipf'")
        if self.zipf_exponent <= 0:
            raise ReproError("zipf_exponent must be positive")


class ServiceSampler(PopularitySampler):
    """Draws service names according to the configured popularity model.

    For ``zipf``, service i (in catalog order) has weight ``1 / (i+1)^s``:
    a few services dominate the workload, as real deployments see. This is
    the catalog-flavoured face of :class:`repro.util.sampling.PopularitySampler`
    (the traffic engine uses the shared class directly); the draw sequence
    is unchanged, so seeded workloads stay bit-identical.
    """

    def __init__(self, catalog: ServiceCatalog, config: WorkloadConfig) -> None:
        super().__init__(
            list(catalog.names),
            popularity=config.popularity,
            exponent=config.zipf_exponent,
        )


def random_service_graph(
    catalog: ServiceCatalog,
    length: int,
    *,
    nonlinear: bool = False,
    sampler: Optional[ServiceSampler] = None,
    seed: RngLike = None,
) -> ServiceGraph:
    """A random SG with *length* slots drawn from *catalog*.

    Linear SGs are plain chains. Non-linear SGs follow Figure 2(b)'s shape:
    two alternative head chains merging into a shared tail, giving the router
    several feasible configurations to choose among. *sampler* overrides the
    uniform service draw (e.g. Zipf popularity).
    """
    rng = ensure_rng(seed)
    if sampler is None:
        sampler = ServiceSampler(catalog, WorkloadConfig(request_count=1))
    draw = lambda: sampler.draw(rng)  # noqa: E731 - tiny local helper
    if not nonlinear or length < 3:
        return linear_graph([draw() for _ in range(length)])
    head_budget = max(2, length // 2)
    first = max(1, head_budget // 2)
    second = max(1, head_budget - first)
    tail = max(1, length - first - second)
    return branching_graph(
        chains=[[draw() for _ in range(first)], [draw() for _ in range(second)]],
        tail=[draw() for _ in range(tail)],
    )


def generate_requests(
    environment: Environment,
    config: Optional[WorkloadConfig] = None,
    *,
    seed: RngLike = None,
) -> List[ServiceRequest]:
    """Generate the paper's client workload for *environment*.

    Each request picks a uniform random source proxy (the content origin) and
    the access proxy of a uniform random client as destination; request
    lengths are uniform in the spec's range.
    """
    config = config or WorkloadConfig()
    rng = ensure_rng(seed)
    framework = environment.framework
    proxies = framework.overlay.proxies
    destinations = environment.client_proxies or proxies
    sampler = ServiceSampler(framework.catalog, config)
    requests: List[ServiceRequest] = []
    for _ in range(config.request_count):
        source = rng.choice(proxies)
        destination = rng.choice(destinations)
        if destination == source:
            # a request must traverse the overlay; re-draw the source
            candidates = [p for p in proxies if p != destination]
            source = rng.choice(candidates)
        length = rng.randint(config.min_length, config.max_length)
        nonlinear = rng.random() < config.nonlinear_fraction
        sg = random_service_graph(
            framework.catalog, length, nonlinear=nonlinear,
            sampler=sampler, seed=rng,
        )
        requests.append(ServiceRequest(source, sg, destination))
    return requests


def resolve_requests(router, requests: Sequence[ServiceRequest]) -> BatchRouteResult:
    """Route a whole workload through *router*, batched when it can be.

    Routers exposing ``route_many_detailed`` (the hierarchical family, flat
    routers) resolve the batch with shared per-batch precomputation; any
    other router falls back to a per-request loop. Either way the result
    aligns index-for-index with *requests*: exactly one of ``paths[i]`` /
    ``errors[i]`` is set, and an infeasible request carries the same error
    the scalar ``route`` call would have raised.
    """
    route_many_detailed = getattr(router, "route_many_detailed", None)
    if route_many_detailed is not None:
        return route_many_detailed(requests)
    paths: List[Optional[ServicePath]] = []
    errors: List[Optional[NoFeasiblePathError]] = []
    for request in requests:
        try:
            paths.append(router.route(request))
            errors.append(None)
        except NoFeasiblePathError as exc:
            paths.append(None)
            errors.append(exc)
    return BatchRouteResult(paths=paths, errors=errors)
