"""Simulation environments (paper Table 1).

Table 1 of the paper:

    physical | landmarks | proxies | clients | services/proxy | req. length
       300   |    10     |   250   |   40    |      4-10      |    4-10
       600   |    10     |   500   |   90    |      4-10      |    4-10
       900   |    10     |   750   |   140   |      4-10      |    4-10
      1200   |    10     |  1000   |   120   |      4-10      |    4-10

Full-paper sizes are expensive in pure Python, so every harness honours the
``REPRO_SCALE`` environment variable: ``full`` reproduces Table 1 exactly,
``small`` (the default) shrinks all sizes by 5x while keeping the 1:2:3:4
progression (and the answer's shape), and a float value scales arbitrarily.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.core.config import FrameworkConfig
from repro.core.framework import HFCFramework
from repro.overlay.network import ProxyId
from repro.util.errors import ReproError
from repro.util.rng import RngLike, ensure_rng, spawn


@dataclass(frozen=True)
class EnvironmentSpec:
    """One row of Table 1."""

    physical_nodes: int
    landmarks: int
    proxies: int
    clients: int
    min_services: int = 4
    max_services: int = 10
    min_request_length: int = 4
    max_request_length: int = 10


#: the paper's Table 1, verbatim
TABLE1: List[EnvironmentSpec] = [
    EnvironmentSpec(physical_nodes=300, landmarks=10, proxies=250, clients=40),
    EnvironmentSpec(physical_nodes=600, landmarks=10, proxies=500, clients=90),
    EnvironmentSpec(physical_nodes=900, landmarks=10, proxies=750, clients=140),
    EnvironmentSpec(physical_nodes=1200, landmarks=10, proxies=1000, clients=120),
]


def scale_factor() -> float:
    """The active scale from ``REPRO_SCALE`` (1.0 = full paper sizes)."""
    raw = os.environ.get("REPRO_SCALE", "small").strip().lower()
    if raw in ("full", "1", "1.0"):
        return 1.0
    if raw == "small":
        return 0.2
    try:
        value = float(raw)
    except ValueError:
        raise ReproError(f"REPRO_SCALE={raw!r} is neither 'full', 'small' nor a float")
    if not 0 < value <= 1:
        raise ReproError(f"REPRO_SCALE must be in (0, 1], got {value}")
    return value


def scaled_table1(factor: Optional[float] = None) -> List[EnvironmentSpec]:
    """Table 1 scaled by *factor* (default: the ``REPRO_SCALE`` setting).

    Proxy/physical/client counts shrink proportionally (with sane floors);
    landmark count and the per-proxy/request ranges are resolution-free and
    stay at the paper's values.
    """
    factor = scale_factor() if factor is None else factor
    specs = []
    for spec in TABLE1:
        specs.append(
            replace(
                spec,
                physical_nodes=max(150, int(round(spec.physical_nodes * factor))),
                proxies=max(40, int(round(spec.proxies * factor))),
                clients=max(10, int(round(spec.clients * factor))),
            )
        )
    return specs


@dataclass
class Environment:
    """A built simulation environment: framework + clients."""

    spec: EnvironmentSpec
    framework: HFCFramework
    #: physical routers where clients attach
    clients: List[int]
    #: each client's access proxy (its nearest overlay proxy)
    client_proxies: List[ProxyId] = field(default_factory=list)


def build_environment(
    spec: EnvironmentSpec,
    *,
    config: Optional[FrameworkConfig] = None,
    seed: RngLike = None,
) -> Environment:
    """Build the full environment for one Table 1 row.

    Clients attach to uniformly random stub routers; each client's access
    proxy is its closest proxy by true delay (the proxy whose output would
    feed the client's input, per Section 5.1).
    """
    rng = ensure_rng(seed)
    if config is None:
        config = FrameworkConfig()
    config = replace(
        config,
        physical_nodes=spec.physical_nodes,
        landmark_count=spec.landmarks,
        min_services_per_proxy=spec.min_services,
        max_services_per_proxy=spec.max_services,
    )
    framework = HFCFramework.build(
        proxy_count=spec.proxies, config=config, seed=spawn(rng, "framework")
    )
    client_rng = spawn(rng, "clients")
    stubs = framework.physical.topology.stub_nodes
    clients = [client_rng.choice(stubs) for _ in range(spec.clients)]
    client_proxies = [
        framework.physical.nearest(c, framework.overlay.proxies) for c in clients
    ]
    return Environment(
        spec=spec,
        framework=framework,
        clients=clients,
        client_proxies=client_proxies,
    )
