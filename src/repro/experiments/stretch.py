"""Experiment E7: per-request stretch distributions.

Fig 10 reports means; means hide tails. This experiment computes the
per-request **stretch** of every strategy — the ratio of a strategy's true
path delay to the true-delay optimum for the same request — and reports
the distribution (median / p90 / p99 / max). Tail stretch is what a user
actually experiences when the estimates mislead routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.environments import (
    EnvironmentSpec,
    build_environment,
    scaled_table1,
)
from repro.experiments.path_efficiency import _routers_for
from repro.experiments.report import ascii_table
from repro.experiments.workload import (
    WorkloadConfig,
    generate_requests,
    resolve_requests,
)
from repro.util.errors import ReproError
from repro.util.rng import RngLike, ensure_rng, spawn


@dataclass
class StretchRow:
    """Stretch distribution of one strategy."""

    strategy: str
    median: float
    p90: float
    p99: float
    worst: float
    requests: int


def run_stretch_analysis(
    *,
    strategies: Sequence[str] = ("mesh", "hfc_agg", "hfc_full"),
    spec: Optional[EnvironmentSpec] = None,
    request_count: int = 200,
    seed: RngLike = None,
) -> List[StretchRow]:
    """Per-request stretch vs the true-delay oracle, per strategy."""
    if "oracle" in strategies:
        raise ReproError("the oracle is the baseline; do not list it as a strategy")
    rng = ensure_rng(seed)
    spec = spec or scaled_table1()[0]
    env = build_environment(spec, seed=spawn(rng, "env"))
    framework = env.framework
    requests = generate_requests(
        env, WorkloadConfig(request_count=request_count), seed=spawn(rng, "wl")
    )
    routers = _routers_for(env, list(strategies), seed=spawn(rng, "mesh"))
    oracle = framework.oracle_router()

    # one batched pass per router: the oracle baseline and every strategy
    # share their per-batch precomputation instead of re-deriving it per
    # request (resolve_requests falls back to a scalar loop for routers
    # without route_many support, e.g. the mesh baseline)
    oracle_result = resolve_requests(oracle, requests)
    oracle_result.raise_first()
    bases = [path.true_delay(framework.overlay) for path in oracle_result.paths]

    stretches: Dict[str, List[float]] = {name: [] for name in strategies}
    for name, router in routers.items():
        result = resolve_requests(router, requests)
        for base, path in zip(bases, result.paths):
            if base <= 0 or path is None:
                continue
            stretches[name].append(path.true_delay(framework.overlay) / base)

    rows: List[StretchRow] = []
    for name in strategies:
        values = np.array(stretches[name])
        rows.append(
            StretchRow(
                strategy=name,
                median=float(np.median(values)),
                p90=float(np.percentile(values, 90)),
                p99=float(np.percentile(values, 99)),
                worst=float(values.max()),
                requests=int(values.size),
            )
        )
    return rows


def render_stretch(rows: Sequence[StretchRow]) -> str:
    """E7 rows as a printable table."""
    return ascii_table(
        ["strategy", "median", "p90", "p99", "worst", "requests"],
        [
            [r.strategy, r.median, r.p90, r.p99, r.worst, r.requests]
            for r in rows
        ],
    )
