"""The :class:`Telemetry` facade: registry + tracer + event log + clocks.

Two deployment shapes coexist:

* a **process-wide default** (:func:`get_telemetry`) that long-lived
  components (routers, caches, membership) resolve lazily, so
  instrumentation is on by default without any wiring; and
* **per-run instances** owned by each :class:`~repro.netsim.eventsim.
  Simulator`, so per-run reports (ProtocolReport, SessionReport) stay
  exact even when many runs share a process. A finished run calls
  :meth:`Telemetry.publish` to fold its numbers into the default.

Clocks: the facade tracks which simulator (if any) is currently executing
its event loop — simulators announce themselves via :meth:`simulation`
around ``run_until``/``run_all``. While one is active, spans and events
are stamped with ``Simulator.now`` (clock kind ``"sim"``); otherwise with
the wall clock.

:class:`NullTelemetry` is the measured-off state: every handle it returns
is a shared no-op, which the overhead bench uses as the
pre-instrumentation baseline.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.telemetry.events import EventLog
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import ClockInfo, Tracer


class Telemetry:
    """One coherent observability scope: metrics, spans, events, clock."""

    enabled = True

    def __init__(
        self,
        *,
        event_capacity: int = 10_000,
        span_capacity: int = 1024,
    ) -> None:
        self.registry = MetricsRegistry()
        #: the simulator currently executing its event loop, if any
        self._active_sim: Any = None
        self.tracer = Tracer(
            self.registry,
            clock_provider=self._clock_info,
            max_roots=span_capacity,
        )
        self.events = EventLog(
            capacity=event_capacity,
            clock=self._now,
            clock_kind=self._clock_kind,
        )

    # -- clock ------------------------------------------------------------------

    def _clock_info(self) -> ClockInfo:
        sim = self._active_sim
        if sim is not None:
            return (lambda: sim.now), "sim"
        return time.perf_counter, "wall"

    def _now(self) -> float:
        sim = self._active_sim
        return sim.now if sim is not None else time.time()

    def _clock_kind(self) -> str:
        return "sim" if self._active_sim is not None else "wall"

    @contextmanager
    def simulation(self, simulator: Any) -> Iterator[None]:
        """Mark *simulator* as the active clock source while it runs."""
        previous = self._active_sim
        self._active_sim = simulator
        try:
            yield
        finally:
            self._active_sim = previous

    # -- aggregation -------------------------------------------------------------

    def publish(self, target: Optional["Telemetry"] = None) -> None:
        """Fold this scope's data into *target* (default: the process scope).

        Counters add, gauges keep the published value, histograms merge
        bucket-wise, finished span trees and buffered events move over.
        Publishing into a :class:`NullTelemetry` (or into itself) is a
        no-op, so instrumented code never needs to special-case.
        """
        target = target if target is not None else get_telemetry()
        if target is self or not target.enabled or not self.enabled:
            return
        target.registry.merge(self.registry)
        target.tracer.absorb(self.tracer)
        target.events.extend(iter(self.events))
        self.events.clear()

    # -- export -----------------------------------------------------------------

    def snapshot(self, *, span_limit: int = 50, event_limit: int = 100) -> Dict[str, Any]:
        """JSON-ready dump: all metrics plus recent spans and events."""
        events = list(self.events)
        return {
            "metrics": self.registry.snapshot(),
            "spans": {
                "finished": self.tracer.spans_finished,
                "recent": self.tracer.snapshot(limit=span_limit),
            },
            "events": {
                "recorded": self.events.recorded,
                "dropped": self.events.dropped,
                "recent": events[-event_limit:],
            },
        }

    def dump_json(self, path: str, **snapshot_kwargs: Any) -> None:
        """Write :meth:`snapshot` to *path* as JSON."""
        with open(path, "w") as handle:
            json.dump(self.snapshot(**snapshot_kwargs), handle,
                      indent=2, default=str)

    def clear(self) -> None:
        """Reset metrics, spans and events (tests, benches)."""
        self.registry.clear()
        self.tracer.clear()
        self.events.clear()


# -- the measured-off state ------------------------------------------------------


class _NullMetric:
    """Shared do-nothing stand-in for every metric handle."""

    __slots__ = ()
    name = "null"
    labels: tuple = ()
    value = 0
    count = 0
    total = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullRegistry(MetricsRegistry):
    _NULL = _NullMetric()

    def counter(self, name: str, **labels: Any):  # type: ignore[override]
        return self._NULL

    def gauge(self, name: str, **labels: Any):  # type: ignore[override]
        return self._NULL

    def histogram(self, name: str, buckets=None, **labels: Any):  # type: ignore[override]
        return self._NULL


class _NullSpan:
    __slots__ = ()
    name = "null"
    children: list = []
    attributes: dict = {}
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class _NullTracer(Tracer):
    _SPAN = _NullSpan()

    def __init__(self, registry: MetricsRegistry) -> None:
        super().__init__(registry)

    def span(self, name: str, **attributes: Any):  # type: ignore[override]
        return self._SPAN


class _NullEventLog(EventLog):
    def record(self, kind: str, **fields: Any) -> Dict[str, Any]:  # type: ignore[override]
        return {}


class NullTelemetry(Telemetry):
    """Telemetry that measures nothing — the overhead-bench baseline."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(event_capacity=1, span_capacity=1)
        self.registry = _NullRegistry()
        self.tracer = _NullTracer(self.registry)
        self.events = _NullEventLog(capacity=1)

    def publish(self, target: Optional[Telemetry] = None) -> None:
        pass


#: shared instance for callers that want instrumentation off
NULL_TELEMETRY = NullTelemetry()


# -- the process-wide default ----------------------------------------------------

_default = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-wide telemetry scope (default-on, sink-less)."""
    return _default


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Replace the process-wide scope; returns the previous one."""
    global _default
    previous = _default
    _default = telemetry
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Scoped :func:`set_telemetry` (tests and benches)."""
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
