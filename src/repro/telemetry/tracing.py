"""Span tracing over either the simulated or the wall clock.

A :class:`Span` measures one named operation; nested ``tracer.span(...)``
calls build a tree (the routing layer opens ``route`` and, inside it,
``route.csp`` / ``route.dissect`` / ``route.conquer`` / ``route.compose``).

Clock selection is the subtle part: when the code under a span runs inside
the discrete-event engine, wall time is meaningless and the span should be
stamped with ``Simulator.now``; outside the engine, ``time.perf_counter``
is the right ruler. The tracer therefore asks its clock *provider* at span
start — the :class:`~repro.telemetry.core.Telemetry` facade answers with
the active simulator's clock while one is running (simulators announce
themselves around their run loops) and the wall clock otherwise. Each
finished span records which clock timed it.

Every finished span feeds a ``span.duration`` histogram in the registry
(so quantiles survive even when the bounded buffer of complete span trees
has rotated) and, when it has no parent, is retained as a tree root for
inspection/export.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.telemetry.metrics import MetricsRegistry

#: (clock function, clock kind tag) — kind is "sim" or "wall"
ClockInfo = Tuple[Callable[[], float], str]


def wall_clock() -> ClockInfo:
    """The default clock provider: monotonic wall time."""
    return time.perf_counter, "wall"


#: histogram buckets for wall-clock span durations (seconds)
WALL_SPAN_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)
#: histogram buckets for simulated-clock span durations (ms)
SIM_SPAN_BUCKETS: Tuple[float, ...] = (
    0.1, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 20000.0,
)


class Span:
    """One timed operation; a context manager produced by :class:`Tracer`."""

    __slots__ = (
        "name", "attributes", "clock_kind", "start", "end",
        "children", "_tracer", "_clock",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        clock: Callable[[], float],
        clock_kind: str,
        attributes: Dict[str, Any],
    ) -> None:
        self.name = name
        self.attributes = attributes
        self.clock_kind = clock_kind
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self._tracer = tracer
        self._clock = clock

    @property
    def duration(self) -> float:
        """Elapsed time in the span's own clock units (0 while open)."""
        return (self.end if self.end is not None else self.start) - self.start

    def __enter__(self) -> "Span":
        self.start = self._clock()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = self._clock()
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self._tracer._pop(self)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready recursive dump of the span tree rooted here."""
        return {
            "name": self.name,
            "clock": self.clock_kind,
            "start": self.start,
            "duration": self.duration,
            "attributes": {k: str(v) for k, v in self.attributes.items()},
            "children": [c.to_dict() for c in self.children],
        }

    def walk(self) -> List["Span"]:
        """This span and every descendant, depth-first."""
        out = [self]
        for child in self.children:
            out.extend(child.walk())
        return out


class Tracer:
    """Builds span trees and aggregates their durations into the registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        clock_provider: Callable[[], ClockInfo] = wall_clock,
        max_roots: int = 1024,
    ) -> None:
        self._registry = registry
        self._clock_provider = clock_provider
        self._stack: List[Span] = []
        #: bounded buffer of the most recent *root* span trees
        self.roots: Deque[Span] = deque(maxlen=max_roots)
        self.spans_finished = 0

    def span(self, name: str, **attributes: Any) -> Span:
        """A context manager timing *name*; nests under any open span."""
        clock, kind = self._clock_provider()
        return Span(self, name, clock, kind, attributes)

    # -- span lifecycle (called by Span.__enter__/__exit__) --------------------

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (generators, exceptions): unwind to span.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self.spans_finished += 1
        buckets = (
            SIM_SPAN_BUCKETS if span.clock_kind == "sim" else WALL_SPAN_BUCKETS
        )
        self._registry.histogram(
            "span.duration", buckets, span=span.name, clock=span.clock_kind
        ).observe(span.duration)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    # -- queries ----------------------------------------------------------------

    @property
    def active_span(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def find_roots(self, name: str) -> List[Span]:
        """Retained root spans called *name*, oldest first."""
        return [s for s in self.roots if s.name == name]

    def absorb(self, other: "Tracer") -> None:
        """Take over *other*'s finished roots (per-run tracer publication)."""
        if other is self:
            return
        self.spans_finished += other.spans_finished
        for root in other.roots:
            self.roots.append(root)
        other.roots.clear()

    def clear(self) -> None:
        self.roots.clear()
        self._stack.clear()
        self.spans_finished = 0

    def snapshot(self, limit: int = 50) -> List[Dict[str, Any]]:
        """JSON-ready dump of the most recent *limit* root span trees."""
        roots = list(self.roots)[-limit:]
        return [r.to_dict() for r in roots]
