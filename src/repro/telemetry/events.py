"""Bounded structured event log with pluggable sinks and JSONL export.

Lifecycle events that are too sparse (and too interesting) for metrics —
membership joins/leaves, restructurings, data-plane failures and
recoveries — are recorded here as flat dicts: ``{"ts", "clock", "kind",
...fields}``. The log keeps a bounded in-memory ring (old events rotate
out, a drop counter remembers how many) and forwards every event to any
attached :class:`Sink`.

Sinks are deliberately minimal — one ``emit(event)`` method — so tests
attach a list-backed sink and tools attach :class:`JsonlSink`, which
streams events to a JSON-Lines file. ``dump_jsonl``/``load_jsonl`` round-
trip the in-memory ring through the same format.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, IO, Iterator, List, Optional, Union

from repro.util.errors import TelemetryError


class Sink:
    """Receives every recorded event; subclass and override :meth:`emit`."""

    def emit(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; the default sink holds none."""


class ListSink(Sink):
    """Collects events into a plain list (test helper)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)


class JsonlSink(Sink):
    """Streams events to a JSON-Lines file as they are recorded."""

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def emit(self, event: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(event, default=str) + "\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


class EventLog:
    """Bounded ring of structured events, fanned out to attached sinks."""

    def __init__(
        self,
        *,
        capacity: int = 10_000,
        clock: Optional[Callable[[], float]] = None,
        clock_kind: Callable[[], str] = lambda: "wall",
    ) -> None:
        if capacity < 1:
            raise TelemetryError("event log capacity must be >= 1")
        self._buffer: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._sinks: List[Sink] = []
        self._clock = clock or time.time
        self._clock_kind = clock_kind
        self.recorded = 0

    # -- recording ---------------------------------------------------------------

    def record(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the event dict."""
        event: Dict[str, Any] = {
            "ts": self._clock(),
            "clock": self._clock_kind(),
            "kind": kind,
        }
        event.update(fields)
        self.recorded += 1
        self._buffer.append(event)
        for sink in self._sinks:
            sink.emit(event)
        return event

    # -- sinks --------------------------------------------------------------------

    def attach(self, sink: Sink) -> Sink:
        """Attach *sink*; every subsequent event is forwarded to it."""
        self._sinks.append(sink)
        return sink

    def detach(self, sink: Sink) -> None:
        """Detach *sink* (no error if it was never attached)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    @property
    def has_sinks(self) -> bool:
        return bool(self._sinks)

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._buffer)

    @property
    def dropped(self) -> int:
        """Events rotated out of the bounded ring."""
        return self.recorded - len(self._buffer)

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        """Buffered events whose kind equals *kind*, oldest first."""
        return [e for e in self._buffer if e["kind"] == kind]

    def extend(self, events: Iterator[Dict[str, Any]]) -> None:
        """Append already-formed events (per-run log publication)."""
        for event in events:
            self.recorded += 1
            self._buffer.append(event)

    def clear(self) -> None:
        self._buffer.clear()
        self.recorded = 0

    # -- persistence -------------------------------------------------------------

    def dump_jsonl(self, path: str) -> int:
        """Write the buffered events to *path* as JSONL; returns the count."""
        with open(path, "w") as handle:
            for event in self._buffer:
                handle.write(json.dumps(event, default=str) + "\n")
        return len(self._buffer)

    @staticmethod
    def load_jsonl(path: str) -> List[Dict[str, Any]]:
        """Parse a JSONL event file back into a list of event dicts."""
        events: List[Dict[str, Any]] = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
        return events
