"""``repro.telemetry`` — metrics, tracing, and structured event logging.

The measurement substrate for every layer of the reproduction: the event
engine counts and times message deliveries, the routing layer opens spans
around each resolution stage, caches count hits and misses, membership and
the data plane record lifecycle events. See DESIGN.md ("Observability")
for the metric-name map and README.md for example output.

Entry points:

* :func:`get_telemetry` — the process-wide default scope (default-on);
* :class:`Telemetry` — a private scope (each simulator owns one);
* :data:`NULL_TELEMETRY` — instrumentation off (the bench baseline).
"""

from repro.telemetry.core import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from repro.telemetry.events import EventLog, JsonlSink, ListSink, Sink
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracing import Span, Tracer

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "EventLog",
    "JsonlSink",
    "ListSink",
    "Sink",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
]
