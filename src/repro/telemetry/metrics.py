"""Metric primitives: counters, gauges, histograms, and their registry.

The design follows the collector/registry pattern of real measurement
subsystems (Prometheus client libraries, Icarus' results collectors): a
:class:`MetricsRegistry` owns every metric, keyed by ``(name, labels)``, and
instrumented code asks the registry for a handle once and then mutates it
with plain attribute arithmetic. The handles are deliberately tiny — an
``inc`` is one integer addition, an ``observe`` is one bisect plus four
scalar updates — so instrumentation can stay on by default inside the
discrete-event hot loop.

Histograms use fixed buckets (cumulative counts are derived on snapshot)
and report p50/p95/p99 estimated by linear interpolation inside the
matching bucket, which is exact enough for the latency distributions the
benches care about while keeping ``observe`` O(log buckets).

Registries merge: ``registry.merge(other)`` folds another registry's
metrics into this one (counters add, gauges take the other's last value,
histograms add bucket-wise). Per-run registries (one per simulator) are
published into the process-wide registry this way, so per-run reports stay
exact while ``--telemetry-out`` sees the whole process.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.util.errors import TelemetryError

#: canonical metric identity: name plus sorted (label, value) pairs
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: default latency buckets (simulated ms); the overflow bucket is implicit
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0,
)


def metric_key(name: str, labels: Dict[str, Any]) -> MetricKey:
    """The registry key for *name* with *labels* (values stringified)."""
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise TelemetryError(f"counter {self.name} cannot decrease")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A value that can go up and down (sizes, qualities, levels)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def merge(self, other: "Gauge") -> None:
        # last writer wins: the merged-in registry is the more recent run
        self.value = other.value

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """Fixed-bucket distribution with interpolated quantile summaries."""

    kind = "histogram"
    __slots__ = (
        "name", "labels", "bounds", "bucket_counts",
        "count", "total", "min", "max",
    )

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...],
        bounds: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name} bounds must be non-empty and increasing"
            )
        self.name = name
        self.labels = labels
        self.bounds = bounds
        #: one count per bucket plus the overflow bucket
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.bucket_counts[bisect_right(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0..1) by interpolation inside the bucket."""
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if cumulative + bucket_count >= rank:
                lo = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max) if hi >= lo else lo
                if bucket_count == 0 or hi <= lo:
                    return lo
                return lo + (hi - lo) * (rank - cumulative) / bucket_count
            cumulative += bucket_count
        return self.max

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise TelemetryError(
                f"cannot merge histogram {self.name}: bucket bounds differ"
            )
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c

    def snapshot(self) -> Dict[str, Any]:
        empty = self.count == 0
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.total,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "mean": None if empty else self.mean,
            "p50": None if empty else self.quantile(0.50),
            "p95": None if empty else self.quantile(0.95),
            "p99": None if empty else self.quantile(0.99),
            "buckets": {
                "le": list(self.bounds),
                "counts": list(self.bucket_counts),
            },
        }


class MetricsRegistry:
    """Owns every metric; instrumented code asks it for handles by name."""

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, Any] = {}

    # -- handle factories ------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get-or-create the counter *name* with *labels*."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get-or-create the gauge *name* with *labels*."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        **labels: Any,
    ) -> Histogram:
        """Get-or-create the histogram *name* with *labels*."""
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, key[1], buckets or DEFAULT_BUCKETS)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TelemetryError(
                f"metric {name} already registered as {metric.kind}"
            )
        return metric

    def _get_or_create(self, cls, name: str, labels: Dict[str, Any]):
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1])
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TelemetryError(
                f"metric {name} already registered as {metric.kind}"
            )
        return metric

    # -- queries ----------------------------------------------------------------

    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """The existing metric at ``(name, labels)``, or None."""
        return self._metrics.get(metric_key(name, labels))

    def collect(self, name: str) -> List[Any]:
        """Every metric registered under *name*, across all label sets."""
        return [m for (n, _), m in self._metrics.items() if n == name]

    def total(self, name: str) -> int:
        """Sum of every counter value registered under *name*."""
        return sum(
            m.value for m in self.collect(name) if isinstance(m, Counter)
        )

    def values_by_label(self, name: str, label: str) -> Dict[str, int]:
        """Counter values under *name*, keyed by the given label's value."""
        result: Dict[str, int] = {}
        for metric in self.collect(name):
            if not isinstance(metric, Counter):
                continue
            value = dict(metric.labels).get(label)
            if value is not None:
                result[value] = result.get(value, 0) + metric.value
        return result

    def names(self) -> List[str]:
        """Sorted distinct metric names."""
        return sorted({n for n, _ in self._metrics})

    def __len__(self) -> int:
        return len(self._metrics)

    # -- lifecycle ---------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s metrics into this registry (see module docstring)."""
        if other is self:
            return
        for key, metric in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                if isinstance(metric, Histogram):
                    mine = Histogram(metric.name, metric.labels, metric.bounds)
                else:
                    mine = type(metric)(metric.name, metric.labels)
                self._metrics[key] = mine
            elif type(mine) is not type(metric):
                raise TelemetryError(
                    f"cannot merge metric {metric.name}: kind mismatch"
                )
            mine.merge(metric)

    def clear(self) -> None:
        """Drop every metric (used by tests and the overhead bench)."""
        self._metrics.clear()

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of every metric, grouped by kind."""
        grouped: Dict[str, List[Dict[str, Any]]] = {
            "counters": [], "gauges": [], "histograms": [],
        }
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            grouped[metric.kind + "s"].append(metric.snapshot())
        return grouped
