"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``    — build a framework, route one request with every strategy;
* ``table1``  — print the (scaled) Table 1 environments;
* ``fig9``    — regenerate Fig 9 (state-maintenance overhead);
* ``fig10``   — regenerate Fig 10 (service-path efficiency);
* ``report``  — regenerate the complete evaluation as one markdown report;
* ``protocol``— run the Section-4 state protocol and print its cost;
* ``telemetry`` — exercise every instrumented layer and dump the metrics;
* ``traffic`` — sustained open-loop session load: steady-state report,
  optional rate sweep (saturation point) and load-under-faults scenario;
* ``shard``   — synthetic large-n workload on the sharded event simulator.

Common flags: ``--scale`` (fraction of paper sizes), ``--seed``,
``--json FILE`` (machine-readable output), ``--telemetry-out FILE``
(dump the process-wide telemetry snapshot collected during the command).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import HFCFramework
from repro.experiments import (
    ascii_table,
    run_overhead_experiment,
    run_path_efficiency,
    scaled_table1,
)
from repro.experiments.serialize import (
    dump_json,
    efficiency_to_dict,
    overhead_to_dict,
)
from repro.routing import validate_path
from repro.telemetry import get_telemetry


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.2,
                        help="fraction of the paper's Table 1 sizes (default 0.2)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write results as JSON")
    parser.add_argument("--telemetry-out", metavar="FILE", default=None,
                        help="write the collected telemetry snapshot as JSON")


def _dump_telemetry(args: argparse.Namespace) -> None:
    """Honour ``--telemetry-out`` after a command has run."""
    target = getattr(args, "telemetry_out", None)
    if target:
        get_telemetry().dump_json(target)
        print(f"telemetry snapshot written to {target}")


def cmd_demo(args: argparse.Namespace) -> int:
    framework = HFCFramework.build(proxy_count=args.proxies, seed=args.seed)
    print(framework.describe())
    request = framework.random_request(seed=args.seed + 1)
    print(f"request: {request}")
    strategies = {
        "hierarchical": framework.hierarchical_router(),
        "mesh": framework.mesh_router(seed=args.seed + 2),
        "hfc-full-state": framework.full_state_router(),
        "oracle": framework.oracle_router(),
    }
    rows = []
    for name, router in strategies.items():
        path = router.route(request)
        validate_path(path, request, framework.overlay)
        rows.append(
            [name, f"{path.true_delay(framework.overlay):.1f}",
             path.overlay_hop_count, path.relay_count()]
        )
    print(ascii_table(["strategy", "true delay (ms)", "hops", "relays"], rows))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    specs = scaled_table1(args.scale)
    print(ascii_table(
        ["physical", "landmarks", "proxies", "clients",
         "services/proxy", "req. length"],
        [
            [s.physical_nodes, s.landmarks, s.proxies, s.clients,
             f"{s.min_services}-{s.max_services}",
             f"{s.min_request_length}-{s.max_request_length}"]
            for s in specs
        ],
    ))
    return 0


def cmd_fig9(args: argparse.Namespace) -> int:
    result = run_overhead_experiment(
        scaled_table1(args.scale),
        topologies_per_size=args.topologies,
        seed=args.seed,
    )
    print(result.render())
    if args.json:
        dump_json(overhead_to_dict(result), args.json)
        print(f"JSON written to {args.json}")
    return 0


def cmd_fig10(args: argparse.Namespace) -> int:
    result = run_path_efficiency(
        scaled_table1(args.scale),
        strategies=tuple(args.strategies.split(",")),
        topologies_per_size=args.topologies,
        requests_per_topology=args.requests,
        seed=args.seed,
    )
    print(result.render())
    if args.json:
        dump_json(efficiency_to_dict(result), args.json)
        print(f"JSON written to {args.json}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.full_report import generate_full_report

    report = generate_full_report(
        scale=args.scale,
        topologies=args.topologies,
        requests=args.requests,
        include_ablations=not args.no_ablations,
        seed=args.seed,
    )
    if args.json:
        # the report is markdown; --json writes it to the given file instead
        with open(args.json, "w") as handle:
            handle.write(report)
        print(f"report written to {args.json}")
    else:
        print(report)
    return 0


def cmd_protocol(args: argparse.Namespace) -> int:
    from repro.state.protocol import StateDistributionProtocol

    framework = HFCFramework.build(proxy_count=args.proxies, seed=args.seed)
    print(framework.describe())
    protocol = StateDistributionProtocol(framework.hfc, seed=args.seed + 1)
    report = protocol.run()
    protocol.sim.telemetry.publish()
    rows = [[kind, count] for kind, count in sorted(report.messages_by_kind.items())]
    rows.append(["total", report.total_messages])
    print(ascii_table(["message kind", "count"], rows))
    print(f"converged at t={report.converged_at}")
    if args.json:
        dump_json(report.to_dict(), args.json)
        print(f"JSON written to {args.json}")
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Exercise every instrumented layer once and print the metrics."""
    from repro.state.protocol import StateDistributionProtocol

    telemetry = get_telemetry()
    framework = HFCFramework.build(proxy_count=args.proxies, seed=args.seed)
    print(framework.describe())

    router = framework.cached_hierarchical_router()
    routed = 0
    for i in range(args.requests):
        request = framework.random_request(seed=args.seed + 100 + i % 5)
        try:
            router.route(request)
            routed += 1
        except Exception:
            pass
    print(f"routed {routed}/{args.requests} requests "
          f"(cache hit rate {router.stats.hit_rate:.0%})")

    protocol = StateDistributionProtocol(framework.hfc, seed=args.seed + 1)
    protocol_report = protocol.run(max_time=10000.0)
    protocol.sim.telemetry.publish()
    print(f"protocol: {protocol_report.total_messages} messages, "
          f"converged at t={protocol_report.converged_at}")

    snapshot = telemetry.snapshot()
    counter_rows = [
        [c["name"],
         ",".join(f"{k}={v}" for k, v in sorted(c["labels"].items())) or "-",
         c["value"]]
        for c in snapshot["metrics"]["counters"]
    ]
    print(ascii_table(["counter", "labels", "value"], counter_rows))
    histogram_rows = [
        [h["name"],
         ",".join(f"{k}={v}" for k, v in sorted(h["labels"].items())) or "-",
         h["count"],
         "-" if h["p50"] is None else f"{h['p50']:.3g}",
         "-" if h["p95"] is None else f"{h['p95']:.3g}"]
        for h in snapshot["metrics"]["histograms"]
    ]
    print(ascii_table(["histogram", "labels", "count", "p50", "p95"],
                      histogram_rows))
    print(f"spans finished: {snapshot['spans']['finished']}, "
          f"events recorded: {snapshot['events']['recorded']}")
    if args.json:
        telemetry.dump_json(args.json)
        print(f"telemetry snapshot written to {args.json}")
    return 0


def cmd_traffic(args: argparse.Namespace) -> int:
    """Run the open-loop traffic engine and print the steady-state report."""
    from repro.faults.scenarios import crash_restart_plan
    from repro.traffic import (
        MMPP,
        FlashCrowd,
        Poisson,
        SessionConfig,
        TrafficConfig,
        TrafficEngine,
        rate_sweep,
        run_traffic_under_faults,
    )

    framework = HFCFramework.build(proxy_count=args.proxies, seed=args.seed)
    print(framework.describe())

    shapes = (FlashCrowd(),) if args.flash_crowd else ()
    arrival = (
        MMPP(rates=(args.rate / 4, args.rate * 2), shapes=shapes)
        if args.arrival == "mmpp"
        else Poisson(rate=args.rate, shapes=shapes)
    )
    config = TrafficConfig(
        arrival=arrival,
        duration=args.duration,
        warmup=min(args.duration / 5, 2000.0),
        max_in_flight=args.max_in_flight,
        session=SessionConfig(),
    )
    sim = framework.simulator(shards=args.shards)
    if getattr(sim, "shards", 1) > 1:
        print(f"sharded simulator: {sim.shards} shards, "
              f"lookahead {sim.plan.lookahead:.1f} ms")
    engine = TrafficEngine(framework, config, sim=sim, seed=args.seed + 1)
    report = engine.run()
    payload = {"steady": report.to_dict()}
    print("steady state:")
    print(ascii_table(
        ["offered req/s", "completed req/s", "goodput", "p50 ms", "p95 ms",
         "p99 ms", "in-flight peak"],
        [[f"{report.offered_rate:.1f}", f"{report.completed_rate:.1f}",
          f"{report.goodput_ratio:.3f}", f"{report.latency_p50:.1f}",
          f"{report.latency_p95:.1f}", f"{report.latency_p99:.1f}",
          report.in_flight_peak]],
    ))

    if args.trace_out:
        count = engine.dump_trace(args.trace_out)
        print(f"request trace ({count} events) written to {args.trace_out}")

    if args.sweep:
        rates = [float(r) for r in args.sweep.split(",")]
        sweep = rate_sweep(
            framework, rates, config=config, seed=args.seed + 1,
            router=engine.router,
        )
        print("\nrate sweep:")
        print(ascii_table(
            ["sessions/ms", "offered req/s", "completed req/s", "goodput",
             "p50 ms", "p95 ms", "p99 ms", "in-flight peak"],
            sweep.rows(),
        ))
        print(f"saturation rate: {sweep.saturation_rate}")
        payload["sweep"] = {
            "rates": rates,
            "saturation_rate": sweep.saturation_rate,
            "points": [
                {"rate": p.rate, **p.report.to_dict()} for p in sweep.points
            ],
        }

    if args.under_faults:
        result = run_traffic_under_faults(
            framework,
            crash_restart_plan(framework.hfc, seed=args.seed + 30),
            config=config,
            traffic_seed=args.seed + 2,
        )
        print(f"\nunder faults (crash/restart): {result.scenario.summary()}")
        print(
            f"delivery continuity: calm {result.calm_continuity:.3f}, "
            f"fault window {result.fault_continuity:.3f}"
        )
        payload["under_faults"] = result.to_dict()

    if args.json:
        dump_json(payload, args.json)
        print(f"JSON written to {args.json}")
    return 0


def cmd_shard(args: argparse.Namespace) -> int:
    """Run the synthetic sharded-simulation workload and print the outcome."""
    from repro.traffic.shardload import run_shard_load, synthetic_overlay

    state = synthetic_overlay(args.proxies, args.clusters, seed=args.seed)
    result = run_shard_load(
        state,
        shards=args.shards,
        workers=args.workers,
        period=args.period,
        duration=args.duration,
        seed=args.seed,
    )
    print(ascii_table(
        ["proxies", "clusters", "shards", "workers", "events", "windows",
         "exchanged", "completed", "locality", "events/s"],
        [[result.proxies, result.clusters, result.shards, result.workers,
          result.events, result.windows, result.exchanged,
          f"{result.completed_ratio:.3f}", f"{result.locality:.3f}",
          f"{result.event_rate:.0f}"]],
    ))
    if args.json:
        dump_json(
            {
                "proxies": result.proxies,
                "clusters": result.clusters,
                "shards": result.shards,
                "workers": result.workers,
                "events": result.events,
                "windows": result.windows,
                "exchanged": result.exchanged,
                "requests": result.requests,
                "completed": result.completed,
                "completed_ratio": result.completed_ratio,
                "locality": result.locality,
                "event_rate": result.event_rate,
                "wall_seconds": result.wall_seconds,
            },
            args.json,
        )
        print(f"JSON written to {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Jin & Nahrstedt, Middleware 2003",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="route one request with every strategy")
    demo.add_argument("--proxies", type=int, default=100)
    _add_common(demo)
    demo.set_defaults(fn=cmd_demo)

    table1 = sub.add_parser("table1", help="print the (scaled) environments")
    _add_common(table1)
    table1.set_defaults(fn=cmd_table1)

    fig9 = sub.add_parser("fig9", help="regenerate Fig 9")
    _add_common(fig9)
    fig9.add_argument("--topologies", type=int, default=3)
    fig9.set_defaults(fn=cmd_fig9)

    fig10 = sub.add_parser("fig10", help="regenerate Fig 10")
    _add_common(fig10)
    fig10.add_argument("--topologies", type=int, default=2)
    fig10.add_argument("--requests", type=int, default=150)
    fig10.add_argument("--strategies", default="mesh,hfc_agg,hfc_full")
    fig10.set_defaults(fn=cmd_fig10)

    report = sub.add_parser(
        "report", help="regenerate the complete evaluation as markdown"
    )
    _add_common(report)
    report.add_argument("--topologies", type=int, default=2)
    report.add_argument("--requests", type=int, default=100)
    report.add_argument("--no-ablations", action="store_true")
    report.set_defaults(fn=cmd_report)

    protocol = sub.add_parser("protocol", help="run the state protocol")
    protocol.add_argument("--proxies", type=int, default=100)
    _add_common(protocol)
    protocol.set_defaults(fn=cmd_protocol)

    telemetry = sub.add_parser(
        "telemetry", help="exercise the instrumented layers, dump the metrics"
    )
    telemetry.add_argument("--proxies", type=int, default=60)
    telemetry.add_argument("--requests", type=int, default=25)
    _add_common(telemetry)
    telemetry.set_defaults(fn=cmd_telemetry)

    traffic = sub.add_parser(
        "traffic", help="run sustained open-loop session traffic"
    )
    traffic.add_argument("--proxies", type=int, default=100)
    traffic.add_argument("--rate", type=float, default=0.02,
                         help="session arrivals per simulated ms (default 0.02)")
    traffic.add_argument("--duration", type=float, default=10_000.0,
                         help="arrival horizon in simulated ms (default 10000)")
    traffic.add_argument("--max-in-flight", type=int, default=512,
                         help="admission cap on open sessions (default 512)")
    traffic.add_argument("--arrival", choices=("poisson", "mmpp"),
                         default="poisson")
    traffic.add_argument("--flash-crowd", action="store_true",
                         help="overlay a flash-crowd burst on the arrival rate")
    traffic.add_argument("--sweep", metavar="R1,R2,...", default=None,
                         help="also sweep these arrival rates and report the "
                              "saturation point")
    traffic.add_argument("--trace-out", metavar="FILE", default=None,
                         help="write the deterministic request trace as JSONL")
    traffic.add_argument("--under-faults", action="store_true",
                         help="also run the load under a crash/restart fault "
                              "plan with the convergence auditor")
    traffic.add_argument("--shards", type=int, default=None,
                         help="partition the event simulation into this many "
                              "per-cluster shards (results are invariant)")
    _add_common(traffic)
    traffic.set_defaults(fn=cmd_traffic)

    shard = sub.add_parser(
        "shard", help="run the synthetic sharded-simulation workload"
    )
    shard.add_argument("--proxies", type=int, default=10_000)
    shard.add_argument("--clusters", type=int, default=64)
    shard.add_argument("--shards", type=int, default=4)
    shard.add_argument("--workers", type=int, default=None,
                       help="run shards in this many worker processes "
                            "(must equal --shards; default in-process)")
    shard.add_argument("--period", type=float, default=500.0,
                       help="per-proxy request period in simulated ms")
    shard.add_argument("--duration", type=float, default=2000.0,
                       help="request-issue horizon in simulated ms")
    _add_common(shard)
    shard.set_defaults(fn=cmd_shard)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    code = args.fn(args)
    try:
        _dump_telemetry(args)
    except OSError as exc:
        print(f"error: could not write telemetry snapshot: {exc}",
              file=sys.stderr)
        return 1
    return code


if __name__ == "__main__":
    sys.exit(main())
