"""Persistence: save and load built overlays, in JSON or binary form.

Building a framework runs the full stochastic pipeline (topology draw,
landmark embedding, clustering). For reproducible experiment artifacts —
"the exact overlay these numbers came from" — this module serialises a
built :class:`~repro.core.framework.HFCFramework` and restores it
byte-for-byte equivalent: same topology, same coordinates, same
clustering, same borders, so every router built on top routes
identically. Two formats coexist:

* **JSON** (:func:`save_framework` / :func:`load_framework`) — the
  portable, diffable fallback: one human-readable document, float values
  round-tripped exactly by the JSON codec's shortest-repr rule.
* **Binary snapshot** (:func:`save_snapshot` / :func:`load_snapshot`) —
  one ``.npz`` archive holding the columnar overlay state
  (:class:`~repro.state.columnar.ColumnarOverlayState`) as raw float64 /
  int64 arrays plus one JSON metadata string. Arrays move between disk
  and the kernels without any per-node Python conversion, which is what
  makes warm starts an order of magnitude faster than a cold build.
  Snapshots carry the :class:`~repro.core.versioning.OverlayVersion` they
  were captured at, and optionally the state plane (SCT tables + delta
  streams, see ``StateDistributionProtocol.snapshot_state_plane``) so
  crash/restart scenarios can reload knowledge instead of re-learning it.

Delay-oracle caches are rebuilt lazily after loading; measurement-noise RNG
state is *not* preserved (a loaded framework issues fresh measurements).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.cluster.mstcluster import Clustering, ClusteringConfig
from repro.coords.embedding import EmbeddingReport
from repro.coords.space import CoordinateSpace
from repro.core.config import FrameworkConfig
from repro.core.framework import HFCFramework
from repro.core.versioning import OverlayVersion
from repro.graph.graph import Graph
from repro.netsim.physical import PhysicalNetwork
from repro.netsim.topology import PhysicalTopology, TransitStubConfig
from repro.overlay.hfc import HFCTopology
from repro.overlay.network import OverlayNetwork
from repro.services.catalog import ServiceCatalog
from repro.state.columnar import ColumnarOverlayState, HierarchyLevel
from repro.util.errors import ReproError

#: artifact schema version; bump on incompatible changes
FORMAT_VERSION = 1

#: binary snapshot schema version; bump on incompatible changes
SNAPSHOT_FORMAT_VERSION = 1


def framework_to_dict(framework: HFCFramework) -> Dict[str, Any]:
    """Serialise *framework* into a JSON-ready dict."""
    topo = framework.physical.topology
    return {
        "format_version": FORMAT_VERSION,
        "config": {
            "base": {
                k: v
                for k, v in dataclasses.asdict(framework.config).items()
                if k not in ("clustering", "transit_stub")
            },
            "clustering": dataclasses.asdict(framework.config.clustering),
            "transit_stub": dataclasses.asdict(framework.config.transit_stub),
        },
        "physical": {
            "noise": framework.physical.noise,
            "nodes": [
                {
                    "id": node,
                    "pos": list(topo.positions[node]),
                    "kind": topo.node_kind[node],
                    "stub_domain": topo.stub_domain.get(node, -1),
                }
                for node in topo.graph.nodes()
            ],
            "edges": [[u, v, w] for u, v, w in topo.graph.edges()],
        },
        "overlay": {
            "proxies": list(framework.overlay.proxies),
            "placement": {
                str(p): sorted(services)
                for p, services in framework.overlay.placement.items()
            },
        },
        "catalog": {
            "names": list(framework.catalog.names),
            "descriptions": dict(framework.catalog.descriptions),
        },
        "space": {
            str(p): list(framework.space.coordinate(p))
            for p in framework.space.nodes()
        },
        "embedding": {
            "landmark_ids": list(framework.embedding_report.landmark_ids),
            "landmark_coordinates": np.asarray(
                framework.embedding_report.landmark_coordinates
            ).tolist(),
            "dimension": framework.embedding_report.dimension,
            "measurement_count": framework.embedding_report.measurement_count,
            "landmark_fit_error": framework.embedding_report.landmark_fit_error,
        },
        "clustering": {
            "clusters": [list(c) for c in framework.clustering.clusters],
        },
        "borders": [
            [i, j, proxy] for (i, j), proxy in sorted(framework.hfc.borders.items())
        ],
    }


def framework_from_dict(payload: Dict[str, Any]) -> HFCFramework:
    """Reconstruct a framework from :func:`framework_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(
            f"unsupported artifact format {version!r} (expected {FORMAT_VERSION})"
        )

    config = FrameworkConfig(
        **payload["config"]["base"],
        clustering=ClusteringConfig(**payload["config"]["clustering"]),
        transit_stub=TransitStubConfig(**payload["config"]["transit_stub"]),
    )

    graph = Graph()
    positions = {}
    node_kind = {}
    stub_domain = {}
    for node in payload["physical"]["nodes"]:
        node_id = node["id"]
        graph.add_node(node_id)
        positions[node_id] = tuple(node["pos"])
        node_kind[node_id] = node["kind"]
        if node["stub_domain"] >= 0:
            stub_domain[node_id] = node["stub_domain"]
    for u, v, w in payload["physical"]["edges"]:
        graph.add_edge(u, v, w)
    topology = PhysicalTopology(
        graph=graph,
        positions=positions,
        node_kind=node_kind,
        stub_domain=stub_domain,
    )
    physical = PhysicalNetwork(topology, noise=payload["physical"]["noise"])

    proxies = list(payload["overlay"]["proxies"])
    placement = {
        int(p): frozenset(services)
        for p, services in payload["overlay"]["placement"].items()
    }
    space = CoordinateSpace(
        {int(p): tuple(coord) for p, coord in payload["space"].items()}
    )
    overlay = OverlayNetwork(
        physical=physical, proxies=proxies, placement=placement, space=space
    )

    catalog = ServiceCatalog(
        names=payload["catalog"]["names"],
        descriptions=payload["catalog"]["descriptions"],
    )
    embedding = EmbeddingReport(
        landmark_ids=list(payload["embedding"]["landmark_ids"]),
        landmark_coordinates=np.array(
            payload["embedding"]["landmark_coordinates"], dtype=float
        ),
        dimension=payload["embedding"]["dimension"],
        measurement_count=payload["embedding"]["measurement_count"],
        landmark_fit_error=payload["embedding"]["landmark_fit_error"],
    )
    clusters = [list(c) for c in payload["clustering"]["clusters"]]
    labels = {p: cid for cid, members in enumerate(clusters) for p in members}
    clustering = Clustering(clusters=clusters, labels=labels)

    borders = {(i, j): proxy for i, j, proxy in payload["borders"]}
    hfc = HFCTopology(
        overlay=overlay, clustering=clustering, space=space, borders=borders
    )
    return HFCFramework(
        config=config,
        physical=physical,
        overlay=overlay,
        catalog=catalog,
        space=space,
        embedding_report=embedding,
        clustering=clustering,
        hfc=hfc,
    )


def save_framework(framework: HFCFramework, path: str) -> None:
    """Write *framework* to *path* as JSON."""
    with open(path, "w") as handle:
        json.dump(framework_to_dict(framework), handle)


def load_framework(path: str) -> HFCFramework:
    """Load a framework previously written by :func:`save_framework`."""
    with open(path) as handle:
        return framework_from_dict(json.load(handle))


# -- binary snapshots ------------------------------------------------------------


@dataclass
class OverlaySnapshot:
    """One restored binary snapshot: framework + columnar state + version.

    ``framework`` is fully usable (route, run protocols, wrap in a
    :class:`~repro.membership.churn.DynamicOverlay` via
    ``DynamicOverlay.from_snapshot``); its topology carries ``columnar``
    attached, so routing table construction reads the restored arrays
    directly. ``state_plane``, when the snapshot carried one, maps
    ``str(proxy)`` to the capture ``StateDistributionProtocol.
    restore_state`` accepts.
    """

    framework: HFCFramework
    columnar: ColumnarOverlayState
    version: OverlayVersion
    state_plane: Optional[Dict[str, Any]] = None


def _snapshot_parts(target: Any) -> tuple:
    """``(framework, columnar)`` of a framework or dynamic overlay.

    Both paths materialise a *fresh* columnar state rather than reusing
    the build-time attachment: the state protocol mutates
    ``overlay.placement`` in place (``wipe_state`` with a service change,
    ``update_local_services``), which the attached state — captured at
    construction — would not reflect.
    """
    framework = getattr(target, "framework", None)
    if framework is None:
        fresh = ColumnarOverlayState.from_framework(target)
        attached = getattr(target.hfc, "columnar", None)
        if attached is not None and attached.levels:
            # carry the recursive hierarchy's level stack into the capture
            fresh.attach_levels(attached.levels)
        return target, fresh
    return framework, target.columnar()


def save_snapshot(
    target: Any,
    path: str,
    *,
    state_plane: Optional[Dict[str, Any]] = None,
) -> None:
    """Write *target* to *path* as one binary ``.npz`` snapshot.

    *target* is a built :class:`HFCFramework` or a
    :class:`~repro.membership.churn.DynamicOverlay` (whose live state —
    churned membership, borders, version — is captured, not the original
    framework's). *state_plane* is an optional
    ``StateDistributionProtocol.snapshot_state_plane()`` capture to embed.
    The archive is uncompressed on purpose: coordinates are incompressible
    float noise and save/load wall-clock is the point (see
    ``benchmarks/bench_snapshot.py``).
    """
    framework, columnar = _snapshot_parts(target)
    topo = framework.physical.topology
    nodes = list(topo.graph.nodes())
    kinds: List[str] = sorted({topo.node_kind[n] for n in nodes})
    kind_code = {kind: i for i, kind in enumerate(kinds)}
    edges = list(topo.graph.edges())
    report = framework.embedding_report
    meta = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "config": {
            "base": {
                k: v
                for k, v in dataclasses.asdict(framework.config).items()
                if k not in ("clustering", "transit_stub")
            },
            "clustering": dataclasses.asdict(framework.config.clustering),
            "transit_stub": dataclasses.asdict(framework.config.transit_stub),
        },
        "noise": framework.physical.noise,
        "catalog": {
            "names": list(framework.catalog.names),
            "descriptions": dict(framework.catalog.descriptions),
        },
        "service_names": list(columnar.service_names),
        "node_kinds": kinds,
        "embedding": {
            "dimension": report.dimension,
            "measurement_count": report.measurement_count,
            "landmark_fit_error": report.landmark_fit_error,
        },
        "version": {"epoch": columnar.epoch, "step": columnar.step},
        "hierarchy_levels": len(columnar.levels),
        "state_plane": state_plane,
    }
    level_arrays: Dict[str, np.ndarray] = {}
    for k, level in enumerate(columnar.levels):
        level_arrays[f"level{k}_parent"] = level.parent
        level_arrays[f"level{k}_ptr"] = level.ptr
        level_arrays[f"level{k}_members"] = level.members
        level_arrays[f"level{k}_borders"] = level.border_matrix
        level_arrays[f"level{k}_centroids"] = level.centroids
    with open(path, "wb") as handle:
        np.savez(
            handle,
            meta=np.array(json.dumps(meta)),
            **level_arrays,
            phys_nodes=np.array(nodes, dtype=np.int64),
            phys_pos=np.array(
                [topo.positions[n] for n in nodes], dtype=float
            ),
            phys_kind=np.array(
                [kind_code[topo.node_kind[n]] for n in nodes], dtype=np.int64
            ),
            phys_stub=np.array(
                [topo.stub_domain.get(n, -1) for n in nodes], dtype=np.int64
            ),
            edge_uv=np.array(
                [[u, v] for u, v, _ in edges], dtype=np.int64
            ).reshape(len(edges), 2),
            edge_w=np.array([w for _, _, w in edges], dtype=float),
            landmark_ids=np.array(report.landmark_ids, dtype=np.int64),
            landmark_coords=np.asarray(report.landmark_coordinates, dtype=float),
            proxies=columnar.proxies,
            coords=columnar.coords,
            labels=columnar.labels,
            cluster_ptr=columnar.cluster_ptr,
            cluster_members=columnar.cluster_members,
            border_matrix=columnar.border_matrix,
            placement_ptr=columnar.placement_ptr,
            placement_codes=columnar.placement_codes,
        )


def load_snapshot(path: str) -> OverlaySnapshot:
    """Load a snapshot previously written by :func:`save_snapshot`.

    The restored framework's coordinate space is built zero-copy over the
    snapshot's coordinate array (:meth:`ColumnarOverlayState.space_view`),
    and the topology gets the columnar state attached, so post-restore
    query-table construction consumes the loaded arrays directly.
    """
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        version = meta.get("format_version")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise ReproError(
                f"unsupported snapshot format {version!r} "
                f"(expected {SNAPSHOT_FORMAT_VERSION})"
            )
        arrays = {
            name: data[name]
            for name in (
                "phys_nodes",
                "phys_pos",
                "phys_kind",
                "phys_stub",
                "edge_uv",
                "edge_w",
                "landmark_ids",
                "landmark_coords",
                "proxies",
                "coords",
                "labels",
                "cluster_ptr",
                "cluster_members",
                "border_matrix",
                "placement_ptr",
                "placement_codes",
            )
        }
        levels = []
        for k in range(int(meta.get("hierarchy_levels", 0))):
            levels.append(
                HierarchyLevel(
                    parent=data[f"level{k}_parent"],
                    ptr=data[f"level{k}_ptr"],
                    members=data[f"level{k}_members"],
                    border_matrix=data[f"level{k}_borders"],
                    centroids=data[f"level{k}_centroids"],
                )
            )

    config = FrameworkConfig(
        **meta["config"]["base"],
        clustering=ClusteringConfig(**meta["config"]["clustering"]),
        transit_stub=TransitStubConfig(**meta["config"]["transit_stub"]),
    )
    kinds = meta["node_kinds"]
    graph = Graph()
    positions = {}
    node_kind = {}
    stub_domain = {}
    pos_rows = arrays["phys_pos"].tolist()
    for i, node in enumerate(arrays["phys_nodes"].tolist()):
        graph.add_node(node)
        positions[node] = tuple(pos_rows[i])
        node_kind[node] = kinds[int(arrays["phys_kind"][i])]
        domain = int(arrays["phys_stub"][i])
        if domain >= 0:
            stub_domain[node] = domain
    weights = arrays["edge_w"].tolist()
    for i, (u, v) in enumerate(arrays["edge_uv"].tolist()):
        graph.add_edge(u, v, weights[i])
    topology = PhysicalTopology(
        graph=graph,
        positions=positions,
        node_kind=node_kind,
        stub_domain=stub_domain,
    )
    physical = PhysicalNetwork(topology, noise=meta["noise"])

    columnar = ColumnarOverlayState(
        proxies=arrays["proxies"],
        coords=arrays["coords"],
        labels=arrays["labels"],
        cluster_ptr=arrays["cluster_ptr"],
        cluster_members=arrays["cluster_members"],
        border_matrix=arrays["border_matrix"],
        service_names=list(meta["service_names"]),
        placement_ptr=arrays["placement_ptr"],
        placement_codes=arrays["placement_codes"],
        epoch=int(meta["version"]["epoch"]),
        step=int(meta["version"]["step"]),
        levels=levels,
    )
    columnar.validate()
    hfc = columnar.hfc_view(physical)

    catalog = ServiceCatalog(
        names=meta["catalog"]["names"],
        descriptions=meta["catalog"]["descriptions"],
    )
    embedding = EmbeddingReport(
        landmark_ids=[int(x) for x in arrays["landmark_ids"]],
        landmark_coordinates=arrays["landmark_coords"],
        dimension=meta["embedding"]["dimension"],
        measurement_count=meta["embedding"]["measurement_count"],
        landmark_fit_error=meta["embedding"]["landmark_fit_error"],
    )
    framework = HFCFramework(
        config=config,
        physical=physical,
        overlay=hfc.overlay,
        catalog=catalog,
        space=hfc.space,
        embedding_report=embedding,
        clustering=hfc.clustering,
        hfc=hfc,
    )
    return OverlaySnapshot(
        framework=framework,
        columnar=columnar,
        version=columnar.version,
        state_plane=meta.get("state_plane"),
    )
