"""Persistence: save and load built frameworks as JSON artifacts.

Building a framework runs the full stochastic pipeline (topology draw,
landmark embedding, clustering). For reproducible experiment artifacts —
"the exact overlay these numbers came from" — this module serialises a
built :class:`~repro.core.framework.HFCFramework` to a single JSON document
and restores it byte-for-byte equivalent: same topology, same coordinates,
same clustering, same borders, so every router built on top routes
identically.

Delay-oracle caches are rebuilt lazily after loading; measurement-noise RNG
state is *not* preserved (a loaded framework issues fresh measurements).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

import numpy as np

from repro.cluster.mstcluster import Clustering, ClusteringConfig
from repro.coords.embedding import EmbeddingReport
from repro.coords.space import CoordinateSpace
from repro.core.config import FrameworkConfig
from repro.core.framework import HFCFramework
from repro.graph.graph import Graph
from repro.netsim.physical import PhysicalNetwork
from repro.netsim.topology import PhysicalTopology, TransitStubConfig
from repro.overlay.hfc import HFCTopology
from repro.overlay.network import OverlayNetwork
from repro.services.catalog import ServiceCatalog
from repro.util.errors import ReproError

#: artifact schema version; bump on incompatible changes
FORMAT_VERSION = 1


def framework_to_dict(framework: HFCFramework) -> Dict[str, Any]:
    """Serialise *framework* into a JSON-ready dict."""
    topo = framework.physical.topology
    return {
        "format_version": FORMAT_VERSION,
        "config": {
            "base": {
                k: v
                for k, v in dataclasses.asdict(framework.config).items()
                if k not in ("clustering", "transit_stub")
            },
            "clustering": dataclasses.asdict(framework.config.clustering),
            "transit_stub": dataclasses.asdict(framework.config.transit_stub),
        },
        "physical": {
            "noise": framework.physical.noise,
            "nodes": [
                {
                    "id": node,
                    "pos": list(topo.positions[node]),
                    "kind": topo.node_kind[node],
                    "stub_domain": topo.stub_domain.get(node, -1),
                }
                for node in topo.graph.nodes()
            ],
            "edges": [[u, v, w] for u, v, w in topo.graph.edges()],
        },
        "overlay": {
            "proxies": list(framework.overlay.proxies),
            "placement": {
                str(p): sorted(services)
                for p, services in framework.overlay.placement.items()
            },
        },
        "catalog": {
            "names": list(framework.catalog.names),
            "descriptions": dict(framework.catalog.descriptions),
        },
        "space": {
            str(p): list(framework.space.coordinate(p))
            for p in framework.space.nodes()
        },
        "embedding": {
            "landmark_ids": list(framework.embedding_report.landmark_ids),
            "landmark_coordinates": np.asarray(
                framework.embedding_report.landmark_coordinates
            ).tolist(),
            "dimension": framework.embedding_report.dimension,
            "measurement_count": framework.embedding_report.measurement_count,
            "landmark_fit_error": framework.embedding_report.landmark_fit_error,
        },
        "clustering": {
            "clusters": [list(c) for c in framework.clustering.clusters],
        },
        "borders": [
            [i, j, proxy] for (i, j), proxy in sorted(framework.hfc.borders.items())
        ],
    }


def framework_from_dict(payload: Dict[str, Any]) -> HFCFramework:
    """Reconstruct a framework from :func:`framework_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(
            f"unsupported artifact format {version!r} (expected {FORMAT_VERSION})"
        )

    config = FrameworkConfig(
        **payload["config"]["base"],
        clustering=ClusteringConfig(**payload["config"]["clustering"]),
        transit_stub=TransitStubConfig(**payload["config"]["transit_stub"]),
    )

    graph = Graph()
    positions = {}
    node_kind = {}
    stub_domain = {}
    for node in payload["physical"]["nodes"]:
        node_id = node["id"]
        graph.add_node(node_id)
        positions[node_id] = tuple(node["pos"])
        node_kind[node_id] = node["kind"]
        if node["stub_domain"] >= 0:
            stub_domain[node_id] = node["stub_domain"]
    for u, v, w in payload["physical"]["edges"]:
        graph.add_edge(u, v, w)
    topology = PhysicalTopology(
        graph=graph,
        positions=positions,
        node_kind=node_kind,
        stub_domain=stub_domain,
    )
    physical = PhysicalNetwork(topology, noise=payload["physical"]["noise"])

    proxies = list(payload["overlay"]["proxies"])
    placement = {
        int(p): frozenset(services)
        for p, services in payload["overlay"]["placement"].items()
    }
    space = CoordinateSpace(
        {int(p): tuple(coord) for p, coord in payload["space"].items()}
    )
    overlay = OverlayNetwork(
        physical=physical, proxies=proxies, placement=placement, space=space
    )

    catalog = ServiceCatalog(
        names=payload["catalog"]["names"],
        descriptions=payload["catalog"]["descriptions"],
    )
    embedding = EmbeddingReport(
        landmark_ids=list(payload["embedding"]["landmark_ids"]),
        landmark_coordinates=np.array(
            payload["embedding"]["landmark_coordinates"], dtype=float
        ),
        dimension=payload["embedding"]["dimension"],
        measurement_count=payload["embedding"]["measurement_count"],
        landmark_fit_error=payload["embedding"]["landmark_fit_error"],
    )
    clusters = [list(c) for c in payload["clustering"]["clusters"]]
    labels = {p: cid for cid, members in enumerate(clusters) for p in members}
    clustering = Clustering(clusters=clusters, labels=labels)

    borders = {(i, j): proxy for i, j, proxy in payload["borders"]}
    hfc = HFCTopology(
        overlay=overlay, clustering=clustering, space=space, borders=borders
    )
    return HFCFramework(
        config=config,
        physical=physical,
        overlay=overlay,
        catalog=catalog,
        space=space,
        embedding_report=embedding,
        clustering=clustering,
        hfc=hfc,
    )


def save_framework(framework: HFCFramework, path: str) -> None:
    """Write *framework* to *path* as JSON."""
    with open(path, "w") as handle:
        json.dump(framework_to_dict(framework), handle)


def load_framework(path: str) -> HFCFramework:
    """Load a framework previously written by :func:`save_framework`."""
    with open(path) as handle:
        return framework_from_dict(json.load(handle))
