"""Shortest-path algorithms over :class:`repro.graph.Graph`.

Dijkstra with a binary heap is the workhorse: the physical network reports
end-to-end delays as shortest-path delays, and the mesh baseline routes over
overlay links the same way. A lazy-deletion heap keeps the implementation
short while staying O((V+E) log V).
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.util.errors import GraphError

Node = Hashable


def dijkstra(
    graph: Graph,
    source: Node,
    targets: Optional[Iterable[Node]] = None,
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Single-source shortest paths from *source*.

    Returns ``(dist, parent)`` where ``dist[v]`` is the shortest distance from
    *source* to every reachable ``v`` and ``parent`` maps each reached node
    (except the source) to its predecessor on a shortest path.

    If *targets* is given, the search stops early once every target has been
    settled (unreachable targets simply stay absent from ``dist``).
    """
    if source not in graph:
        raise GraphError(f"source {source!r} not in graph")
    remaining = set(targets) if targets is not None else None
    dist: Dict[Node, float] = {source: 0.0}
    parent: Dict[Node, Node] = {}
    settled = set()
    heap: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 1  # tie-breaker so heterogeneous node types never get compared
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, w in graph.neighbors(u).items():
            nd = d + w
            if v not in dist or nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, counter, v))
                counter += 1
    return dist, parent


def shortest_path(graph: Graph, source: Node, target: Node) -> Tuple[List[Node], float]:
    """Shortest path from *source* to *target* as ``(node_list, distance)``.

    Raises :class:`GraphError` if *target* is unreachable.
    """
    dist, parent = dijkstra(graph, source, targets=[target])
    if target not in dist:
        raise GraphError(f"{target!r} unreachable from {source!r}")
    return reconstruct_path(parent, source, target), dist[target]


def reconstruct_path(parent: Dict[Node, Node], source: Node, target: Node) -> List[Node]:
    """Walk *parent* pointers from *target* back to *source*."""
    path = [target]
    node = target
    while node != source:
        if node not in parent:
            raise GraphError(f"no parent chain from {target!r} to {source!r}")
        node = parent[node]
        path.append(node)
    path.reverse()
    return path


def single_source_distances(graph: Graph, source: Node) -> Dict[Node, float]:
    """Distances only (convenience wrapper around :func:`dijkstra`)."""
    dist, _ = dijkstra(graph, source)
    return dist


def all_pairs_distances(
    graph: Graph, sources: Optional[Iterable[Node]] = None
) -> Dict[Node, Dict[Node, float]]:
    """Shortest distances from each node in *sources* (default: all nodes).

    Returns ``{source: {node: distance}}``. For the simulation sizes used in
    the paper (≤1200 physical nodes, ≤1000 proxies) repeated Dijkstra is the
    right trade-off versus Floyd-Warshall's O(V^3).
    """
    if sources is None:
        sources = graph.nodes()
    return {s: single_source_distances(graph, s) for s in sources}


def eccentricity(graph: Graph, node: Node) -> float:
    """Greatest shortest-path distance from *node* to any reachable node."""
    dist = single_source_distances(graph, node)
    return max(dist.values())
