"""Minimum spanning trees: Kruskal (with union-find) and Prim.

Zahn's clustering (Section 3.2 of the paper) removes "inconsistent" edges
from the MST of the proxy coordinate cloud. The cloud's distance graph is
complete, so we also provide :func:`euclidean_mst`, a numpy-vectorised Prim
over implicit pairwise Euclidean distances that never materialises the
O(n^2) edge list in Python objects.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.util.errors import GraphError

Node = Hashable


class UnionFind:
    """Disjoint-set forest with path compression and union by rank."""

    def __init__(self, items: Sequence[Node] = ()) -> None:
        self._parent: Dict[Node, Node] = {}
        self._rank: Dict[Node, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Node) -> None:
        """Register *item* as its own singleton set (no-op if known)."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: Node) -> Node:
        """Representative of *item*'s set (with path compression)."""
        if item not in self._parent:
            raise GraphError(f"{item!r} not in union-find")
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Node, b: Node) -> bool:
        """Merge the sets of *a* and *b*; returns False if already merged."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return True

    def connected(self, a: Node, b: Node) -> bool:
        """True if *a* and *b* are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> List[List[Node]]:
        """All sets as lists (deterministic order by first insertion)."""
        by_root: Dict[Node, List[Node]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return list(by_root.values())


def kruskal_mst(graph: Graph) -> Graph:
    """Minimum spanning forest of *graph* via Kruskal's algorithm.

    Works on disconnected graphs (returns a spanning forest). Ties are broken
    deterministically by edge insertion order.
    """
    forest = Graph()
    forest.add_nodes(graph.nodes())
    uf = UnionFind(graph.nodes())
    edges = sorted(graph.edges(), key=lambda e: e[2])
    for u, v, w in edges:
        if uf.union(u, v):
            forest.add_edge(u, v, w)
    return forest


def prim_mst(graph: Graph) -> Graph:
    """Minimum spanning tree via Prim; raises if *graph* is disconnected."""
    import heapq

    nodes = graph.nodes()
    if not nodes:
        return Graph()
    tree = Graph()
    tree.add_node(nodes[0])
    visited = {nodes[0]}
    heap: List[Tuple[float, int, Node, Node]] = []
    counter = 0
    for v, w in graph.neighbors(nodes[0]).items():
        heapq.heappush(heap, (w, counter, nodes[0], v))
        counter += 1
    while heap and len(visited) < len(nodes):
        w, _, u, v = heapq.heappop(heap)
        if v in visited:
            continue
        visited.add(v)
        tree.add_edge(u, v, w)
        for nxt, nw in graph.neighbors(v).items():
            if nxt not in visited:
                heapq.heappush(heap, (nw, counter, v, nxt))
                counter += 1
    if len(visited) < len(nodes):
        raise GraphError("prim_mst requires a connected graph")
    return tree


def euclidean_mst(points: np.ndarray) -> List[Tuple[int, int, float]]:
    """MST of the complete Euclidean graph over *points* (shape ``(n, k)``).

    Vectorised argmin Prim over *squared* distances: maintains, for every
    unvisited point, the cheapest connection into the growing tree. Each
    round costs one O(nk) difference + reduction plus O(n) bookkeeping; the
    square root is taken once per emitted edge instead of n times per
    round. O(n^2) time, O(n) extra memory — no O(n^2) distance matrix is
    stored.

    Squared distances are computed difference-first
    (``sum((p - q)^2)``), NOT via the ``|p|^2 + |q|^2 - 2 p.q`` norm
    expansion: the expanded form loses the entire value to cancellation for
    near-coincident points (a duplicate point would get a phantom ~1e-7
    edge weight), while the difference form is exact wherever
    :func:`euclidean_mst_reference` is. Emitted weights are therefore
    bit-identical to the reference's.

    Returns MST edges as ``(i, j, distance)`` index triples.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise GraphError(f"points must be 2-D (n, k), got shape {pts.shape}")
    n = pts.shape[0]
    if n == 0:
        return []
    in_tree = np.zeros(n, dtype=bool)
    best_d2 = np.full(n, np.inf)
    best_from = np.zeros(n, dtype=int)
    edges: List[Tuple[int, int, float]] = []
    current = 0
    in_tree[0] = True
    for _ in range(n - 1):
        delta = pts - pts[current]
        d2 = np.einsum("ij,ij->i", delta, delta)
        closer = (~in_tree) & (d2 < best_d2)
        best_d2[closer] = d2[closer]
        best_from[closer] = current
        masked = np.where(in_tree, np.inf, best_d2)
        nxt = int(np.argmin(masked))
        if not np.isfinite(masked[nxt]):
            raise GraphError("euclidean_mst: disconnected input (NaN coordinates?)")
        edges.append((int(best_from[nxt]), nxt, float(np.sqrt(best_d2[nxt]))))
        in_tree[nxt] = True
        current = nxt
    return edges


def euclidean_mst_reference(points: np.ndarray) -> List[Tuple[int, int, float]]:
    """The pre-vectorization :func:`euclidean_mst`: per-round full-distance
    Prim (``sqrt`` over all n candidates every round).

    Kept as the reference implementation the property/equivalence tests and
    the construction benchmark compare against.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise GraphError(f"points must be 2-D (n, k), got shape {pts.shape}")
    n = pts.shape[0]
    if n == 0:
        return []
    in_tree = np.zeros(n, dtype=bool)
    best_dist = np.full(n, np.inf)
    best_from = np.zeros(n, dtype=int)
    edges: List[Tuple[int, int, float]] = []
    current = 0
    in_tree[0] = True
    for _ in range(n - 1):
        delta = pts - pts[current]
        dist = np.sqrt(np.einsum("ij,ij->i", delta, delta))
        closer = (~in_tree) & (dist < best_dist)
        best_dist[closer] = dist[closer]
        best_from[closer] = current
        masked = np.where(in_tree, np.inf, best_dist)
        nxt = int(np.argmin(masked))
        if not np.isfinite(masked[nxt]):
            raise GraphError("euclidean_mst: disconnected input (NaN coordinates?)")
        edges.append((int(best_from[nxt]), nxt, float(best_dist[nxt])))
        in_tree[nxt] = True
        current = nxt
    return edges


def dense_prim_mst(weights: np.ndarray) -> List[Tuple[int, int, float]]:
    """MST of a complete graph given its dense weight matrix.

    The same numpy argmin Prim as :func:`euclidean_mst` but over arbitrary
    precomputed weights (``(n, n)``, symmetric, ``inf`` for missing edges).
    Raises :class:`GraphError` when the matrix describes a disconnected
    graph. Returns MST edges as ``(i, j, weight)`` index triples.
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise GraphError(f"weights must be square (n, n), got shape {w.shape}")
    n = w.shape[0]
    if n == 0:
        return []
    in_tree = np.zeros(n, dtype=bool)
    best_w = np.full(n, np.inf)
    best_from = np.zeros(n, dtype=int)
    edges: List[Tuple[int, int, float]] = []
    current = 0
    in_tree[0] = True
    for _ in range(n - 1):
        row = w[current]
        closer = (~in_tree) & (row < best_w)
        best_w[closer] = row[closer]
        best_from[closer] = current
        masked = np.where(in_tree, np.inf, best_w)
        nxt = int(np.argmin(masked))
        if not np.isfinite(masked[nxt]):
            raise GraphError("dense_prim_mst: disconnected weight matrix")
        edges.append((int(best_from[nxt]), nxt, float(best_w[nxt])))
        in_tree[nxt] = True
        current = nxt
    return edges
