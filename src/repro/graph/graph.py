"""A from-scratch weighted undirected graph.

The physical-network substrate, the overlay topologies, and the MST-based
clusterer all operate on this structure. It deliberately mirrors the small
slice of the ``networkx.Graph`` API the library needs (``add_edge``,
``neighbors``, ``has_edge``…) so tests can cross-validate against networkx,
but it stores adjacency as plain dicts for speed and has no third-party
dependency.

Nodes may be any hashable object. Edge weights are floats (delays, in the
simulations). Parallel edges are not supported: re-adding an edge overwrites
its weight.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Tuple

from repro.util.errors import GraphError

Node = Hashable
Edge = Tuple[Node, Node, float]


class Graph:
    """Weighted undirected graph backed by nested adjacency dicts."""

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add *node* (no-op if already present)."""
        if node not in self._adj:
            self._adj[node] = {}

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add every node in *nodes*."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add edge ``{u, v}`` with *weight*, creating endpoints as needed.

        Self-loops are rejected: they are meaningless for delay graphs and
        silently corrupt shortest-path bookkeeping.
        """
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed")
        if weight < 0:
            raise GraphError(f"negative weight {weight!r} on edge ({u!r}, {v!r})")
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove edge ``{u, v}``; raises :class:`GraphError` if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        del self._adj[u][v]
        del self._adj[v][u]

    def remove_node(self, node: Node) -> None:
        """Remove *node* and every incident edge."""
        if node not in self._adj:
            raise GraphError(f"node {node!r} not in graph")
        for neighbor in list(self._adj[node]):
            del self._adj[neighbor][node]
        del self._adj[node]

    # -- queries ----------------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Yield each undirected edge exactly once as ``(u, v, weight)``."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if (v, u) not in seen:
                    seen.add((u, v))
                    yield (u, v, w)

    def has_edge(self, u: Node, v: Node) -> bool:
        """True if edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Node, v: Node) -> float:
        """Weight of edge ``{u, v}``; raises :class:`GraphError` if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        return self._adj[u][v]

    def neighbors(self, node: Node) -> Dict[Node, float]:
        """Mapping ``neighbor -> weight`` for *node* (do not mutate)."""
        if node not in self._adj:
            raise GraphError(f"node {node!r} not in graph")
        return self._adj[node]

    def degree(self, node: Node) -> int:
        """Number of edges incident to *node*."""
        return len(self.neighbors(node))

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    def copy(self) -> "Graph":
        """Deep copy of the graph structure (nodes are shared references)."""
        clone = Graph()
        for node in self._adj:
            clone.add_node(node)
        for u, v, w in self.edges():
            clone.add_edge(u, v, w)
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Induced subgraph on *nodes* (unknown nodes are ignored)."""
        keep = {n for n in nodes if n in self._adj}
        sub = Graph()
        for node in keep:
            sub.add_node(node)
        for u, v, w in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, w)
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(nodes={self.node_count}, edges={self.edge_count})"
