"""From-scratch graph substrate: graphs, shortest paths, MSTs, components."""

from repro.graph.components import component_of, connected_components, is_connected
from repro.graph.graph import Graph
from repro.graph.mst import (
    UnionFind,
    dense_prim_mst,
    euclidean_mst,
    euclidean_mst_reference,
    kruskal_mst,
    prim_mst,
)
from repro.graph.shortest_paths import (
    all_pairs_distances,
    dijkstra,
    eccentricity,
    reconstruct_path,
    shortest_path,
    single_source_distances,
)

__all__ = [
    "Graph",
    "UnionFind",
    "all_pairs_distances",
    "component_of",
    "connected_components",
    "dijkstra",
    "eccentricity",
    "dense_prim_mst",
    "euclidean_mst",
    "euclidean_mst_reference",
    "is_connected",
    "kruskal_mst",
    "prim_mst",
    "reconstruct_path",
    "shortest_path",
    "single_source_distances",
]
