"""Connected components and connectivity checks."""

from __future__ import annotations

from collections import deque
from typing import Hashable, List, Set

from repro.graph.graph import Graph

Node = Hashable


def connected_components(graph: Graph) -> List[List[Node]]:
    """All connected components, each as a list of nodes.

    Components are returned in order of their first node's insertion, and
    nodes within a component are in BFS order from that first node, so the
    result is deterministic for a deterministically built graph.
    """
    seen: Set[Node] = set()
    components: List[List[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component = []
        queue = deque([start])
        seen.add(start)
        while queue:
            node = queue.popleft()
            component.append(node)
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    return components


def is_connected(graph: Graph) -> bool:
    """True if *graph* has at most one connected component."""
    return len(connected_components(graph)) <= 1


def component_of(graph: Graph, node: Node) -> List[Node]:
    """The connected component containing *node* (BFS order)."""
    seen = {node}
    queue = deque([node])
    component = []
    while queue:
        current = queue.popleft()
        component.append(current)
        for neighbor in graph.neighbors(current):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return component
