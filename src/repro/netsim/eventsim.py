"""A small discrete-event simulation engine.

The hierarchical state-distribution protocol (paper Section 4) runs on this
engine: proxies are :class:`Process` subclasses, messages are delivered after
the physical delay between sender and receiver, and periodic behaviour is
expressed with :meth:`Simulator.schedule_every`.

The engine is deliberately minimal — an event heap with deterministic
tie-breaking — because the paper's protocol needs nothing more, and a minimal
engine is easy to reason about when asserting convergence times in tests.
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.telemetry import Counter, Histogram, Telemetry, get_telemetry
from repro.util.errors import StateError

#: delivery-latency histogram buckets (simulated ms)
DELIVERY_LATENCY_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)

Address = Hashable

#: A delivery interceptor: called once per :meth:`Simulator.send` with the
#: message and its nominal delay; returns the list of delays at which
#: copies of the message should actually be delivered. ``None`` means
#: "deliver normally" (equivalent to ``[delay]``), an empty list drops the
#: message, two entries duplicate it, and a perturbed delay models jitter
#: or reordering. The fault-injection layer is the canonical implementor.
DeliveryInterceptor = Callable[["Message", float], Optional[List[float]]]


@dataclass(frozen=True)
class Message:
    """A protocol message in flight.

    Attributes:
        sender: address of the sending process.
        recipient: address of the receiving process.
        kind: message type tag (e.g. ``"local_state"``).
        payload: arbitrary message body.
        size: abstract size used by overhead accounting (e.g. number of
            service names carried).
    """

    sender: Address
    recipient: Address
    kind: str
    payload: Any
    size: int = 1


class Simulator:
    """Event heap with simulated clock and message-delivery bookkeeping.

    Every simulator owns a private :class:`~repro.telemetry.Telemetry`
    scope (pass one to share): per-kind delivered-message/byte counters
    and delivery-latency histograms accumulate there, and the run loops
    mark the simulator as the active clock source so spans and events
    emitted by code running under the engine are stamped with ``now``.
    A finished experiment folds the scope into the process-wide one with
    ``sim.telemetry.publish()``.
    """

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._processes: Dict[Address, "Process"] = {}
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        #: per-kind (message counter, byte counter, latency histogram)
        self._delivery_handles: Dict[str, Tuple[Counter, Counter, Histogram]] = {}
        #: optional hook on the delivery path (see :data:`DeliveryInterceptor`)
        self.interceptor: Optional[DeliveryInterceptor] = None

    # -- telemetry -----------------------------------------------------------

    @property
    def messages_delivered(self) -> int:
        """Total delivered messages (all kinds), from the metrics registry."""
        return self.telemetry.registry.total("sim.messages.delivered")

    @property
    def bytes_delivered(self) -> int:
        """Total delivered size units (all kinds), from the registry."""
        return self.telemetry.registry.total("sim.bytes.delivered")

    def _record_delivery(self, message: Message, latency: float) -> None:
        handles = self._delivery_handles.get(message.kind)
        if handles is None:
            registry = self.telemetry.registry
            handles = (
                registry.counter("sim.messages.delivered", kind=message.kind),
                registry.counter("sim.bytes.delivered", kind=message.kind),
                registry.histogram(
                    "sim.delivery.latency",
                    DELIVERY_LATENCY_BUCKETS,
                    kind=message.kind,
                ),
            )
            self._delivery_handles[message.kind] = handles
        messages, size_units, latency_hist = handles
        messages.inc()
        size_units.inc(message.size)
        latency_hist.observe(latency)

    @contextmanager
    def _running(self) -> Iterator[None]:
        """Mark this simulator as the active clock source while executing."""
        default = get_telemetry()
        with self.telemetry.simulation(self):
            if default is self.telemetry:
                yield
            else:
                with default.simulation(self):
                    yield

    # -- process registry ----------------------------------------------------

    def register(self, process: "Process") -> None:
        """Attach *process*; its :meth:`Process.start` runs at time now."""
        if process.address in self._processes:
            raise StateError(f"duplicate process address {process.address!r}")
        self._processes[process.address] = process
        process.simulator = self
        self.schedule(0.0, process.start)

    def process(self, address: Address) -> "Process":
        """The registered process at *address*."""
        try:
            return self._processes[address]
        except KeyError:
            raise StateError(f"no process registered at {address!r}") from None

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run *action* after *delay* simulated time units."""
        if delay < 0:
            raise StateError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, next(self._counter), action))

    def schedule_every(
        self,
        period: float,
        action: Callable[[], None],
        *,
        first_delay: Optional[float] = None,
        until: Optional[float] = None,
    ) -> None:
        """Run *action* periodically every *period* units.

        The first firing happens after ``first_delay`` (default: one period).
        If *until* is given, firings at or after that time are suppressed.
        """
        if period <= 0:
            raise StateError(f"period must be positive, got {period}")

        def fire() -> None:
            if until is not None and self.now >= until:
                return
            action()
            self.schedule(period, fire)

        self.schedule(period if first_delay is None else first_delay, fire)

    def send(self, message: Message, delay: float) -> None:
        """Deliver *message* to its recipient after *delay* units.

        If an :attr:`interceptor` is installed it decides the fate of the
        message first: the nominal single delivery can become a drop, a
        duplicate, or a perturbed-delay delivery (jitter/reordering). The
        protocol layers above never see the difference — exactly the point
        of hooking faults in here.
        """
        sent_at = self.now
        delays = [delay]
        if self.interceptor is not None:
            decided = self.interceptor(message, delay)
            if decided is not None:
                delays = decided

        def deliver() -> None:
            self._record_delivery(message, self.now - sent_at)
            self.process(message.recipient).receive(message)

        for actual in delays:
            self.schedule(actual, deliver)

    # -- execution ---------------------------------------------------------------

    def run_until(self, end_time: float) -> None:
        """Process events with timestamp <= *end_time*; clock ends there."""
        with self._running():
            while self._heap and self._heap[0][0] <= end_time:
                time, _, action = heapq.heappop(self._heap)
                self.now = time
                action()
            self.now = max(self.now, end_time)

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Drain the event heap completely (bounded by *max_events*)."""
        with self._running():
            for _ in range(max_events):
                if not self._heap:
                    return
                time, _, action = heapq.heappop(self._heap)
                self.now = time
                action()
        raise StateError(f"run_all exceeded {max_events} events; runaway schedule?")

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._heap)


class Process:
    """Base class for simulated protocol participants."""

    def __init__(self, address: Address) -> None:
        self.address = address
        self.simulator: Optional[Simulator] = None

    def start(self) -> None:
        """Hook invoked once when the simulation registers the process."""

    def receive(self, message: Message) -> None:
        """Hook invoked on message delivery."""

    def send(
        self,
        recipient: Address,
        kind: str,
        payload: Any,
        delay: float,
        size: int = 1,
    ) -> None:
        """Send a message to *recipient*, delivered after *delay*."""
        if self.simulator is None:
            raise StateError(f"process {self.address!r} is not registered")
        self.simulator.send(
            Message(self.address, recipient, kind, payload, size), delay
        )
