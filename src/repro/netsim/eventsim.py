"""A small discrete-event simulation engine.

The hierarchical state-distribution protocol (paper Section 4) runs on this
engine: proxies are :class:`Process` subclasses, messages are delivered after
the physical delay between sender and receiver, and periodic behaviour is
expressed with :meth:`Simulator.schedule_every`.

The engine is deliberately minimal — an event heap with deterministic
tie-breaking — because the paper's protocol needs nothing more, and a minimal
engine is easy to reason about when asserting convergence times in tests.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.util.errors import StateError

Address = Hashable


@dataclass(frozen=True)
class Message:
    """A protocol message in flight.

    Attributes:
        sender: address of the sending process.
        recipient: address of the receiving process.
        kind: message type tag (e.g. ``"local_state"``).
        payload: arbitrary message body.
        size: abstract size used by overhead accounting (e.g. number of
            service names carried).
    """

    sender: Address
    recipient: Address
    kind: str
    payload: Any
    size: int = 1


class Simulator:
    """Event heap with simulated clock and message-delivery bookkeeping."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._processes: Dict[Address, "Process"] = {}
        #: running totals, exposed for protocol-overhead experiments
        self.messages_delivered: int = 0
        self.bytes_delivered: int = 0

    # -- process registry ----------------------------------------------------

    def register(self, process: "Process") -> None:
        """Attach *process*; its :meth:`Process.start` runs at time now."""
        if process.address in self._processes:
            raise StateError(f"duplicate process address {process.address!r}")
        self._processes[process.address] = process
        process.simulator = self
        self.schedule(0.0, process.start)

    def process(self, address: Address) -> "Process":
        """The registered process at *address*."""
        try:
            return self._processes[address]
        except KeyError:
            raise StateError(f"no process registered at {address!r}") from None

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run *action* after *delay* simulated time units."""
        if delay < 0:
            raise StateError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, next(self._counter), action))

    def schedule_every(
        self,
        period: float,
        action: Callable[[], None],
        *,
        first_delay: Optional[float] = None,
        until: Optional[float] = None,
    ) -> None:
        """Run *action* periodically every *period* units.

        The first firing happens after ``first_delay`` (default: one period).
        If *until* is given, firings at or after that time are suppressed.
        """
        if period <= 0:
            raise StateError(f"period must be positive, got {period}")

        def fire() -> None:
            if until is not None and self.now >= until:
                return
            action()
            self.schedule(period, fire)

        self.schedule(period if first_delay is None else first_delay, fire)

    def send(self, message: Message, delay: float) -> None:
        """Deliver *message* to its recipient after *delay* units."""

        def deliver() -> None:
            self.messages_delivered += 1
            self.bytes_delivered += message.size
            self.process(message.recipient).receive(message)

        self.schedule(delay, deliver)

    # -- execution ---------------------------------------------------------------

    def run_until(self, end_time: float) -> None:
        """Process events with timestamp <= *end_time*; clock ends there."""
        while self._heap and self._heap[0][0] <= end_time:
            time, _, action = heapq.heappop(self._heap)
            self.now = time
            action()
        self.now = max(self.now, end_time)

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Drain the event heap completely (bounded by *max_events*)."""
        for _ in range(max_events):
            if not self._heap:
                return
            time, _, action = heapq.heappop(self._heap)
            self.now = time
            action()
        raise StateError(f"run_all exceeded {max_events} events; runaway schedule?")

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._heap)


class Process:
    """Base class for simulated protocol participants."""

    def __init__(self, address: Address) -> None:
        self.address = address
        self.simulator: Optional[Simulator] = None

    def start(self) -> None:
        """Hook invoked once when the simulation registers the process."""

    def receive(self, message: Message) -> None:
        """Hook invoked on message delivery."""

    def send(
        self,
        recipient: Address,
        kind: str,
        payload: Any,
        delay: float,
        size: int = 1,
    ) -> None:
        """Send a message to *recipient*, delivered after *delay*."""
        if self.simulator is None:
            raise StateError(f"process {self.address!r} is not registered")
        self.simulator.send(
            Message(self.address, recipient, kind, payload, size), delay
        )
