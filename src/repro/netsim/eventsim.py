"""A small discrete-event simulation engine.

The hierarchical state-distribution protocol (paper Section 4) runs on this
engine: proxies are :class:`Process` subclasses, messages are delivered after
the physical delay between sender and receiver, and periodic behaviour is
expressed with :meth:`Simulator.schedule_every`.

The engine is deliberately minimal — an event heap with deterministic
tie-breaking — because the paper's protocol needs nothing more, and a minimal
engine is easy to reason about when asserting convergence times in tests.
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.telemetry import Counter, Histogram, Telemetry, get_telemetry
from repro.util.errors import StateError

#: delivery-latency histogram buckets (simulated ms)
DELIVERY_LATENCY_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)

Address = Hashable

#: A delivery interceptor: called once per :meth:`Simulator.send` with the
#: message and its nominal delay; returns the list of delays at which
#: copies of the message should actually be delivered. ``None`` means
#: "deliver normally" (equivalent to ``[delay]``), an empty list drops the
#: message, two entries duplicate it, and a perturbed delay models jitter
#: or reordering. The fault-injection layer is the canonical implementor.
DeliveryInterceptor = Callable[["Message", float], Optional[List[float]]]


@dataclass(frozen=True)
class Message:
    """A protocol message in flight.

    Attributes:
        sender: address of the sending process.
        recipient: address of the receiving process.
        kind: message type tag (e.g. ``"local_state"``).
        payload: arbitrary message body.
        size: abstract size used by overhead accounting (e.g. number of
            service names carried).
    """

    sender: Address
    recipient: Address
    kind: str
    payload: Any
    size: int = 1


class Simulator:
    """Event heap with simulated clock and message-delivery bookkeeping.

    Every simulator owns a private :class:`~repro.telemetry.Telemetry`
    scope (pass one to share): per-kind delivered-message/byte counters
    and delivery-latency histograms accumulate there, and the run loops
    mark the simulator as the active clock source so spans and events
    emitted by code running under the engine are stamped with ``now``.
    A finished experiment folds the scope into the process-wide one with
    ``sim.telemetry.publish()``.
    """

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._processes: Dict[Address, "Process"] = {}
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        #: per-kind (message counter, byte counter, latency histogram)
        self._delivery_handles: Dict[str, Tuple[Counter, Counter, Histogram]] = {}
        #: per-kind (sent counter, duplicated counter)
        self._send_handles: Dict[str, Tuple[Counter, Counter]] = {}
        #: per-(kind, cause) drop counter
        self._drop_handles: Dict[Tuple[str, str], Counter] = {}
        #: optional hook on the delivery path (see :data:`DeliveryInterceptor`)
        self.interceptor: Optional[DeliveryInterceptor] = None
        # Plain-int mirrors of the conservation counters so the invariant
        # `sent + duplicated == delivered + dropped + pending` can be checked
        # every window barrier without scanning the metrics registry.
        self._n_sent = 0
        self._n_duplicated = 0
        self._n_delivered = 0
        self._n_dropped = 0
        self._n_undelivered = 0
        self._n_events = 0

    # -- telemetry -----------------------------------------------------------

    @property
    def messages_delivered(self) -> int:
        """Total delivered messages (all kinds), from the metrics registry."""
        return self.telemetry.registry.total("sim.messages.delivered")

    @property
    def bytes_delivered(self) -> int:
        """Total delivered size units (all kinds), from the registry."""
        return self.telemetry.registry.total("sim.bytes.delivered")

    @property
    def messages_sent(self) -> int:
        """Total messages handed to :meth:`send` (before fan-out or drops)."""
        return self._n_sent

    @property
    def messages_dropped(self) -> int:
        """Total message copies dropped (interceptor + unregistered)."""
        return self._n_dropped

    @property
    def messages_pending(self) -> int:
        """Message copies scheduled but not yet delivered or dropped."""
        return self._n_undelivered

    @property
    def events_processed(self) -> int:
        """Total events popped off the heap by the run loops."""
        return self._n_events

    def conservation(self) -> Dict[str, int]:
        """Message-conservation tallies; ``balanced`` asserts the invariant.

        The invariant is ``sent + duplicated == delivered + dropped + pending``
        where every term counts message *copies* (a duplicated send yields two
        copies, an interceptor drop resolves the nominal copy as dropped).
        """
        tallies = {
            "sent": self._n_sent,
            "duplicated": self._n_duplicated,
            "delivered": self._n_delivered,
            "dropped": self._n_dropped,
            "pending": self._n_undelivered,
        }
        tallies["balanced"] = int(
            tallies["sent"] + tallies["duplicated"]
            == tallies["delivered"] + tallies["dropped"] + tallies["pending"]
        )
        return tallies

    def _record_delivery(self, message: Message, latency: float) -> None:
        handles = self._delivery_handles.get(message.kind)
        if handles is None:
            registry = self.telemetry.registry
            handles = (
                registry.counter("sim.messages.delivered", kind=message.kind),
                registry.counter("sim.bytes.delivered", kind=message.kind),
                registry.histogram(
                    "sim.delivery.latency",
                    DELIVERY_LATENCY_BUCKETS,
                    kind=message.kind,
                ),
            )
            self._delivery_handles[message.kind] = handles
        messages, size_units, latency_hist = handles
        messages.inc()
        size_units.inc(message.size)
        latency_hist.observe(latency)
        self._n_delivered += 1

    def _record_sent(self, message: Message, copies: int) -> None:
        handles = self._send_handles.get(message.kind)
        if handles is None:
            registry = self.telemetry.registry
            handles = (
                registry.counter("sim.messages.sent", kind=message.kind),
                registry.counter("sim.messages.duplicated", kind=message.kind),
            )
            self._send_handles[message.kind] = handles
        sent, duplicated = handles
        sent.inc()
        self._n_sent += 1
        if copies > 1:
            duplicated.inc(copies - 1)
            self._n_duplicated += copies - 1

    def _record_drop(self, message: Message, cause: str) -> None:
        key = (message.kind, cause)
        counter = self._drop_handles.get(key)
        if counter is None:
            counter = self.telemetry.registry.counter(
                "sim.messages.dropped", kind=message.kind, cause=cause
            )
            self._drop_handles[key] = counter
        counter.inc()
        self._n_dropped += 1

    @contextmanager
    def _running(self) -> Iterator[None]:
        """Mark this simulator as the active clock source while executing."""
        default = get_telemetry()
        with self.telemetry.simulation(self):
            if default is self.telemetry:
                yield
            else:
                with default.simulation(self):
                    yield

    # -- process registry ----------------------------------------------------

    def register(self, process: "Process") -> None:
        """Attach *process*; its :meth:`Process.start` runs at time now."""
        if process.address in self._processes:
            raise StateError(f"duplicate process address {process.address!r}")
        self._processes[process.address] = process
        process.simulator = self
        self.schedule(0.0, process.start)

    def deregister(self, address: Address) -> "Process":
        """Detach and return the process at *address*.

        Deliveries to the address afterwards become counted drops
        (``sim.messages.dropped`` with ``cause="unregistered"``) instead of
        :class:`StateError` crashes, and periodic schedules installed with
        ``schedule_every(..., owner=address)`` stop re-arming.
        """
        try:
            process = self._processes.pop(address)
        except KeyError:
            raise StateError(f"no process registered at {address!r}") from None
        process.simulator = None
        return process

    def is_registered(self, address: Address) -> bool:
        """Whether a process is currently registered at *address*."""
        return address in self._processes

    @property
    def process_count(self) -> int:
        """Number of currently registered processes."""
        return len(self._processes)

    def process(self, address: Address) -> "Process":
        """The registered process at *address*."""
        try:
            return self._processes[address]
        except KeyError:
            raise StateError(f"no process registered at {address!r}") from None

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run *action* after *delay* simulated time units."""
        if delay < 0:
            raise StateError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, next(self._counter), action))

    def schedule_every(
        self,
        period: float,
        action: Callable[[], None],
        *,
        first_delay: Optional[float] = None,
        until: Optional[float] = None,
        owner: Optional[Address] = None,
    ) -> None:
        """Run *action* periodically every *period* units.

        The first firing happens after ``first_delay`` (default: one period).
        If *until* is given, firings at or after that time are suppressed.
        If *owner* is given, the schedule is tied to that process address and
        stops firing once the address is deregistered.
        """
        if period <= 0:
            raise StateError(f"period must be positive, got {period}")

        def fire() -> None:
            if until is not None and self.now >= until:
                return
            if owner is not None and owner not in self._processes:
                return
            action()
            self.schedule(period, fire)

        self.schedule(period if first_delay is None else first_delay, fire)

    def send(self, message: Message, delay: float) -> None:
        """Deliver *message* to its recipient after *delay* units.

        If an :attr:`interceptor` is installed it decides the fate of the
        message first: the nominal single delivery can become a drop, a
        duplicate, or a perturbed-delay delivery (jitter/reordering). The
        protocol layers above never see the difference — exactly the point
        of hooking faults in here.
        """
        sent_at = self.now
        delays = [delay]
        if self.interceptor is not None:
            decided = self.interceptor(message, delay)
            if decided is not None:
                delays = decided
        self._record_sent(message, len(delays))
        if not delays:
            # The nominal copy was swallowed by the interceptor: account for
            # it so `sent + duplicated == delivered + dropped + pending`.
            self._record_drop(message, "intercepted")
            return
        for actual in delays:
            self._schedule_delivery(message, sent_at, actual)

    def _delivery_action(self, message: Message, sent_at: float) -> Callable[[], None]:
        """The deliver closure for one copy of *message* (counts it pending)."""
        self._n_undelivered += 1

        def deliver() -> None:
            self._n_undelivered -= 1
            recipient = self._processes.get(message.recipient)
            if recipient is None:
                self._record_drop(message, "unregistered")
                return
            self._record_delivery(message, self.now - sent_at)
            recipient.receive(message)

        return deliver

    def _schedule_delivery(self, message: Message, sent_at: float, delay: float) -> None:
        """Schedule one delivery copy of *message* after *delay*.

        Subclasses (the sharded engine) override this to route copies whose
        recipient lives on a different shard; the base implementation keeps
        everything on the local heap.
        """
        self.schedule(delay, self._delivery_action(message, sent_at))

    # -- execution ---------------------------------------------------------------

    def run_until(self, end_time: float) -> None:
        """Process events with timestamp <= *end_time*; clock ends there."""
        with self._running():
            while self._heap and self._heap[0][0] <= end_time:
                time, _, action = heapq.heappop(self._heap)
                self.now = time
                self._n_events += 1
                action()
            self.now = max(self.now, end_time)

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Drain the event heap completely (bounded by *max_events*)."""
        with self._running():
            for _ in range(max_events):
                if not self._heap:
                    return
                time, _, action = heapq.heappop(self._heap)
                self.now = time
                self._n_events += 1
                action()
        raise StateError(f"run_all exceeded {max_events} events; runaway schedule?")

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._heap)


class Process:
    """Base class for simulated protocol participants."""

    def __init__(self, address: Address) -> None:
        self.address = address
        self.simulator: Optional[Simulator] = None

    def start(self) -> None:
        """Hook invoked once when the simulation registers the process."""

    def receive(self, message: Message) -> None:
        """Hook invoked on message delivery."""

    def send(
        self,
        recipient: Address,
        kind: str,
        payload: Any,
        delay: float,
        size: int = 1,
    ) -> None:
        """Send a message to *recipient*, delivered after *delay*."""
        if self.simulator is None:
            raise StateError(f"process {self.address!r} is not registered")
        self.simulator.send(
            Message(self.address, recipient, kind, payload, size), delay
        )
