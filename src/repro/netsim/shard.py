"""Sharded discrete-event simulation for 100k+-proxy scenarios.

The monolithic :class:`~repro.netsim.eventsim.Simulator` runs every event
on one heap, so wall-clock — not the overlay — became the scale ceiling
(ROADMAP item 1). This module shards the event simulation by hierarchy
cluster, exploiting the containment locality the paper's clustering is
built around: most protocol and traffic messages stay inside a cluster,
so partitioning proxies by *contiguous cluster-id ranges* keeps the
overwhelming majority of deliveries shard-local and lets each shard run
its own heap.

Cross-shard messages use the classic conservative (Chandy–Misra style)
window protocol:

* the **lookahead** ``L`` is the minimum physical delay between any two
  proxies on different shards, so a message sent at ``t`` inside the
  window ``[T, T + L)`` arrives at ``t + delay >= T + L`` — never inside
  the window that produced it;
* each shard runs its window independently, buffering cross-shard sends
  in an outbox; at the window barrier all outboxes are exchanged and
  merged into the destination heaps in sorted ``(time, origin, seq)``
  order, so tie-breaking is deterministic and independent of execution
  interleaving;
* a **driver lane** hosts global processes (traffic engine arrivals,
  fault-injection timers, any address outside the partition). Driver
  events only execute at global barriers — every lane's clock equals the
  driver's when one runs — so drivers behave exactly as they do on the
  monolithic engine, including zero-delay dispatch sends into shard
  heaps.

``shards=1`` collapses the driver and the single shard into one inner
:class:`Simulator`, making the sharded engine bit-identical to the
monolithic one (same counters, same traces). The message-conservation
invariant ``sent + duplicated == delivered + dropped + pending`` is
checked at every barrier to validate the cross-shard exchange.
"""

from __future__ import annotations

import heapq
import math
import multiprocessing
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.netsim.eventsim import Address, Message, Process, Simulator
from repro.telemetry import Telemetry
from repro.util.errors import StateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (state imports netsim)
    from repro.state.columnar import ColumnarOverlayState, ColumnarShard

#: shard id of the driver lane (hosts every address outside the partition)
DRIVER = -1

#: one buffered cross-shard delivery: (arrival, origin shard, origin seq,
#: message, sent_at)
OutboxEntry = Tuple[float, int, int, Message, float]


# -- partitioning ---------------------------------------------------------------


def partition_contiguous(sizes: Sequence[int], shards: int) -> List[int]:
    """Greedy contiguous split of *sizes* into *shards* balanced parts.

    Returns cluster boundaries ``[0, b1, ..., C]``. Contiguity is what
    makes the columnar slices zero-copy (cluster-major member rows), so
    the split never reorders clusters: it walks them in id order and cuts
    when a part reaches its share of the remaining weight, always leaving
    at least one cluster per remaining shard.
    """
    count = len(sizes)
    if shards < 1:
        raise StateError(f"need at least one shard, got {shards}")
    if shards > count:
        raise StateError(f"cannot split {count} clusters into {shards} shards")
    bounds = [0]
    remaining = int(sum(sizes))
    cursor = 0
    for part in range(shards, 1, -1):
        target = remaining / part
        acc = 0
        limit = count - (part - 1)  # leave one cluster per later shard
        cut = cursor + 1
        for i in range(cursor, limit):
            acc += int(sizes[i])
            cut = i + 1
            if acc >= target:
                break
        bounds.append(cut)
        remaining -= acc
        cursor = cut
    bounds.append(count)
    return bounds


def lookahead_from_matrix(delays: np.ndarray, row_shard: np.ndarray) -> float:
    """Exact lookahead: the minimum delay between rows on different shards."""
    cross = row_shard[:, None] != row_shard[None, :]
    if not bool(cross.any()):
        return math.inf
    return float(delays[cross].min())


def coordinate_lookahead(state: ColumnarOverlayState, bounds: Sequence[int]) -> float:
    """Coordinate lower bound on the cross-shard delay.

    For synthetic overlays whose delivery delay *is* the coordinate
    distance, the distance between two clusters is at least the distance
    of their centroids minus both radii; the minimum over cross-shard
    cluster pairs bounds every cross-shard delay from below. Raises if
    the bound is not positive (overlapping clusters) — pass an explicit
    lookahead in that case.
    """
    c = state.cluster_count
    centroids = np.zeros((c, state.dimension), dtype=float)
    radius = np.zeros(c, dtype=float)
    for cid in range(c):
        block = state.coords[
            state.cluster_members[
                int(state.cluster_ptr[cid]) : int(state.cluster_ptr[cid + 1])
            ]
        ]
        centroids[cid] = block.mean(axis=0)
        radius[cid] = float(np.linalg.norm(block - centroids[cid], axis=1).max())
    shard_of = np.zeros(c, dtype=np.int64)
    for s, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
        shard_of[lo:hi] = s
    gaps = (
        np.linalg.norm(centroids[:, None, :] - centroids[None, :, :], axis=2)
        - radius[:, None]
        - radius[None, :]
    )
    cross = shard_of[:, None] != shard_of[None, :]
    if not bool(cross.any()):
        return math.inf
    bound = float(gaps[cross].min())
    if bound <= 0.0:
        raise StateError(
            "coordinate lookahead bound is not positive (clusters overlap); "
            "pass an explicit lookahead"
        )
    return bound


@dataclass(frozen=True)
class ShardPlan:
    """A cluster-keyed partition of the overlay plus its lookahead."""

    shards: int
    bounds: Tuple[int, ...]
    lookahead: float
    proxy_shard: Dict[Address, int] = field(repr=False)
    views: Tuple[ColumnarShard, ...] = field(default=(), repr=False)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise StateError(f"need at least one shard, got {self.shards}")
        if self.shards > 1 and not (0.0 < self.lookahead < math.inf):
            raise StateError(
                f"lookahead must be positive and finite for {self.shards} shards, "
                f"got {self.lookahead}"
            )

    def shard_of(self, address: Address) -> int:
        """The shard owning *address* (``DRIVER`` when unpartitioned).

        Tuple addresses (e.g. the traffic engine's ``("traffic", proxy)``
        relays) are resolved through their first partitioned element.
        """
        shard = self.proxy_shard.get(address)
        if shard is not None:
            return shard
        if isinstance(address, tuple):
            for part in address:
                shard = self.proxy_shard.get(part)
                if shard is not None:
                    return shard
        return DRIVER

    @property
    def cluster_count(self) -> int:
        """Number of clusters covered by the partition."""
        return self.bounds[-1]

    def shard_sizes(self) -> List[int]:
        """Proxies per shard, in shard order."""
        sizes = [0] * self.shards
        for shard in self.proxy_shard.values():
            sizes[shard] += 1
        return sizes

    @classmethod
    def from_state(
        cls,
        state: ColumnarOverlayState,
        shards: int,
        *,
        lookahead: Optional[float] = None,
        delay_matrix: Optional[np.ndarray] = None,
    ) -> "ShardPlan":
        """Partition *state* into *shards* contiguous cluster ranges.

        The lookahead comes from, in order of preference: the explicit
        *lookahead* argument, the exact minimum over *delay_matrix*
        (indexed like ``state`` rows), or the coordinate lower bound.
        """
        sizes = np.diff(state.cluster_ptr)
        bounds = partition_contiguous([int(s) for s in sizes], shards)
        views = tuple(state.shard_views(bounds))
        proxy_shard: Dict[Address, int] = {}
        for view in views:
            for proxy in view.proxy_ids():
                proxy_shard[proxy] = view.shard
        if shards == 1:
            la = math.inf
        elif lookahead is not None:
            la = float(lookahead)
        elif delay_matrix is not None:
            row_shard = np.zeros(state.size, dtype=np.int64)
            for view in views:
                row_shard[view.member_rows] = view.shard
            la = lookahead_from_matrix(delay_matrix, row_shard)
        else:
            la = coordinate_lookahead(state, bounds)
        return cls(
            shards=shards,
            bounds=tuple(bounds),
            lookahead=la,
            proxy_shard=proxy_shard,
            views=views,
        )

    @classmethod
    def from_framework(
        cls,
        framework: Any,
        shards: int,
        *,
        lookahead: Optional[float] = None,
    ) -> "ShardPlan":
        """Partition a built framework, with the exact physical lookahead.

        The ground-truth delay matrix prices the minimum cross-shard
        delay exactly, so the conservative windows are as wide as the
        physical topology allows.
        """
        state = framework.columnar
        if lookahead is not None:
            return cls.from_state(state, shards, lookahead=lookahead)
        overlay = framework.overlay
        matrix = overlay.true_delay_matrix()
        # reindex the overlay-ordered matrix into columnar row order
        order = np.array(
            [overlay.index_of(int(p)) for p in state.proxies], dtype=np.int64
        )
        return cls.from_state(
            state, shards, delay_matrix=matrix[np.ix_(order, order)]
        )


# -- lanes ----------------------------------------------------------------------


class _ShardLane(Simulator):
    """One shard's event heap; cross-shard sends go to an outbox.

    The driver lane (``shard_id == DRIVER``) is special: it only executes
    at global barriers, when every lane's clock equals its own, so its
    sends insert directly into the destination heaps — zero-delay driver
    dispatches (the traffic engine's batch flush) stay exact.
    """

    def __init__(
        self,
        shard_id: int,
        *,
        route: Optional[Callable[[Address], int]],
        lookahead: float,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        super().__init__(telemetry=telemetry)
        self.shard_id = shard_id
        self._route = route
        self._lookahead = lookahead
        self._outbox: List[OutboxEntry] = []
        self._lanes: Dict[int, "_ShardLane"] = {}

    # -- delivery routing --------------------------------------------------------

    def _schedule_delivery(self, message: Message, sent_at: float, delay: float) -> None:
        route = self._route
        if route is None:  # single-shard collapse: everything is local
            super()._schedule_delivery(message, sent_at, delay)
            return
        dest = route(message.recipient)
        if dest == self.shard_id:
            super()._schedule_delivery(message, sent_at, delay)
            return
        if self.shard_id == DRIVER:
            lane = self._lanes[dest]
            lane.push_delivery(self.now + delay, message, sent_at)
            return
        if delay < self._lookahead:
            raise StateError(
                f"cross-shard send {message.sender!r} -> {message.recipient!r} "
                f"with delay {delay} below the lookahead {self._lookahead}; "
                "the shard plan's lookahead must lower-bound every cross-shard delay"
            )
        self._n_undelivered += 1
        self._outbox.append(
            (self.now + delay, self.shard_id, next(self._counter), message, sent_at)
        )

    def push_delivery(self, arrival: float, message: Message, sent_at: float) -> None:
        """Insert one delivery copy at absolute time *arrival*."""
        heapq.heappush(
            self._heap, (arrival, next(self._counter), self._delivery_action(message, sent_at))
        )

    def take_outbox(self) -> List[OutboxEntry]:
        """Drain the outbox, transferring the pending count with it."""
        out, self._outbox = self._outbox, []
        self._n_undelivered -= len(out)
        return out

    # -- windowed execution ------------------------------------------------------

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest queued event, or None."""
        return self._heap[0][0] if self._heap else None

    def run_window(self, upto: float, *, inclusive: bool) -> None:
        """Process events with time < *upto* (``<=`` when inclusive).

        The caller (the sharded engine) owns clock-source bookkeeping, so
        unlike :meth:`Simulator.run_until` this does not enter
        ``_running`` — lanes are never the active clock, their parent is.
        """
        heap = self._heap
        if inclusive:
            while heap and heap[0][0] <= upto:
                time, _, action = heapq.heappop(heap)
                self.now = time
                self._n_events += 1
                action()
            self.now = max(self.now, upto)
        else:
            while heap and heap[0][0] < upto:
                time, _, action = heapq.heappop(heap)
                self.now = time
                self._n_events += 1
                action()
            self.now = upto

    def stats(self) -> Dict[str, int]:
        """Plain-int conservation tallies (cheap to ship across processes)."""
        return {
            "sent": self._n_sent,
            "duplicated": self._n_duplicated,
            "delivered": self._n_delivered,
            "dropped": self._n_dropped,
            "pending": self._n_undelivered,
            "events": self._n_events,
        }


# -- the sharded engine ---------------------------------------------------------


class ShardedSimulator(Simulator):
    """Drop-in :class:`Simulator` running per-shard heaps under one clock.

    Registration, scheduling, and sends route to the owning lane; the
    run loops advance all lanes through conservative windows and merge
    cross-shard batches at the barriers. Traffic engines, protocols, and
    fault injectors run unmodified: the :attr:`interceptor` fans out to
    every lane, and ``now`` always reflects the executing lane's clock.
    """

    def __init__(self, plan: ShardPlan, *, telemetry: Optional[Telemetry] = None) -> None:
        self._plan = plan
        self._active: Optional[_ShardLane] = None
        self._barrier = 0.0
        self.windows = 0
        self.exchanged = 0
        telemetry = telemetry if telemetry is not None else Telemetry()
        if plan.shards == 1:
            single = _ShardLane(0, route=None, lookahead=math.inf, telemetry=telemetry)
            self._single: Optional[_ShardLane] = single
            self._lanes: List[_ShardLane] = [single]
            self._driver = single
        else:
            self._single = None
            self._lanes = [
                _ShardLane(
                    s, route=plan.shard_of, lookahead=plan.lookahead, telemetry=telemetry
                )
                for s in range(plan.shards)
            ]
            self._driver = _ShardLane(
                DRIVER, route=plan.shard_of, lookahead=plan.lookahead, telemetry=telemetry
            )
            lanes_by_id = {lane.shard_id: lane for lane in self._lanes}
            lanes_by_id[DRIVER] = self._driver
            for lane in self._all_lanes():
                lane._lanes = lanes_by_id
        super().__init__(telemetry=telemetry)

    def _all_lanes(self) -> Iterator[_ShardLane]:
        yield from self._lanes
        if self._single is None:
            yield self._driver

    @property
    def plan(self) -> ShardPlan:
        """The shard plan this engine runs."""
        return self._plan

    @property
    def shards(self) -> int:
        """Number of shard lanes."""
        return self._plan.shards

    # -- clock -------------------------------------------------------------------

    @property
    def now(self) -> float:  # type: ignore[override]
        active = self._active
        if active is not None:
            return active.now
        if self._single is not None:
            return self._single.now
        return self._barrier

    @now.setter
    def now(self, value: float) -> None:
        # Simulator.__init__ assigns `now = 0.0`; the run loops never
        # write the parent clock otherwise.
        self._barrier = value

    # -- interceptor fan-out -----------------------------------------------------

    @property
    def interceptor(self):  # type: ignore[override]
        return self._interceptor_fn

    @interceptor.setter
    def interceptor(self, fn) -> None:
        self._interceptor_fn = fn
        for lane in self._all_lanes():
            lane.interceptor = fn

    # -- process registry --------------------------------------------------------

    def _lane_of(self, address: Address) -> _ShardLane:
        if self._single is not None:
            return self._single
        shard = self._plan.shard_of(address)
        return self._driver if shard == DRIVER else self._lanes[shard]

    def register(self, process: Process) -> None:
        self._lane_of(process.address).register(process)

    def deregister(self, address: Address) -> Process:
        return self._lane_of(address).deregister(address)

    def is_registered(self, address: Address) -> bool:
        return self._lane_of(address).is_registered(address)

    def process(self, address: Address) -> Process:
        return self._lane_of(address).process(address)

    @property
    def process_count(self) -> int:
        return sum(lane.process_count for lane in self._all_lanes())

    # -- scheduling and sends ----------------------------------------------------

    def _context_lane(self) -> _ShardLane:
        """The lane new work belongs to: the executing one, else the driver."""
        active = self._active
        return active if active is not None else self._driver

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        self._context_lane().schedule(delay, action)

    def schedule_every(
        self,
        period: float,
        action: Callable[[], None],
        *,
        first_delay: Optional[float] = None,
        until: Optional[float] = None,
        owner: Optional[Address] = None,
    ) -> None:
        self._context_lane().schedule_every(
            period, action, first_delay=first_delay, until=until, owner=owner
        )

    def send(self, message: Message, delay: float) -> None:
        self._context_lane().send(message, delay)

    # -- conservation ------------------------------------------------------------

    def conservation(self) -> Dict[str, int]:
        tallies = {"sent": 0, "duplicated": 0, "delivered": 0, "dropped": 0, "pending": 0}
        for lane in self._all_lanes():
            tallies["sent"] += lane._n_sent
            tallies["duplicated"] += lane._n_duplicated
            tallies["delivered"] += lane._n_delivered
            tallies["dropped"] += lane._n_dropped
            tallies["pending"] += lane._n_undelivered
        # copies buffered in outboxes are pending too (already transferred
        # out of their lane's count by take_outbox — not the case here,
        # where outboxes are drained only at barriers)
        tallies["balanced"] = int(
            tallies["sent"] + tallies["duplicated"]
            == tallies["delivered"] + tallies["dropped"] + tallies["pending"]
        )
        return tallies

    def _check_conservation(self) -> None:
        tallies = self.conservation()
        if not tallies["balanced"]:
            raise StateError(f"cross-shard message conservation violated: {tallies}")

    @property
    def messages_sent(self) -> int:  # type: ignore[override]
        return sum(lane._n_sent for lane in self._all_lanes())

    @property
    def messages_dropped(self) -> int:  # type: ignore[override]
        return sum(lane._n_dropped for lane in self._all_lanes())

    @property
    def messages_pending(self) -> int:  # type: ignore[override]
        return sum(lane._n_undelivered for lane in self._all_lanes())

    @property
    def events_processed(self) -> int:  # type: ignore[override]
        return sum(lane._n_events for lane in self._all_lanes())

    @property
    def pending_events(self) -> int:  # type: ignore[override]
        return sum(
            lane.pending_events + len(lane._outbox) for lane in self._all_lanes()
        )

    # -- execution ---------------------------------------------------------------

    @contextmanager
    def _activated(self, lane: _ShardLane) -> Iterator[None]:
        self._active = lane
        try:
            yield
        finally:
            self._active = None

    def _run_lane(self, lane: _ShardLane, upto: float, *, inclusive: bool) -> None:
        with self._activated(lane):
            lane.run_window(upto, inclusive=inclusive)

    def _drain_driver(self, upto: float) -> None:
        """Run driver events with time <= *upto* at a global barrier."""
        with self._activated(self._driver):
            self._driver.run_window(upto, inclusive=True)

    def _exchange(self) -> None:
        """Merge all outboxes into destination heaps, deterministically."""
        entries: List[OutboxEntry] = []
        for lane in self._lanes:
            if lane._outbox:
                entries.extend(lane.take_outbox())
        if not entries:
            return
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        for arrival, _origin, _seq, message, sent_at in entries:
            self._lane_of(message.recipient).push_delivery(arrival, message, sent_at)
        self.exchanged += len(entries)

    def run_until(self, end_time: float) -> None:
        """Process events with timestamp <= *end_time* across all lanes."""
        if self._single is not None:
            single = self._single
            with self._running(), self._activated(single):
                single.run_window(end_time, inclusive=True)
            self._barrier = single.now
            return
        with self._running():
            self._advance(end_time)

    def _advance(self, end_time: float) -> None:
        barrier = self._barrier
        if end_time < barrier:
            return
        lookahead = self._plan.lookahead
        driver = self._driver
        while barrier < end_time:
            # Driver events run only at barriers, where every lane's clock
            # equals the driver's — monolithic semantics for global timers
            # and zero-delay dispatches.
            self._drain_driver(barrier)
            t_driver = driver.peek_time()
            window_end = min(
                barrier + lookahead,
                end_time,
                t_driver if t_driver is not None else math.inf,
            )
            for lane in self._lanes:
                self._run_lane(lane, window_end, inclusive=False)
            self._exchange()
            driver.now = window_end
            barrier = self._barrier = window_end
            self.windows += 1
            self._check_conservation()
        # the final instant: events stamped exactly end_time
        self._drain_driver(end_time)
        for lane in self._lanes:
            self._run_lane(lane, end_time, inclusive=True)
        self._exchange()
        self._check_conservation()
        self._barrier = end_time

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Drain every lane completely (bounded by *max_events*)."""
        if self._single is not None:
            single = self._single
            with self._activated(single):
                try:
                    single.run_all(max_events)
                finally:
                    self._barrier = single.now
            return
        start = self.events_processed
        while self.pending_events:
            horizon = max(
                (max(t for t, _, _ in lane._heap) for lane in self._all_lanes() if lane._heap),
                default=self._barrier,
            )
            horizon = max(
                horizon, max((e[0] for lane in self._lanes for e in lane._outbox), default=horizon)
            )
            self.run_until(horizon)
            if self.events_processed - start > max_events:
                raise StateError(
                    f"run_all exceeded {max_events} events; runaway schedule?"
                )


# -- worker-process execution ---------------------------------------------------


class ShardProgram:
    """A shard-confined workload for :func:`run_sharded`.

    Programs must be picklable (worker processes receive a copy) and must
    only register addresses the plan assigns to their shard — worker mode
    has no driver lane, so an unpartitioned recipient is an error.
    """

    def setup(self, sim: Simulator, view: Optional[ColumnarShard], plan: ShardPlan) -> None:
        """Register processes and schedule the shard's initial events."""
        raise NotImplementedError

    def collect(self, sim: Simulator) -> Any:
        """Reduce the shard's end state to a (picklable) result."""
        return None


@dataclass
class ShardRunResult:
    """Outcome of a :func:`run_sharded` execution."""

    shards: int
    workers: int
    until: float
    windows: int
    exchanged: int
    events: int
    wall_seconds: float
    results: List[Any]
    conservation: Dict[str, int]
    telemetry: Telemetry

    @property
    def event_rate(self) -> float:
        """Events processed per wall-clock second."""
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0


def _merge_stats(totals: Dict[str, int], stats: Dict[str, int]) -> None:
    for key, value in stats.items():
        totals[key] = totals.get(key, 0) + value


def _balance(totals: Dict[str, int], in_transit: int) -> Dict[str, int]:
    tallies = dict(totals)
    tallies["pending"] = tallies.get("pending", 0) + in_transit
    tallies["balanced"] = int(
        tallies.get("sent", 0) + tallies.get("duplicated", 0)
        == tallies.get("delivered", 0) + tallies.get("dropped", 0) + tallies["pending"]
    )
    return tallies


def _worker_main(
    conn: Any, program: ShardProgram, shard: int, plan: ShardPlan, until: float
) -> None:
    try:
        telemetry = Telemetry()
        lane = _ShardLane(
            shard, route=plan.shard_of, lookahead=plan.lookahead, telemetry=telemetry
        )
        view = plan.views[shard] if plan.views else None
        program.setup(lane, view, plan)
        barrier = 0.0
        while barrier < until:
            window_end = min(barrier + plan.lookahead, until)
            inclusive = window_end >= until
            lane.run_window(window_end, inclusive=inclusive)
            conn.send(("window", lane.take_outbox()))
            tag, inbox = conn.recv()
            for arrival, _origin, _seq, message, sent_at in inbox:
                lane.push_delivery(arrival, message, sent_at)
            barrier = window_end
        conn.send(("done", (program.collect(lane), lane.stats(), telemetry.registry)))
    except Exception as exc:  # surface worker failures to the parent
        import traceback

        conn.send(("error", f"shard {shard}: {exc}\n{traceback.format_exc()}"))
    finally:
        conn.close()


def run_sharded(
    plan: ShardPlan,
    program: ShardProgram,
    until: float,
    *,
    workers: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
) -> ShardRunResult:
    """Run *program* on every shard of *plan* for *until* simulated units.

    ``workers=None`` (or 1, or the single-shard case) runs the shards
    in-process on a :class:`ShardedSimulator`; otherwise one worker
    process per shard executes the conservative-window protocol over
    pipes, with the parent routing cross-shard batches and checking the
    conservation invariant at the end. ``workers`` must equal
    ``plan.shards`` in process mode — shards are the unit of parallelism.
    """
    telemetry = telemetry if telemetry is not None else Telemetry()
    start = perf_counter()
    if workers is None or workers <= 1 or plan.shards == 1:
        sim = ShardedSimulator(plan, telemetry=telemetry)
        for lane in sim._lanes:
            view = plan.views[lane.shard_id] if plan.views else None
            program.setup(lane, view, plan)
        sim.run_until(until)
        tallies = sim.conservation()
        if not tallies["balanced"]:
            raise StateError(f"message conservation violated: {tallies}")
        return ShardRunResult(
            shards=plan.shards,
            workers=1,
            until=until,
            windows=sim.windows,
            exchanged=sim.exchanged,
            events=sim.events_processed,
            wall_seconds=perf_counter() - start,
            results=[program.collect(lane) for lane in sim._lanes],
            conservation=tallies,
            telemetry=telemetry,
        )

    if workers != plan.shards:
        raise StateError(
            f"worker mode runs one process per shard: workers={workers} "
            f"must equal shards={plan.shards}"
        )
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    pipes = [ctx.Pipe() for _ in range(plan.shards)]
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(child, program, shard, plan, until),
            daemon=True,
        )
        for shard, (_, child) in enumerate(pipes)
    ]
    for proc in procs:
        proc.start()
    for _, child in pipes:
        child.close()
    conns = [parent for parent, _ in pipes]
    windows = 0
    exchanged = 0
    in_transit = 0
    def _recv(conn: Any) -> Tuple[str, Any]:
        tag, payload = conn.recv()
        if tag == "error":
            raise StateError(f"shard worker failed: {payload}")
        return tag, payload

    try:
        barrier = 0.0
        while barrier < until:
            window_end = min(barrier + plan.lookahead, until)
            entries: List[OutboxEntry] = []
            for conn in conns:
                _, out = _recv(conn)
                entries.extend(out)
            entries.sort(key=lambda e: (e[0], e[1], e[2]))
            inboxes: List[List[OutboxEntry]] = [[] for _ in range(plan.shards)]
            for entry in entries:
                dest = plan.shard_of(entry[3].recipient)
                if dest == DRIVER:
                    raise StateError(
                        f"worker mode has no driver lane: unpartitioned "
                        f"recipient {entry[3].recipient!r}"
                    )
                inboxes[dest].append(entry)
            for conn, inbox in zip(conns, inboxes):
                conn.send(("inbox", inbox))
            windows += 1
            exchanged += len(entries)
            barrier = window_end
        totals: Dict[str, int] = {}
        results: List[Any] = []
        for conn in conns:
            tag, payload = _recv(conn)
            if tag != "done":  # pragma: no cover - protocol guard
                raise StateError(f"unexpected worker message {tag!r}")
            result, stats, registry = payload
            results.append(result)
            _merge_stats(totals, stats)
            telemetry.registry.merge(registry)
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hang guard
                proc.terminate()
    tallies = _balance(
        {k: v for k, v in totals.items() if k != "events"}, in_transit
    )
    if not tallies["balanced"]:
        raise StateError(f"cross-shard message conservation violated: {tallies}")
    return ShardRunResult(
        shards=plan.shards,
        workers=plan.shards,
        until=until,
        windows=windows,
        exchanged=exchanged,
        events=totals.get("events", 0),
        wall_seconds=perf_counter() - start,
        results=results,
        conservation=tallies,
        telemetry=telemetry,
    )
