"""The physical-network substrate (the ns2 substitute).

:class:`PhysicalNetwork` wraps a generated topology and answers the two
questions the overlay layer asks:

* ``delay(u, v)`` — the true end-to-end propagation delay between two
  routers, i.e. the shortest-path delay over the weighted physical graph
  (what an uncongested ns2 run would report);
* ``measure(u, v)`` — a *noisy* RTT-style observation of that delay, with
  the paper's noise treatment available (take the minimum of several
  probes, Section 3.1).

Single-source delay maps are cached because the experiments ask for delays
from the same proxies thousands of times.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.graph.shortest_paths import dijkstra
from repro.netsim.topology import PhysicalTopology
from repro.util.errors import TopologyError
from repro.util.rng import RngLike, ensure_rng


class PhysicalNetwork:
    """Delay oracle over a physical topology.

    Args:
        topology: the generated physical topology.
        noise: multiplicative measurement-noise amplitude. A single probe of
            the delay ``d`` observes ``d * (1 + U[0, noise])`` — RTT samples
            are biased upward by queueing, never downward below the
            propagation floor.
        seed: RNG for measurement noise.
    """

    def __init__(
        self,
        topology: PhysicalTopology,
        noise: float = 0.10,
        seed: RngLike = None,
    ) -> None:
        if noise < 0:
            raise TopologyError(f"noise must be >= 0, got {noise}")
        self.topology = topology
        self.graph = topology.graph
        self.noise = noise
        self._rng = ensure_rng(seed)
        self._delay_cache: Dict[int, Dict[int, float]] = {}
        self._parent_cache: Dict[int, Dict[int, int]] = {}

    # -- true delays -------------------------------------------------------

    def delays_from(self, source: int) -> Dict[int, float]:
        """True shortest-path delay from *source* to every reachable router."""
        cached = self._delay_cache.get(source)
        if cached is None:
            cached, parents = dijkstra(self.graph, source)
            self._delay_cache[source] = cached
            self._parent_cache[source] = parents
        return cached

    def route(self, u: int, v: int) -> List[int]:
        """The router sequence of the shortest-delay path from *u* to *v*."""
        from repro.graph.shortest_paths import reconstruct_path

        if u == v:
            return [u]
        self.delays_from(u)  # populates the parent cache
        if v not in self._delay_cache[u]:
            raise TopologyError(f"router {v!r} unreachable from {u!r}")
        return reconstruct_path(self._parent_cache[u], u, v)

    def delay(self, u: int, v: int) -> float:
        """True end-to-end delay between routers *u* and *v* (ms)."""
        if u == v:
            return 0.0
        dist = self.delays_from(u)
        if v not in dist:
            raise TopologyError(f"router {v!r} unreachable from {u!r}")
        return dist[v]

    def delay_matrix(self, nodes: Sequence[int]) -> np.ndarray:
        """Dense true-delay matrix among *nodes* (``(n, n)`` float array)."""
        n = len(nodes)
        matrix = np.zeros((n, n), dtype=float)
        for i, u in enumerate(nodes):
            dist = self.delays_from(u)
            for j, v in enumerate(nodes):
                if i != j:
                    matrix[i, j] = dist[v]
        return matrix

    # -- noisy measurements --------------------------------------------------

    def measure(self, u: int, v: int, probes: int = 1) -> float:
        """A noisy delay measurement between *u* and *v*.

        Takes the minimum over *probes* independent observations, the paper's
        own treatment for filtering Internet noise ("we take the minimum
        value of several measurements", Section 3.1).
        """
        if probes < 1:
            raise ValueError(f"probes must be >= 1, got {probes}")
        return self._noisy(self.delay(u, v), probes)

    def _noisy(self, true: float, probes: int) -> float:
        """Min-of-*probes* noisy observation of the delay *true*.

        Shared by :meth:`measure` and :meth:`measure_many` so both draw the
        exact same noise stream for the same pair sequence.
        """
        if self.noise == 0.0 or true == 0.0:
            return true
        return min(
            true * (1.0 + self._rng.uniform(0.0, self.noise)) for _ in range(probes)
        )

    def measure_many(
        self, sources: Sequence[int], targets: Sequence[int], probes: int = 1
    ) -> np.ndarray:
        """Noisy measurements for every (source, target) pair, as an array.

        Semantically equivalent to the nested loop ``[[measure(s, t, probes)
        for t in targets] for s in sources]`` — it consumes the identical
        noise stream in the identical (source-major) order — but obtains the
        true delays from the *target* side: ``len(targets)`` single-source
        Dijkstra runs instead of ``len(sources)``. With a handful of landmark
        targets and thousands of proxy sources that removes the dominant
        construction cost (the per-proxy shortest-path sweeps).

        Delays are symmetric on the undirected physical graph, so the values
        differ from the source-side ones by at most float summation order
        (reversed-path addition; ulp-level).
        """
        if probes < 1:
            raise ValueError(f"probes must be >= 1, got {probes}")
        sources = list(sources)
        targets = list(targets)
        true = np.zeros((len(sources), len(targets)), dtype=float)
        for j, t in enumerate(targets):
            dist = self.delays_from(t)
            for i, s in enumerate(sources):
                if s == t:
                    continue
                if s not in dist:
                    raise TopologyError(f"router {t!r} unreachable from {s!r}")
                true[i, j] = dist[s]
        if self.noise == 0.0:
            return true
        out = np.empty_like(true)
        for i in range(len(sources)):
            for j in range(len(targets)):
                out[i, j] = self._noisy(true[i, j], probes)
        return out

    # -- misc ---------------------------------------------------------------

    def nearest(self, source: int, candidates: Iterable[int]) -> int:
        """The candidate router closest (true delay) to *source*."""
        dist = self.delays_from(source)
        best: Optional[int] = None
        best_d = float("inf")
        for c in candidates:
            d = 0.0 if c == source else dist.get(c, float("inf"))
            if d < best_d:
                best, best_d = c, d
        if best is None:
            raise TopologyError("candidates is empty or all unreachable")
        return best

    def warm_cache(self, sources: Iterable[int]) -> None:
        """Precompute delay maps from every router in *sources*."""
        for s in sources:
            self.delays_from(s)

    def pick_overlay_nodes(self, count: int, seed: RngLike = None) -> List[int]:
        """Choose *count* distinct stub routers to host overlay proxies."""
        rng = ensure_rng(seed)
        stubs = self.topology.stub_nodes
        if count > len(stubs):
            raise TopologyError(
                f"cannot place {count} proxies on {len(stubs)} stub routers"
            )
        return rng.sample(stubs, count)
