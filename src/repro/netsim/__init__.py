"""Physical-network substrate: topology generators, delay oracle, event sim."""

from repro.netsim.eventsim import Message, Process, Simulator
from repro.netsim.physical import PhysicalNetwork
from repro.netsim.shard import (
    ShardedSimulator,
    ShardPlan,
    ShardProgram,
    ShardRunResult,
    run_sharded,
)
from repro.netsim.topology import (
    PhysicalTopology,
    TransitStubConfig,
    transit_stub,
    waxman,
)

__all__ = [
    "Message",
    "PhysicalNetwork",
    "PhysicalTopology",
    "Process",
    "ShardPlan",
    "ShardProgram",
    "ShardRunResult",
    "ShardedSimulator",
    "Simulator",
    "TransitStubConfig",
    "transit_stub",
    "waxman",
]
