"""Internet topology generators (the GT-ITM substitute).

The paper generates physical topologies with the transit-stub (TS) model of
Zegura, Calvert & Bhattacharjee [26]. We implement the same structural model
from scratch:

* a small number of **transit domains**, each a connected random graph of
  transit routers, with the transit domains themselves connected;
* each transit router attaches a few **stub domains**, each a connected
  random graph of stub routers;
* every router has a position in a 2-D plane, and each link's propagation
  delay is proportional to the Euclidean distance between its endpoints
  (plus a small per-hop constant), so that topological locality implies
  delay locality — the property distance-based clustering exploits.

Intra-domain wiring follows the Waxman model: the probability of an edge
``(u, v)`` is ``alpha * exp(-d(u, v) / (beta * L))`` where ``L`` is the
domain diameter. A spanning tree is forced first so domains are always
connected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.util.errors import TopologyError
from repro.util.rng import RngLike, ensure_rng

Point = Tuple[float, float]


@dataclass
class TransitStubConfig:
    """Parameters of the transit-stub generator.

    The defaults are tuned so that ``transit_stub(n)`` for n in
    {300, 600, 900, 1200} (Table 1's physical sizes) produces topologies with
    a transit core of a few domains and stubs carrying ~85% of the routers,
    matching the flavour of the GT-ITM configurations used in 2003-era papers.
    """

    transit_domains: int = 3
    transit_nodes_per_domain: int = 4
    stub_domains_per_transit_node: int = 3
    #: Waxman parameters for intra-domain wiring.
    waxman_alpha: float = 0.9
    waxman_beta: float = 0.35
    #: Plane is [0, plane_size] x [0, plane_size]; delays scale with distance.
    plane_size: float = 1000.0
    #: ms of delay per plane-distance unit (speed-of-light-ish scaling).
    delay_per_unit: float = 0.05
    #: fixed per-link processing/queueing delay floor, in ms.
    min_link_delay: float = 0.5
    #: transit domains span the whole plane; stubs cluster near their parent.
    stub_spread: float = 60.0
    transit_spread: float = 120.0


@dataclass
class PhysicalTopology:
    """A generated physical network.

    Attributes:
        graph: weighted graph; node ids are ints, weights are delays in ms.
        positions: plane coordinates per node (drives link delays).
        node_kind: ``"transit"`` or ``"stub"`` per node.
        stub_domain: domain index per stub node (transit nodes map to -1).
    """

    graph: Graph
    positions: Dict[int, Point]
    node_kind: Dict[int, str]
    stub_domain: Dict[int, int] = field(default_factory=dict)

    @property
    def stub_nodes(self) -> List[int]:
        """All stub routers (overlay proxies are placed on these)."""
        return [n for n, kind in self.node_kind.items() if kind == "stub"]

    @property
    def transit_nodes(self) -> List[int]:
        """All transit routers."""
        return [n for n, kind in self.node_kind.items() if kind == "transit"]


def _link_delay(config: TransitStubConfig, a: Point, b: Point) -> float:
    distance = math.dist(a, b)
    return config.min_link_delay + config.delay_per_unit * distance


def _waxman_wire(
    graph: Graph,
    nodes: List[int],
    positions: Dict[int, Point],
    config: TransitStubConfig,
    rng,
) -> None:
    """Connect *nodes* with Waxman edges plus a forced random spanning tree."""
    if len(nodes) <= 1:
        return
    # Forced spanning tree: attach each node to a random earlier node.
    order = nodes[:]
    rng.shuffle(order)
    for i in range(1, len(order)):
        u = order[i]
        v = order[rng.randrange(i)]
        graph.add_edge(u, v, _link_delay(config, positions[u], positions[v]))
    diameter = max(
        math.dist(positions[u], positions[v]) for u in nodes for v in nodes if u != v
    )
    diameter = max(diameter, 1e-9)
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            if graph.has_edge(u, v):
                continue
            d = math.dist(positions[u], positions[v])
            p = config.waxman_alpha * math.exp(-d / (config.waxman_beta * diameter))
            if rng.random() < p:
                graph.add_edge(u, v, _link_delay(config, positions[u], positions[v]))


def transit_stub(
    total_nodes: int,
    config: Optional[TransitStubConfig] = None,
    seed: RngLike = None,
) -> PhysicalTopology:
    """Generate a transit-stub physical topology with ~*total_nodes* routers.

    The transit core size is fixed by *config*; the remaining budget is split
    evenly across stub domains (each stub domain gets at least 2 routers).
    The returned topology is always connected.
    """
    config = config or TransitStubConfig()
    rng = ensure_rng(seed)

    transit_count = config.transit_domains * config.transit_nodes_per_domain
    stub_domain_count = transit_count * config.stub_domains_per_transit_node
    stub_budget = total_nodes - transit_count
    if stub_budget < 2 * stub_domain_count:
        raise TopologyError(
            f"total_nodes={total_nodes} too small for config "
            f"({transit_count} transit nodes, {stub_domain_count} stub domains)"
        )

    graph = Graph()
    positions: Dict[int, Point] = {}
    node_kind: Dict[int, str] = {}
    stub_domain: Dict[int, int] = {}
    next_id = 0

    # 1. Transit domains: centers spread over the plane, nodes around centers.
    transit_by_domain: List[List[int]] = []
    for _ in range(config.transit_domains):
        center = (
            rng.uniform(0.15, 0.85) * config.plane_size,
            rng.uniform(0.15, 0.85) * config.plane_size,
        )
        domain_nodes = []
        for _ in range(config.transit_nodes_per_domain):
            pos = (
                center[0] + rng.gauss(0.0, config.transit_spread),
                center[1] + rng.gauss(0.0, config.transit_spread),
            )
            positions[next_id] = pos
            node_kind[next_id] = "transit"
            graph.add_node(next_id)
            domain_nodes.append(next_id)
            next_id += 1
        _waxman_wire(graph, domain_nodes, positions, config, rng)
        transit_by_domain.append(domain_nodes)

    # 2. Inter-transit-domain links: ring plus one random chord per domain.
    for i in range(len(transit_by_domain)):
        a = rng.choice(transit_by_domain[i])
        b = rng.choice(transit_by_domain[(i + 1) % len(transit_by_domain)])
        if a != b and not graph.has_edge(a, b):
            graph.add_edge(a, b, _link_delay(config, positions[a], positions[b]))
    if len(transit_by_domain) > 2:
        for domain in transit_by_domain:
            a = rng.choice(domain)
            other = rng.choice([d for d in transit_by_domain if d is not domain])
            b = rng.choice(other)
            if a != b and not graph.has_edge(a, b):
                graph.add_edge(a, b, _link_delay(config, positions[a], positions[b]))

    # 3. Stub domains hanging off transit nodes.
    base = stub_budget // stub_domain_count
    extra = stub_budget % stub_domain_count
    domain_index = 0
    transit_nodes = [n for domain in transit_by_domain for n in domain]
    for attach in transit_nodes:
        for _ in range(config.stub_domains_per_transit_node):
            size = base + (1 if domain_index < extra else 0)
            center = (
                positions[attach][0] + rng.gauss(0.0, config.stub_spread * 2),
                positions[attach][1] + rng.gauss(0.0, config.stub_spread * 2),
            )
            domain_nodes = []
            for _ in range(size):
                pos = (
                    center[0] + rng.gauss(0.0, config.stub_spread),
                    center[1] + rng.gauss(0.0, config.stub_spread),
                )
                positions[next_id] = pos
                node_kind[next_id] = "stub"
                stub_domain[next_id] = domain_index
                graph.add_node(next_id)
                domain_nodes.append(next_id)
                next_id += 1
            _waxman_wire(graph, domain_nodes, positions, config, rng)
            # Uplink: the stub router closest to its transit attachment point.
            gateway = min(
                domain_nodes, key=lambda n: math.dist(positions[n], positions[attach])
            )
            graph.add_edge(
                gateway, attach, _link_delay(config, positions[gateway], positions[attach])
            )
            domain_index += 1

    return PhysicalTopology(
        graph=graph, positions=positions, node_kind=node_kind, stub_domain=stub_domain
    )


def waxman(
    node_count: int,
    alpha: float = 0.6,
    beta: float = 0.3,
    plane_size: float = 1000.0,
    delay_per_unit: float = 0.05,
    min_link_delay: float = 0.5,
    seed: RngLike = None,
) -> PhysicalTopology:
    """A flat Waxman random topology (no transit/stub structure).

    Used in tests and as a structural ablation against transit-stub: Waxman
    graphs lack the strong locality clusters, so distance-based clustering
    finds fewer/looser clusters on them.
    """
    if node_count < 1:
        raise TopologyError("node_count must be >= 1")
    rng = ensure_rng(seed)
    config = TransitStubConfig(
        waxman_alpha=alpha,
        waxman_beta=beta,
        plane_size=plane_size,
        delay_per_unit=delay_per_unit,
        min_link_delay=min_link_delay,
    )
    graph = Graph()
    positions = {
        i: (rng.uniform(0, plane_size), rng.uniform(0, plane_size))
        for i in range(node_count)
    }
    node_kind = {i: "stub" for i in range(node_count)}
    graph.add_nodes(range(node_count))
    _waxman_wire(graph, list(range(node_count)), positions, config, rng)
    return PhysicalTopology(
        graph=graph,
        positions=positions,
        node_kind=node_kind,
        stub_domain={i: 0 for i in range(node_count)},
    )
