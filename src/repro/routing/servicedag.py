"""Service-DAG construction and shortest-path solving (the [11] substrate).

The paper's flat routing algorithm maps (service topology × request) into a
directed acyclic *service DAG* whose nodes are ``service-slot/instance``
pairs, plus a source node (the request's source proxy) and a sink node (its
destination proxy). Edges follow the service graph's dependency edges, so
**any** source→sink path in the DAG is a feasible service path, and a
shortest-path run returns an optimal one.

Two solvers are provided with identical semantics:

* :func:`solve_reference` — plain-Python label setting in topological order;
  the executable specification.
* :func:`solve_vectorised` — numpy min-plus relaxation per service-graph
  edge; what experiments use. Property tests pin the two to each other.

Instances are opaque ids: proxies for intra-cluster/flat routing, cluster
ids for the inter-cluster level — the solver does not care.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.services.graph import ServiceGraph, SlotId
from repro.util.errors import NoFeasiblePathError, RoutingError

Instance = Hashable
#: distance callback: (instance, instance) -> float
PairFn = Callable[[Instance, Instance], float]
#: dense distance callback: (instances_a, instances_b) -> (len_a, len_b) array
BlockFn = Callable[[Sequence[Instance], Sequence[Instance]], np.ndarray]


@dataclass
class DagSolution:
    """Result of a service-DAG shortest-path run.

    Attributes:
        cost: total length of the optimal mapped path, including the edges
            from the source instance and to the destination instance.
        assignment: ``(slot, instance)`` pairs along the chosen feasible
            configuration, in dependency order.
    """

    cost: float
    assignment: List[Tuple[SlotId, Instance]]


def _check_inputs(
    sg: ServiceGraph, candidates: Dict[SlotId, Sequence[Instance]]
) -> None:
    unknown = set(candidates) - set(sg.slots())
    if unknown:
        raise RoutingError(f"candidates given for unknown slots: {sorted(unknown)}")


def solve_reference(
    sg: ServiceGraph,
    candidates: Dict[SlotId, Sequence[Instance]],
    source: Instance,
    destination: Instance,
    pair: PairFn,
) -> DagSolution:
    """Plain-Python service-DAG shortest path (executable specification).

    ``candidates[slot]`` lists the instances able to fill *slot*; slots
    missing from the mapping (or mapped to an empty list) are unusable and
    prune every configuration through them. Raises
    :class:`NoFeasiblePathError` if no feasible configuration survives.
    """
    _check_inputs(sg, candidates)
    dist: Dict[Tuple[SlotId, int], float] = {}
    parent: Dict[Tuple[SlotId, int], Optional[Tuple[SlotId, int]]] = {}

    source_slots = set(sg.source_slots())
    for slot in sg.topological_order():
        cands = list(candidates.get(slot, ()))
        for idx, inst in enumerate(cands):
            key = (slot, idx)
            if slot in source_slots:
                dist[key] = pair(source, inst)
                parent[key] = None
            for pred in sg.predecessors(slot):
                pred_cands = list(candidates.get(pred, ()))
                for pidx, pinst in enumerate(pred_cands):
                    pkey = (pred, pidx)
                    if pkey not in dist:
                        continue
                    cost = dist[pkey] + pair(pinst, inst)
                    if key not in dist or cost < dist[key]:
                        dist[key] = cost
                        parent[key] = pkey

    best_key: Optional[Tuple[SlotId, int]] = None
    best_cost = float("inf")
    for slot in sg.sink_slots():
        for idx, inst in enumerate(candidates.get(slot, ())):
            key = (slot, idx)
            if key not in dist:
                continue
            total = dist[key] + pair(inst, destination)
            if total < best_cost:
                best_cost = total
                best_key = key
    if best_key is None or best_cost == float("inf"):
        raise NoFeasiblePathError("no feasible configuration maps onto instances")

    assignment: List[Tuple[SlotId, Instance]] = []
    key: Optional[Tuple[SlotId, int]] = best_key
    while key is not None:
        slot, idx = key
        assignment.append((slot, list(candidates[slot])[idx]))
        key = parent[key]
    assignment.reverse()
    return DagSolution(cost=best_cost, assignment=assignment)


def solve_vectorised(
    sg: ServiceGraph,
    candidates: Dict[SlotId, Sequence[Instance]],
    source: Instance,
    destination: Instance,
    block: BlockFn,
) -> DagSolution:
    """Numpy min-plus service-DAG shortest path (same contract as reference).

    Per service-graph edge ``a -> b`` the relaxation is a vectorised min-plus
    product between a's label vector and the dense (a-candidates ×
    b-candidates) distance block, so the run costs O(Σ_edges |a|·|b|) numpy
    work instead of Python-loop time.
    """
    _check_inputs(sg, candidates)
    cands: Dict[SlotId, List[Instance]] = {
        slot: list(candidates.get(slot, ())) for slot in sg.slots()
    }
    dist: Dict[SlotId, np.ndarray] = {}
    # parent[slot] holds (pred_slot per candidate, pred_index per candidate);
    # pred_slot None means "reached straight from the source".
    parent: Dict[SlotId, List[Optional[Tuple[SlotId, int]]]] = {}

    source_slots = set(sg.source_slots())
    for slot in sg.topological_order():
        instances = cands[slot]
        if not instances:
            continue
        n = len(instances)
        labels = np.full(n, np.inf)
        origins: List[Optional[Tuple[SlotId, int]]] = [None] * n
        if slot in source_slots:
            labels = np.asarray(
                block([source], instances), dtype=float
            ).reshape(n)
            origins = [None] * n
        for pred in sg.predecessors(slot):
            if pred not in dist or not cands[pred]:
                continue
            w = np.asarray(block(cands[pred], instances), dtype=float)
            via = dist[pred][:, None] + w
            best_pred = np.argmin(via, axis=0)
            best_cost = via[best_pred, np.arange(n)]
            better = best_cost < labels
            labels = np.where(better, best_cost, labels)
            for j in np.nonzero(better)[0]:
                origins[int(j)] = (pred, int(best_pred[int(j)]))
        if np.isfinite(labels).any():
            dist[slot] = labels
            parent[slot] = origins

    best: Optional[Tuple[SlotId, int]] = None
    best_cost = float("inf")
    for slot in sg.sink_slots():
        if slot not in dist:
            continue
        instances = cands[slot]
        tail = np.asarray(block(instances, [destination]), dtype=float).reshape(
            len(instances)
        )
        totals = dist[slot] + tail
        idx = int(np.argmin(totals))
        if totals[idx] < best_cost:
            best_cost = float(totals[idx])
            best = (slot, idx)
    if best is None or not np.isfinite(best_cost):
        raise NoFeasiblePathError("no feasible configuration maps onto instances")

    assignment: List[Tuple[SlotId, Instance]] = []
    node: Optional[Tuple[SlotId, int]] = best
    while node is not None:
        slot, idx = node
        assignment.append((slot, cands[slot][idx]))
        node = parent[slot][idx]
    assignment.reverse()
    return DagSolution(cost=best_cost, assignment=assignment)


def brute_force(
    sg: ServiceGraph,
    candidates: Dict[SlotId, Sequence[Instance]],
    source: Instance,
    destination: Instance,
    pair: PairFn,
    limit: int = 200000,
) -> DagSolution:
    """Exhaustive optimum over all configurations × instance mappings.

    Exponential; exists purely so tests can pin the two solvers to the true
    optimum on small cases.
    """
    best_cost = float("inf")
    best_assignment: Optional[List[Tuple[SlotId, Instance]]] = None
    explored = 0
    for config in sg.configurations():
        stack: List[Tuple[int, float, List[Tuple[SlotId, Instance]]]] = [(0, 0.0, [])]
        while stack:
            depth, cost, chosen = stack.pop()
            explored += 1
            if explored > limit:
                raise RoutingError(f"brute_force exceeded {limit} states")
            if depth == len(config):
                total = cost + pair(chosen[-1][1], destination)
                if total < best_cost:
                    best_cost = total
                    best_assignment = chosen
                continue
            slot = config[depth]
            prev_inst = source if depth == 0 else chosen[-1][1]
            for inst in candidates.get(slot, ()):
                stack.append(
                    (depth + 1, cost + pair(prev_inst, inst), chosen + [(slot, inst)])
                )
    if best_assignment is None or best_cost == float("inf"):
        raise NoFeasiblePathError("no feasible configuration maps onto instances")
    return DagSolution(cost=best_cost, assignment=best_assignment)
