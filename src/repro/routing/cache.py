"""CSP caching for the hierarchical router.

A destination proxy pd repeatedly resolves requests whose *cluster-level*
answer is identical: the CSP depends only on the service graph's shape, the
source proxy's cluster, and pd itself — not on which exact proxy inside the
source cluster issued the data. Real deployments would memoise that step
(it is the only step touching global aggregate state), so this module
provides :class:`CachedHierarchicalRouter`: an LRU cache over CSPs.

Invalidation is version-driven: bind a capability feed
(``capability_feed=...``, e.g. a protocol's
:meth:`~repro.state.protocol.StateDistributionProtocol.capability_feed`
or the framework's :meth:`~repro.core.framework.HFCFramework.capability_feed`)
and the cache drops itself exactly when the feed's version moves — no
caller has to guess when to call :meth:`~CachedHierarchicalRouter.invalidate`
anymore (it remains available for feed-less manual wiring).

The intra-cluster conquer step is *not* cached: it depends on the concrete
endpoints and is already cheap and local.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from repro.routing.batch import service_graph_signature
from repro.routing.hierarchical import ClusterServicePath, HierarchicalRouter
from repro.services.request import ServiceRequest
from repro.util.errors import RoutingError

__all__ = [
    "CachedHierarchicalRouter",
    "CacheStats",
    "service_graph_signature",  # canonical home: repro.routing.batch
]


@dataclass
class CacheStats:
    """Hit/miss counters of a CSP cache."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    entries_dropped: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachedHierarchicalRouter(HierarchicalRouter):
    """A hierarchical router with an LRU cache over cluster-level paths."""

    def __init__(self, *args, cache_size: int = 1024, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if cache_size < 1:
            raise RoutingError("cache_size must be >= 1")
        self._cache_size = cache_size
        self._cache: "OrderedDict[Hashable, ClusterServicePath]" = OrderedDict()
        self.stats = CacheStats()
        registry = self.telemetry.registry
        self._hit_counter = registry.counter("routing.cache.hits", cache="csp")
        self._miss_counter = registry.counter("routing.cache.misses", cache="csp")
        self._invalidation_counter = registry.counter(
            "routing.cache.invalidations", cache="csp"
        )
        self._dropped_counter = registry.counter(
            "routing.cache.entries_dropped", cache="csp"
        )

    def _key(self, request: ServiceRequest) -> Hashable:
        return (
            service_graph_signature(request.service_graph),
            self.hfc.cluster_of(request.source_proxy),
            request.destination_proxy,
        )

    def _csp_cache_get(self, key: Hashable):
        """LRU lookup; counts a hit or a miss either way.

        The batch engine consults this before its padded CSP pass, so
        cross-batch reuse works exactly like per-request reuse.
        """
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats.hits += 1
            self._hit_counter.inc()
            return cached
        self.stats.misses += 1
        self._miss_counter.inc()
        return None

    def _csp_cache_put(self, key: Hashable, csp: ClusterServicePath) -> None:
        self._cache[key] = csp
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def cluster_level_path(self, request: ServiceRequest) -> ClusterServicePath:
        # sync with the feed *before* consulting the cache: a version bump
        # runs _capabilities_changed -> invalidate, so stale CSPs can never
        # be served once the feed moved
        self.refresh_capabilities()
        key = self._key(request)
        cached = self._csp_cache_get(key)
        if cached is not None:
            return cached
        csp = super().cluster_level_path(request)
        self._csp_cache_put(key, csp)
        return csp

    def invalidate(self) -> int:
        """Drop every cached CSP (call when SCT_C content changes).

        Returns the number of entries dropped. An invalidation of an
        already-empty cache is a no-op and is *not* counted — otherwise
        every first feed sync and every redundant call inflates the
        invalidation stats without any cached answer having been at risk.
        """
        dropped = len(self._cache)
        if dropped == 0:
            return 0
        self._cache.clear()
        self.stats.invalidations += 1
        self.stats.entries_dropped += dropped
        self._invalidation_counter.inc()
        self._dropped_counter.inc(dropped)
        return dropped

    def _capabilities_changed(self) -> None:
        # the feed version moved: every cached CSP may rest on stale SCT_C
        self.invalidate()

    def update_capabilities(self, cluster_capabilities) -> None:
        """Replace SCT_C and invalidate the cache in one step."""
        self.cluster_capabilities = dict(cluster_capabilities)
        self.invalidate()
