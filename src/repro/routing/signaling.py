"""Control-plane signaling for hierarchical route resolution.

The paper's divide-and-conquer (Section 5.1 steps 3-4) is a distributed
protocol: the destination proxy dissects the request, **distributes child
service requests** to solver proxies inside the chosen clusters (the
cluster's exit border — e.g. Figure 7(d) sends child 1 to C0.1 and child 2
to C1.2 — while pd handles its own cluster), then **waits for the child
service paths to arrive** and composes them.

:class:`SignalingSimulator` replays that exchange on the discrete-event
engine with ground-truth message latencies, measuring what single-node
routing never pays: **path-setup latency** and **control messages**. This
is the latency cost hierarchical routing trades against Fig 9's state
savings; the companion bench compares it across overlay sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.netsim.eventsim import Message, Process, Simulator
from repro.overlay.network import ProxyId
from repro.routing.hierarchical import ChildRequest, HierarchicalRouter
from repro.routing.path import ServicePath
from repro.services.request import ServiceRequest
from repro.util.errors import RoutingError


@dataclass
class SetupReport:
    """Outcome of one signaled route resolution.

    Attributes:
        path: the final composed service path.
        setup_latency: simulated time from the request reaching pd until the
            final path is composed (child solving runs in parallel).
        control_messages: child requests + child replies exchanged.
        remote_children: children solved away from pd.
    """

    path: ServicePath
    setup_latency: float
    control_messages: int
    remote_children: int


def solver_for(child: ChildRequest, destination_proxy: ProxyId) -> ProxyId:
    """The proxy that resolves *child* (paper Figure 7(d)'s assignment).

    Each child is solved by its cluster's exit border — the child's own
    destination proxy — except the last child, whose destination is the
    request's destination proxy pd, which solves it locally.
    """
    del destination_proxy  # the rule is uniform; parameter kept for clarity
    return child.destination_proxy


class _Coordinator(Process):
    """pd: dissects, distributes child requests, composes replies."""

    def __init__(
        self,
        simulator_owner: "SignalingSimulator",
        request: ServiceRequest,
    ) -> None:
        super().__init__(address=("coordinator", request.destination_proxy))
        self.owner = simulator_owner
        self.request = request
        self.pending: Dict[int, Optional[ServicePath]] = {}
        self.children: List[ChildRequest] = []
        self.finished_at: Optional[float] = None
        self.control_messages = 0
        self.remote_children = 0

    def start(self) -> None:
        router = self.owner.router
        csp = router.cluster_level_path(self.request)
        self.children = router.dissect(self.request, csp)
        pd = self.request.destination_proxy
        for index, child in enumerate(self.children):
            self.pending[index] = None
            solver = solver_for(child, pd)
            if solver == pd:
                # solved locally, no signaling
                self._store(index, router.solve_child(self.request, child))
                continue
            self.remote_children += 1
            self.control_messages += 1
            self.send(
                ("solver", solver),
                "child_request",
                (index, child),
                delay=self.owner.delay(pd, solver),
                size=len(child.slots) + 1,
            )
        self._maybe_finish()

    def receive(self, message: Message) -> None:
        index, child_path = message.payload
        self.control_messages += 1
        self._store(index, child_path)
        self._maybe_finish()

    def _store(self, index: int, child_path: ServicePath) -> None:
        self.pending[index] = child_path

    def _maybe_finish(self) -> None:
        if self.finished_at is not None:
            return
        if any(p is None for p in self.pending.values()):
            return
        paths = [self.pending[i] for i in sorted(self.pending)]
        self.owner.final_path = self.owner.router.compose(self.request, paths)
        assert self.simulator is not None
        self.finished_at = self.simulator.now


class _Solver(Process):
    """A border proxy resolving child requests for its cluster."""

    def __init__(self, owner: "SignalingSimulator", proxy: ProxyId) -> None:
        super().__init__(address=("solver", proxy))
        self.owner = owner
        self.proxy = proxy

    def receive(self, message: Message) -> None:
        index, child = message.payload
        child_path = self.owner.router.solve_child(self.owner.request, child)
        coordinator = ("coordinator", self.owner.request.destination_proxy)
        self.send(
            coordinator,
            "child_path",
            (index, child_path),
            delay=self.owner.delay(self.proxy, self.owner.request.destination_proxy),
            size=len(child_path.hops),
        )


class SignalingSimulator:
    """Resolve requests through the simulated divide-and-conquer exchange."""

    def __init__(self, router: HierarchicalRouter) -> None:
        self.router = router
        self.request: Optional[ServiceRequest] = None
        self.final_path: Optional[ServicePath] = None

    def delay(self, u: ProxyId, v: ProxyId) -> float:
        """Control-message latency between two proxies."""
        return self.router.hfc.overlay.true_delay(u, v)

    def resolve(self, request: ServiceRequest) -> SetupReport:
        """Run the signaled resolution of *request*; returns the report.

        The composed path is identical to
        :meth:`HierarchicalRouter.route` — signaling changes *when* the
        path is known, not *which* path is found; tests pin that equality.
        """
        self.request = request
        self.final_path = None
        sim = Simulator()
        coordinator = _Coordinator(self, request)
        sim.register(coordinator)
        for proxy in self.router.hfc.overlay.proxies:
            sim.register(_Solver(self, proxy))
        sim.run_all()
        if self.final_path is None or coordinator.finished_at is None:
            raise RoutingError("signaled resolution did not complete")
        return SetupReport(
            path=self.final_path,
            setup_latency=coordinator.finished_at,
            control_messages=coordinator.control_messages,
            remote_children=coordinator.remote_children,
        )
