"""Single-logical-node cluster aggregation — the design the paper rejects.

Section 3: "the most common way of topology aggregation is to represent a
group of nodes as a single logical node [PNNI]. Such a representation is
simplest, but also introduces too much imprecision [20]. In our framework,
we will make all border nodes of a cluster (several nodes instead of a
single one) represent a group."

:class:`CentroidAggregationRouter` implements the rejected alternative so
the claim can be measured (ablation A6): at the cluster level every cluster
collapses to its coordinate centroid — inter-cluster edge weights are
centroid-to-centroid distances and internal extents are invisible (zero).
The *data plane* is unchanged (messages still traverse the HFC border
links; dissection and intra-cluster resolution work exactly as in
:class:`~repro.routing.hierarchical.HierarchicalRouter`), so any quality
difference is attributable purely to the coarser control-plane information.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.overlay.hfc import HFCTopology
from repro.routing.hierarchical import HierarchicalRouter


class _CentroidView:
    """HFC view whose external estimates are centroid distances and whose
    internal border-to-border segments are invisible."""

    def __init__(self, hfc: HFCTopology) -> None:
        self._hfc = hfc
        self._centroids: Dict[int, np.ndarray] = {
            cid: hfc.space.array(hfc.members(cid)).mean(axis=0)
            for cid in range(hfc.cluster_count)
        }

    def external_estimate(self, i: int, j: int) -> float:
        return float(np.linalg.norm(self._centroids[i] - self._centroids[j]))

    @property
    def space(self):
        return _ZeroInternalSpace()

    def __getattr__(self, name: str):
        return getattr(self._hfc, name)


class _ZeroInternalSpace:
    """A space in which every internal segment has zero length — the
    information a single-logical-node aggregate actually carries."""

    def distance(self, u, v) -> float:
        return 0.0


class CentroidAggregationRouter(HierarchicalRouter):
    """Hierarchical routing over single-logical-node (centroid) aggregates.

    Only the cluster-level map/shortest-path steps see the coarse view;
    dissection and intra-cluster resolution run on the true HFC topology,
    so returned paths are valid — just chosen with poorer information.
    """

    def __init__(self, hfc: HFCTopology, **kwargs) -> None:
        kwargs.setdefault("method", "backtrack")
        super().__init__(_CentroidView(hfc), **kwargs)  # type: ignore[arg-type]
        # Intra-cluster resolution must use real geometry, not the zero
        # space the CSP stage saw.
        from repro.routing.providers import CoordinateProvider

        self._provider = CoordinateProvider(hfc.space)
        self._real_hfc = hfc

    def dissect(self, request, csp):
        """Dissection needs real borders; swap the view for the real HFC."""
        original = self.hfc
        self.hfc = self._real_hfc
        try:
            return super().dissect(request, csp)
        finally:
            self.hfc = original

    def solve_child(self, request, child):
        original = self.hfc
        self.hfc = self._real_hfc
        try:
            return super().solve_child(request, child)
        finally:
            self.hfc = original
