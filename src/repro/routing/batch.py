"""Shared precomputation for batched service-path queries.

Routing resolves every request against the same slowly changing structures
— the border tables of the HFC topology, the provider lists of the overlay,
the member sets of each cluster — yet the scalar per-request path
re-derives them on every call. This module hosts the structures a *batch*
of requests shares:

* :func:`query_tables` — dense numpy tables over the cluster-level border
  structure (external link lengths, border identities, intra-cluster
  border-to-border segments). They are built from the **same scalar calls**
  the reference relaxation makes (``hfc.external_estimate``,
  ``space.distance``), so the vectorized relaxation consumes bit-identical
  floats and can promise bit-identical cluster-level paths. The tables are
  cached on the topology object itself (the convention ``_matrices`` and
  the overlay-graph cache already follow): dynamic membership materialises
  a fresh topology after every churn event, so the cache can never go
  stale.
* :class:`ConquerContext` — per-batch memo of provider lists and cluster
  member sets, so the conquer step stops paying an O(n) placement scan per
  child request.
* :class:`ChildSpec` / :func:`solve_child_spec` — a picklable description
  of one intra-cluster child solve plus the function that solves it. The
  serial batch path and the process-pool path run the *same* function, so
  fanning the conquer step out cannot change results.
* :class:`BatchRouteResult` — aligned per-request outcomes of a batch.

Only intra-cluster border pairs enter the ``d_border`` table: the
back-tracking cost model charges internal segments exclusively between two
borders of the *same* cluster (the entry border and the exit border), and
a destination proxy genuinely cannot estimate distances it holds no
coordinates for — the paper-example regression suite enforces this by
raising on any other distance query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.coords.space import CoordinateSpace
from repro.overlay.network import ProxyId
from repro.routing.flat import materialise_assignment
from repro.routing.path import Hop, ServicePath, merge_consecutive_hops
from repro.routing.providers import CoordinateProvider
from repro.routing.servicedag import solve_reference, solve_vectorised
from repro.services.graph import ServiceGraph, SlotId
from repro.services.request import ServiceRequest
from repro.util.errors import NoFeasiblePathError

ClusterId = int

#: histogram buckets for batch sizes (requests per route_many call)
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)


def service_graph_signature(sg: ServiceGraph) -> Hashable:
    """A hashable identity of an SG's shape and service names."""
    return (
        tuple(sorted((slot, name) for slot, name in sg.services.items())),
        tuple(sorted(sg.edges)),
    )


# -- per-batch outcome ---------------------------------------------------------


@dataclass
class BatchRouteResult:
    """Aligned per-request outcomes of one ``route_many`` call.

    For every request index exactly one of ``paths[i]`` / ``errors[i]`` is
    set; infeasible requests carry the same error type and message the
    scalar ``route`` call raises for them.
    """

    paths: List[Optional[ServicePath]]
    errors: List[Optional[NoFeasiblePathError]]

    def __len__(self) -> int:
        return len(self.paths)

    @property
    def ok_count(self) -> int:
        """Requests that resolved to a path."""
        return sum(1 for p in self.paths if p is not None)

    @property
    def infeasible_count(self) -> int:
        """Requests that raised :class:`NoFeasiblePathError`."""
        return sum(1 for e in self.errors if e is not None)

    def raise_first(self) -> None:
        """Re-raise the first error in request order, if any."""
        for error in self.errors:
            if error is not None:
                raise error


# -- cluster-level query tables ------------------------------------------------


@dataclass
class QueryTables:
    """Dense border-structure tables for the vectorized CSP relaxation.

    ``ext[i, j]`` is ``hfc.external_estimate(i, j)`` (0 on the diagonal);
    ``border_row[i, j]`` is the code of ``hfc.border(i, j)`` in
    ``border_list`` (-1 on the diagonal); ``d_border[a, b]`` is the
    coordinate distance between two borders *of the same cluster* and 0
    for every cross-cluster pair — the relaxation never consumes those
    entries (see the module docstring).
    """

    cluster_count: int
    ext: np.ndarray
    border_row: np.ndarray
    border_list: List[ProxyId]
    border_code: Dict[ProxyId, int]
    d_border: np.ndarray


def query_tables(hfc: Any) -> QueryTables:
    """Build (or fetch the cached) :class:`QueryTables` for *hfc*.

    Works against anything with the HFC cluster-level surface
    (``cluster_count`` / ``border`` / ``external_estimate`` / ``space``),
    including the multilevel super-view and the paper-example stub. The
    result is cached as an attribute on *hfc*; topology mutations always
    materialise a new topology object, so no explicit invalidation exists.
    """
    cached = getattr(hfc, "_query_tables_cache", None)
    if cached is not None:
        return cached
    columnar = getattr(hfc, "columnar", None)
    if columnar is not None:
        # Topologies carrying a columnar overlay state (framework-built
        # hfc, snapshot-restored views) share that state's cached tables
        # instead of walking the object graph again; the columnar builder
        # makes the same scalar math.dist calls in the same order, so the
        # tables are bit-identical either way.
        tables = columnar.query_tables()
        hfc._query_tables_cache = tables
        return tables
    k = hfc.cluster_count
    ext = np.zeros((k, k), dtype=float)
    border_row = np.full((k, k), -1, dtype=np.int64)
    border_list: List[ProxyId] = []
    border_code: Dict[ProxyId, int] = {}
    cluster_codes: List[List[int]] = [[] for _ in range(k)]
    for i in range(k):
        for j in range(k):
            if i == j:
                continue
            proxy = hfc.border(i, j)
            code = border_code.get(proxy)
            if code is None:
                code = len(border_list)
                border_code[proxy] = code
                border_list.append(proxy)
                cluster_codes[i].append(code)
            border_row[i, j] = code
            ext[i, j] = hfc.external_estimate(i, j)
    nb = len(border_list)
    d_border = np.zeros((nb, nb), dtype=float)
    space = hfc.space
    for codes in cluster_codes:
        for a in codes:
            for b in codes:
                if a != b:
                    d_border[a, b] = space.distance(
                        border_list[a], border_list[b]
                    )
    tables = QueryTables(
        cluster_count=k,
        ext=ext,
        border_row=border_row,
        border_list=border_list,
        border_code=border_code,
        d_border=d_border,
    )
    hfc._query_tables_cache = tables
    return tables


# -- batched conquer -----------------------------------------------------------


@dataclass(frozen=True)
class ChildSpec:
    """A picklable intra-cluster child solve: request plus its candidates.

    ``candidates`` holds, per slot, the provider proxies of that slot's
    service inside the child's cluster — in exactly the order
    :meth:`FlatRouter.candidates_for` would produce (overlay placement
    order filtered by membership), so spec-based solving is bit-identical
    to :meth:`HierarchicalRouter.solve_child`.
    """

    cluster: ClusterId
    slots: Tuple[SlotId, ...]
    services: Tuple[str, ...]
    source_proxy: ProxyId
    destination_proxy: ProxyId
    candidates: Tuple[Tuple[SlotId, Tuple[ProxyId, ...]], ...]


class ConquerContext:
    """Per-batch memo of provider lists, member sets, and child candidates.

    ``overlay.providers_of`` scans the whole placement; the scalar conquer
    step pays that scan once per child slot. A batch inverts the placement
    once (service → providers, in proxy order — exactly the order each
    individual ``providers_of`` scan yields) and pays one membership
    filtering per distinct (cluster, service) pair.
    """

    def __init__(self, hfc: Any) -> None:
        self._hfc = hfc
        self._provider_index: Optional[Dict[str, List[ProxyId]]] = None
        self._members: Dict[ClusterId, frozenset] = {}
        self._candidates: Dict[Tuple[ClusterId, str], Tuple[ProxyId, ...]] = {}

    def providers_of(self, service: str) -> List[ProxyId]:
        """Providers of *service*, in the overlay's proxy order."""
        index = self._provider_index
        if index is None:
            index = {}
            overlay = self._hfc.overlay
            for proxy in overlay.proxies:
                for name in overlay.placement[proxy]:
                    index.setdefault(name, []).append(proxy)
            self._provider_index = index
        return index.get(service, [])

    def candidates(self, cluster: ClusterId, service: str) -> Tuple[ProxyId, ...]:
        """Providers of *service* inside *cluster*, in placement order."""
        key = (cluster, service)
        hit = self._candidates.get(key)
        if hit is None:
            providers = self.providers_of(service)
            members = self._members.get(cluster)
            if members is None:
                members = frozenset(self._hfc.members(cluster))
                self._members[cluster] = members
            hit = tuple(p for p in providers if p in members)
            self._candidates[key] = hit
        return hit

    def spec_for(self, child: Any) -> ChildSpec:
        """The :class:`ChildSpec` of one dissected child request."""
        return ChildSpec(
            cluster=child.cluster,
            slots=tuple(child.slots),
            services=tuple(child.services),
            source_proxy=child.source_proxy,
            destination_proxy=child.destination_proxy,
            candidates=tuple(
                (slot, self.candidates(child.cluster, service))
                for slot, service in zip(child.slots, child.services)
            ),
        )


def child_infeasible_error(spec: ChildSpec) -> NoFeasiblePathError:
    """The error the scalar conquer step raises for an unservable child."""
    return NoFeasiblePathError(
        f"cluster {spec.cluster} cannot serve child request "
        f"{spec.services} (stale aggregate state?)"
    )


def solve_child_spec(
    spec: ChildSpec, provider: Any, use_numpy: bool
) -> ServicePath:
    """Solve one child spec exactly as :meth:`HierarchicalRouter.solve_child`.

    Empty children degenerate to the direct link between the endpoints;
    otherwise the (pre-filtered) candidates go through the same flat
    solver and materialisation the per-request path uses.
    """
    if not spec.slots:
        hops = merge_consecutive_hops(
            [Hop(proxy=spec.source_proxy), Hop(proxy=spec.destination_proxy)]
        )
        return ServicePath(hops=tuple(hops))
    sub_sg = ServiceGraph(
        services=dict(zip(spec.slots, spec.services)),
        edges=frozenset(zip(spec.slots, spec.slots[1:])),
    )
    sub_request = ServiceRequest(
        source_proxy=spec.source_proxy,
        service_graph=sub_sg,
        destination_proxy=spec.destination_proxy,
    )
    candidates = {slot: list(cands) for slot, cands in spec.candidates}
    try:
        if use_numpy:
            solution = solve_vectorised(
                sub_sg,
                candidates,
                spec.source_proxy,
                spec.destination_proxy,
                provider.block,
            )
        else:
            solution = solve_reference(
                sub_sg,
                candidates,
                spec.source_proxy,
                spec.destination_proxy,
                provider.pair,
            )
    except NoFeasiblePathError:
        raise child_infeasible_error(spec) from None
    return materialise_assignment(sub_request, solution.assignment)


#: one child outcome: ("ok", path) or ("err", error args)
ChildOutcome = Tuple[str, Any]


def _materialise_chain(
    spec: ChildSpec, assignment: Sequence[Tuple[SlotId, ProxyId]]
) -> ServicePath:
    """Hops of a solved chain spec — :func:`materialise_assignment` without
    the expander machinery (hierarchical children never expand hops)."""
    hops: List[Hop] = [Hop(proxy=spec.source_proxy)]
    for (slot, proxy), service in zip(assignment, spec.services):
        hops.append(Hop(proxy=proxy, service=service, slot=slot))
    hops.append(Hop(proxy=spec.destination_proxy))
    return ServicePath(hops=tuple(merge_consecutive_hops(hops)))


def _solve_chain_bucket(
    specs: Sequence[ChildSpec],
    idxs: List[int],
    length: int,
    space: CoordinateSpace,
    arr_cache: Dict[Tuple[ProxyId, ...], np.ndarray],
    outcomes: List[Optional[ChildOutcome]],
) -> None:
    """Solve all chain specs of one length in padded numpy passes.

    One relaxation per chain position covers every spec in the bucket:
    distance blocks come from the same gathered coordinates and the same
    ``sqrt(einsum(diff, diff))`` element formula as
    :meth:`CoordinateProvider.block`, sums keep the solver's association
    order, and padding lanes sit *after* the real candidates carrying
    ``inf`` labels — so ``argmin``'s first-occurrence tie-break picks the
    same instance :func:`solve_vectorised` picks, bit for bit.
    """
    count = len(idxs)
    width = 0
    per_spec_arrays: List[List[np.ndarray]] = []
    for i in idxs:
        arrays = []
        for _, cands in specs[i].candidates:
            arr = arr_cache.get(cands)
            if arr is None:
                arr = space.array(cands)
                arr_cache[cands] = arr
            arrays.append(arr)
            width = max(width, len(cands))
        per_spec_arrays.append(arrays)
    if width == 0:
        for i in idxs:
            outcomes[i] = ("err", child_infeasible_error(specs[i]).args)
        return
    k = space.dimension
    coords = np.zeros((count, length, width, k))
    valid = np.zeros((count, length, width), dtype=bool)
    for b, arrays in enumerate(per_spec_arrays):
        for t, arr in enumerate(arrays):
            m = len(arr)
            if m:
                coords[b, t, :m] = arr
                valid[b, t, :m] = True
    src = space.array([specs[i].source_proxy for i in idxs])
    dst = space.array([specs[i].destination_proxy for i in idxs])

    diff = coords[:, 0] - src[:, None, :]
    labels = np.sqrt(np.einsum("bck,bck->bc", diff, diff))
    labels[~valid[:, 0]] = np.inf
    parents: List[np.ndarray] = []
    for t in range(1, length):
        diff = coords[:, t - 1][:, :, None, :] - coords[:, t][:, None, :, :]
        w = np.sqrt(np.einsum("bpck,bpck->bpc", diff, diff))
        via = labels[:, :, None] + w
        best_pred = np.argmin(via, axis=1)
        best = np.take_along_axis(via, best_pred[:, None, :], axis=1)[:, 0, :]
        labels = np.where(valid[:, t], best, np.inf)
        parents.append(best_pred)
    diff = coords[:, length - 1] - dst[:, None, :]
    tail = np.sqrt(np.einsum("bck,bck->bc", diff, diff))
    totals = labels + tail
    winner = np.argmin(totals, axis=1)
    final = totals[np.arange(count), winner]

    for b, i in enumerate(idxs):
        spec = specs[i]
        if not np.isfinite(final[b]):
            outcomes[i] = ("err", child_infeasible_error(spec).args)
            continue
        j = int(winner[b])
        assignment: List[Tuple[SlotId, ProxyId]] = []
        for t in range(length - 1, 0, -1):
            assignment.append((spec.slots[t], spec.candidates[t][1][j]))
            j = int(parents[t - 1][b, j])
        assignment.append((spec.slots[0], spec.candidates[0][1][j]))
        assignment.reverse()
        outcomes[i] = ("ok", _materialise_chain(spec, assignment))


def solve_chain_specs_vectorised(
    specs: Sequence[ChildSpec], space: CoordinateSpace
) -> List[ChildOutcome]:
    """Solve every (chain) child spec with per-length padded kernels.

    Drop-in replacement for :func:`solve_specs_serial` over a coordinate
    space with the vectorised child solver: every child a hierarchical
    dissection produces is a chain (each is a run of consecutive slots of
    the chosen configuration path), so the whole conquer step collapses
    into ``max_chain_length`` numpy relaxations per length bucket instead
    of one solver invocation per child. Results are bit-identical to
    per-child :func:`solve_child_spec`.
    """
    outcomes: List[Optional[ChildOutcome]] = [None] * len(specs)
    buckets: Dict[int, List[int]] = {}
    for i, spec in enumerate(specs):
        if not spec.slots:
            hops = merge_consecutive_hops(
                [Hop(proxy=spec.source_proxy), Hop(proxy=spec.destination_proxy)]
            )
            outcomes[i] = ("ok", ServicePath(hops=tuple(hops)))
        else:
            buckets.setdefault(len(spec.slots), []).append(i)
    arr_cache: Dict[Tuple[ProxyId, ...], np.ndarray] = {}
    for length, idxs in buckets.items():
        _solve_chain_bucket(specs, idxs, length, space, arr_cache, outcomes)
    return outcomes  # type: ignore[return-value]


def solve_specs_serial(
    specs: Sequence[ChildSpec], provider: Any, use_numpy: bool
) -> List[ChildOutcome]:
    """Solve every spec in order, capturing per-child infeasibilities."""
    outcomes: List[ChildOutcome] = []
    for spec in specs:
        try:
            outcomes.append(("ok", solve_child_spec(spec, provider, use_numpy)))
        except NoFeasiblePathError as err:
            outcomes.append(("err", err.args))
    return outcomes


def _solve_spec_chunk(
    payload: Tuple[Dict[ProxyId, Tuple[float, ...]], bool, List[ChildSpec]],
) -> List[ChildOutcome]:
    """Pool worker: rebuild a coordinate space and solve one chunk."""
    coords, use_numpy, specs = payload
    space = CoordinateSpace.from_trusted(coords)
    if use_numpy:
        return solve_chain_specs_vectorised(specs, space)
    return solve_specs_serial(specs, CoordinateProvider(space), use_numpy)


def _chunk_coords(
    specs: Sequence[ChildSpec], space: CoordinateSpace
) -> Dict[ProxyId, Tuple[float, ...]]:
    """Coordinates of every proxy a chunk of specs can touch."""
    needed: set = set()
    for spec in specs:
        needed.add(spec.source_proxy)
        needed.add(spec.destination_proxy)
        for _, cands in spec.candidates:
            needed.update(cands)
    return {p: space.coordinate(p) for p in needed}


def solve_specs(
    specs: Sequence[ChildSpec],
    provider: Any,
    use_numpy: bool,
    *,
    workers: int = 1,
    space: Optional[CoordinateSpace] = None,
) -> List[ChildOutcome]:
    """Solve child specs, optionally fanned out over a process pool.

    Mirrors the embedding layer's ``locate_hosts_parallel``: contiguous
    chunks, worker count clamped so tiny batches never pay process
    start-up, and an in-process fallback when a pool cannot be spawned.
    Workers rebuild the coordinate space from the shipped coordinates and
    run :func:`solve_child_spec` — the same function the serial path runs
    on the same floats, so the fan-out is result-invariant. Pooling
    requires *space* (i.e. a coordinate-backed provider); other providers
    always solve in-process.
    """
    specs = list(specs)
    if workers > 1:
        workers = min(workers, max(1, len(specs) // 32))
    if workers <= 1 or space is None:
        if use_numpy and space is not None:
            return solve_chain_specs_vectorised(specs, space)
        return solve_specs_serial(specs, provider, use_numpy)
    bounds = np.array_split(np.arange(len(specs)), workers)
    chunks = [
        [specs[i] for i in chunk] for chunk in bounds if chunk.size
    ]
    jobs = [
        (_chunk_coords(chunk, space), use_numpy, chunk) for chunk in chunks
    ]
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=len(jobs)) as pool:
            parts = list(pool.map(_solve_spec_chunk, jobs))
    except (OSError, PermissionError, ImportError):
        return solve_specs_serial(specs, provider, use_numpy)
    return [outcome for part in parts for outcome in part]
