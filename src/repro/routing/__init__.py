"""Service routing: paths, service DAGs, flat/mesh/hierarchical routers."""

from repro.routing.aggregation import CentroidAggregationRouter
from repro.routing.batch import (
    BatchRouteResult,
    QueryTables,
    query_tables,
    service_graph_signature,
)
from repro.routing.cache import CachedHierarchicalRouter
from repro.routing.signaling import SetupReport, SignalingSimulator
from repro.routing.flat import (
    FlatRouter,
    coordinate_router,
    materialise_assignment,
    oracle_router,
)
from repro.routing.hierarchical import (
    ChildRequest,
    ClusterServicePath,
    HierarchicalResult,
    HierarchicalRouter,
)
from repro.routing.meshrouting import MeshRouter, hfc_full_state_router
from repro.routing.path import (
    Hop,
    ServicePath,
    merge_consecutive_hops,
    path_from_assignment,
    validate_path,
)
from repro.routing.providers import (
    CoordinateProvider,
    DistanceProvider,
    MatrixProvider,
    TrueDelayProvider,
)
from repro.routing.servicedag import (
    DagSolution,
    brute_force,
    solve_reference,
    solve_vectorised,
)

__all__ = [
    "BatchRouteResult",
    "CachedHierarchicalRouter",
    "CentroidAggregationRouter",
    "ChildRequest",
    "ClusterServicePath",
    "CoordinateProvider",
    "DagSolution",
    "DistanceProvider",
    "FlatRouter",
    "HierarchicalResult",
    "HierarchicalRouter",
    "Hop",
    "MatrixProvider",
    "MeshRouter",
    "QueryTables",
    "ServicePath",
    "SetupReport",
    "SignalingSimulator",
    "TrueDelayProvider",
    "brute_force",
    "coordinate_router",
    "hfc_full_state_router",
    "materialise_assignment",
    "merge_consecutive_hops",
    "oracle_router",
    "path_from_assignment",
    "query_tables",
    "service_graph_signature",
    "solve_reference",
    "solve_vectorised",
    "validate_path",
]
