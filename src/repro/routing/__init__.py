"""Service routing: paths, service DAGs, flat/mesh/hierarchical routers."""

from repro.routing.aggregation import CentroidAggregationRouter
from repro.routing.cache import CachedHierarchicalRouter
from repro.routing.signaling import SetupReport, SignalingSimulator
from repro.routing.flat import FlatRouter, coordinate_router, oracle_router
from repro.routing.hierarchical import (
    ChildRequest,
    ClusterServicePath,
    HierarchicalResult,
    HierarchicalRouter,
)
from repro.routing.meshrouting import MeshRouter, hfc_full_state_router
from repro.routing.path import Hop, ServicePath, path_from_assignment, validate_path
from repro.routing.providers import (
    CoordinateProvider,
    DistanceProvider,
    MatrixProvider,
    TrueDelayProvider,
)
from repro.routing.servicedag import (
    DagSolution,
    brute_force,
    solve_reference,
    solve_vectorised,
)

__all__ = [
    "CachedHierarchicalRouter",
    "CentroidAggregationRouter",
    "ChildRequest",
    "ClusterServicePath",
    "CoordinateProvider",
    "DagSolution",
    "DistanceProvider",
    "FlatRouter",
    "HierarchicalResult",
    "HierarchicalRouter",
    "Hop",
    "MatrixProvider",
    "MeshRouter",
    "ServicePath",
    "SetupReport",
    "SignalingSimulator",
    "TrueDelayProvider",
    "brute_force",
    "coordinate_router",
    "hfc_full_state_router",
    "oracle_router",
    "path_from_assignment",
    "solve_reference",
    "solve_vectorised",
    "validate_path",
]
