"""Single-level (flat) service routing — the [11] algorithm, generalised.

A :class:`FlatRouter` answers requests with global knowledge: it knows every
proxy's services and a distance between every proxy pair (through a
:class:`~repro.routing.providers.DistanceProvider`). Instantiations:

* **full-state coordinate routing** over the virtually fully-connected
  overlay (the paper's single-level comparison point for state overhead);
* **oracle routing** over true delays (a lower-bound reference);
* **mesh routing** and **HFC-without-aggregation routing** via a matrix
  provider plus a hop *expander* that inserts the relay proxies the matrix
  distances implicitly traverse (see :mod:`repro.routing.mesh`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.overlay.network import OverlayNetwork, ProxyId
from repro.routing.path import Hop, ServicePath, merge_consecutive_hops
from repro.routing.providers import (
    CoordinateProvider,
    DistanceProvider,
    TrueDelayProvider,
)
from repro.routing.servicedag import solve_reference, solve_vectorised
from repro.services.request import ServiceRequest
from repro.telemetry import get_telemetry
from repro.util.errors import RoutingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (batch imports flat)
    from repro.routing.batch import BatchRouteResult

#: expands one overlay hop (u, v) into the relay proxy sequence [u, ..., v]
HopExpander = Callable[[ProxyId, ProxyId], Sequence[ProxyId]]


class FlatRouter:
    """Optimal service routing with a global view over a distance provider."""

    def __init__(
        self,
        overlay: OverlayNetwork,
        provider: DistanceProvider,
        *,
        expander: Optional[HopExpander] = None,
        candidate_filter: Optional[Callable[[ProxyId], bool]] = None,
        use_numpy: bool = True,
        name: str = "flat",
    ) -> None:
        """
        Args:
            overlay: the overlay network (placement + delays).
            provider: distance oracle routing optimises against.
            expander: optional relay expansion per chosen overlay hop; when
                None, hops are direct overlay links (fully-connected view).
            candidate_filter: optional predicate restricting which proxies
                may provide services (used for intra-cluster routing).
            use_numpy: choose the vectorised or the reference solver.
            name: label used in reports.
        """
        self.overlay = overlay
        self.provider = provider
        self.expander = expander
        self.candidate_filter = candidate_filter
        self.use_numpy = use_numpy
        self.name = name

    def candidates_for(self, request: ServiceRequest) -> Dict[int, List[ProxyId]]:
        """Instance candidates per slot: every (allowed) provider of the slot's
        service."""
        result: Dict[int, List[ProxyId]] = {}
        for slot in request.service_graph.slots():
            service = request.service_graph.service_of(slot)
            providers = self.overlay.providers_of(service)
            if self.candidate_filter is not None:
                providers = [p for p in providers if self.candidate_filter(p)]
            result[slot] = providers
        return result

    def route(self, request: ServiceRequest) -> ServicePath:
        """Compute an optimal service path for *request*.

        Raises :class:`NoFeasiblePathError` when the request cannot be
        satisfied by the (possibly filtered) overlay.
        """
        return self.route_with_candidates(request, self.candidates_for(request))

    def route_with_candidates(
        self,
        request: ServiceRequest,
        candidates: Dict[int, List[ProxyId]],
    ) -> ServicePath:
        """Solve *request* against precomputed per-slot candidates.

        The batch engine computes candidate lists once per (cluster,
        service) pair and feeds them here; with the lists produced by
        :meth:`candidates_for` this is exactly :meth:`route`.
        """
        if self.use_numpy:
            solution = solve_vectorised(
                request.service_graph,
                candidates,
                request.source_proxy,
                request.destination_proxy,
                self.provider.block,
            )
        else:
            solution = solve_reference(
                request.service_graph,
                candidates,
                request.source_proxy,
                request.destination_proxy,
                self.provider.pair,
            )
        return self._materialise(request, solution.assignment)

    def route_many(self, requests: Sequence[ServiceRequest]) -> List[ServicePath]:
        """Resolve a batch, sharing the provider index; raises on the first
        infeasible request (in request order), like per-request ``route``."""
        result = self.route_many_detailed(requests)
        result.raise_first()
        return [path for path in result.paths if path is not None]

    def route_many_detailed(
        self, requests: Sequence[ServiceRequest]
    ) -> "BatchRouteResult":
        """Resolve a batch, capturing per-request outcomes.

        The overlay's provider lists are scanned once per distinct service
        for the whole batch instead of once per request slot; candidate
        content and order match :meth:`candidates_for` exactly, so every
        returned path is bit-identical to the per-request call.
        """
        from repro.routing.batch import BATCH_SIZE_BUCKETS, BatchRouteResult
        from repro.util.errors import NoFeasiblePathError

        requests = list(requests)
        providers_memo: Dict[str, List[ProxyId]] = {}
        paths: List[Optional[ServicePath]] = []
        errors: List[Optional[NoFeasiblePathError]] = []
        for request in requests:
            sg = request.service_graph
            candidates: Dict[int, List[ProxyId]] = {}
            for slot in sg.slots():
                service = sg.service_of(slot)
                providers = providers_memo.get(service)
                if providers is None:
                    providers = self.overlay.providers_of(service)
                    providers_memo[service] = providers
                if self.candidate_filter is not None:
                    candidates[slot] = [
                        p for p in providers if self.candidate_filter(p)
                    ]
                else:
                    candidates[slot] = list(providers)
            try:
                paths.append(self.route_with_candidates(request, candidates))
                errors.append(None)
            except NoFeasiblePathError as err:
                paths.append(None)
                errors.append(err)
        registry = get_telemetry().registry
        registry.counter("routing.batch.batches", router=self.name).inc()
        registry.counter("routing.batch.requests", router=self.name).inc(
            len(requests)
        )
        registry.histogram(
            "routing.batch.size", buckets=BATCH_SIZE_BUCKETS, router=self.name
        ).observe(len(requests))
        return BatchRouteResult(paths=paths, errors=errors)

    def _materialise(
        self,
        request: ServiceRequest,
        assignment: Sequence[Tuple[int, ProxyId]],
    ) -> ServicePath:
        """Turn a slot→proxy assignment into a concrete path with relays."""
        return materialise_assignment(request, assignment, self.expander)


def materialise_assignment(
    request: ServiceRequest,
    assignment: Sequence[Tuple[int, ProxyId]],
    expander: Optional[HopExpander] = None,
) -> ServicePath:
    """Turn a slot→proxy assignment into a concrete path with relays.

    Module-level so pool workers can materialise child solutions without
    carrying a router object across the process boundary.
    """
    sg = request.service_graph
    waypoints: List[Hop] = [Hop(proxy=request.source_proxy)]
    for slot, proxy in assignment:
        waypoints.append(Hop(proxy=proxy, service=sg.service_of(slot), slot=slot))
    waypoints.append(Hop(proxy=request.destination_proxy))

    hops: List[Hop] = [waypoints[0]]
    for prev, nxt in zip(waypoints, waypoints[1:]):
        if expander is not None and prev.proxy != nxt.proxy:
            relays = list(expander(prev.proxy, nxt.proxy))
            if not relays or relays[0] != prev.proxy or relays[-1] != nxt.proxy:
                raise RoutingError(
                    f"expander returned invalid relay chain for "
                    f"({prev.proxy!r}, {nxt.proxy!r}): {relays!r}"
                )
            for relay in relays[1:-1]:
                hops.append(Hop(proxy=relay))
        hops.append(nxt)
    return ServicePath(hops=tuple(merge_consecutive_hops(hops)))


def coordinate_router(overlay: OverlayNetwork, **kwargs) -> FlatRouter:
    """Flat full-state router over coordinate estimates (paper's flat case)."""
    if overlay.space is None:
        raise RoutingError("overlay has no coordinate space attached")
    return FlatRouter(
        overlay, CoordinateProvider(overlay.space), name="flat-coords", **kwargs
    )


def oracle_router(overlay: OverlayNetwork, **kwargs) -> FlatRouter:
    """Flat router over ground-truth delays — the unbeatable reference."""
    return FlatRouter(
        overlay, TrueDelayProvider(overlay), name="flat-oracle", **kwargs
    )
