"""Hierarchical service-path finding (paper Section 5).

The destination proxy resolves a request top-down:

1. **map**: from its aggregate table SCT_C it finds, per service slot, the
   *clusters* offering the service, and builds a cluster-level service DAG;
2. **apply shortest-paths**: a modified DAG-shortest-paths run returns the
   Cluster-level Service Path (CSP). The modification is the paper's
   *back-tracking* step: besides external border-link lengths, the
   relaxation accounts for internal border-to-border segments estimated
   from the globally known border coordinates (and, inside the destination
   proxy's own cluster, exact member coordinates);
3. **divide**: the CSP is dissected into child requests — maximal runs of
   consecutive services mapped into the same cluster; a child's endpoints
   are the entry/exit border proxies (original endpoints at the ends);
4. **conquer**: each cluster solves its child optimally with the flat
   algorithm restricted to its members and full local state; the child
   paths are composed into the final concrete service path.

Three variants of step 2 are provided (`method=`):

* ``"backtrack"`` (default, the paper's): labels carry the border through
  which the cluster was entered, found by back-tracking the chosen
  predecessor, and internal segments are added during relaxation;
* ``"exact"``: dynamic programming over (slot, cluster, entry-border) states
  — the imprecision-free version of the same cost model (ablation);
* ``"external"``: unmodified DAG-shortest-paths on external link lengths
  only — the naive baseline the paper's example argues against.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.overlay.hfc import HFCTopology
from repro.overlay.network import ProxyId
from repro.routing.batch import (
    BATCH_SIZE_BUCKETS,
    BatchRouteResult,
    ChildOutcome,
    ChildSpec,
    ConquerContext,
    query_tables,
    service_graph_signature,
    solve_specs,
)
from repro.routing.flat import FlatRouter
from repro.routing.path import Hop, ServicePath, merge_consecutive_hops
from repro.routing.providers import CoordinateProvider
from repro.services.catalog import ServiceName
from repro.services.graph import ServiceGraph, SlotId
from repro.services.placement import aggregate_capability
from repro.services.request import ServiceRequest
from repro.telemetry import Telemetry, get_telemetry
from repro.telemetry.tracing import WALL_SPAN_BUCKETS
from repro.util.errors import NoFeasiblePathError, RoutingError

ClusterId = int
#: a label key at the cluster level
_Entry = Optional[ProxyId]

METHODS = ("backtrack", "exact", "external")
#: cluster-level relaxation engines for the label-setting methods
CSP_ENGINES = ("vectorized", "reference")

#: one prepared batch-CSP row: (job index, request, chain, candidate lists,
#: source cluster, destination cluster)
_CspChainRow = Tuple[
    int, ServiceRequest, List[SlotId], List[List[ClusterId]], ClusterId, ClusterId
]


@dataclass(frozen=True)
class ClusterServicePath:
    """The CSP: which cluster serves each slot, plus the estimated bound."""

    assignment: Tuple[Tuple[SlotId, ClusterId], ...]
    source_cluster: ClusterId
    destination_cluster: ClusterId
    estimated_cost: float

    def cluster_sequence(self) -> List[ClusterId]:
        """Clusters in path order with consecutive duplicates collapsed."""
        seq: List[ClusterId] = []
        for _, cluster in self.assignment:
            if not seq or seq[-1] != cluster:
                seq.append(cluster)
        return seq


@dataclass(frozen=True)
class ChildRequest:
    """A dissected piece of the original request, solvable inside one cluster.

    ``slots`` may be empty: the cluster then only relays from
    *source_proxy* to *destination_proxy* (e.g. the source's own cluster
    when no service is mapped there).
    """

    cluster: ClusterId
    slots: Tuple[SlotId, ...]
    services: Tuple[ServiceName, ...]
    source_proxy: ProxyId
    destination_proxy: ProxyId


@dataclass
class HierarchicalResult:
    """Everything produced while resolving one request hierarchically."""

    path: ServicePath
    csp: ClusterServicePath
    child_requests: List[ChildRequest]
    child_paths: List[ServicePath]


class HierarchicalRouter:
    """Divide-and-conquer service routing over an HFC topology."""

    #: sentinel: the router has never synchronised with its feed
    _UNSYNCED = object()

    # class-level defaults so partially wired routers (tests construct
    # them field-by-field around __init__) behave as feed-less
    capability_feed = None
    _feed_version: object = _UNSYNCED
    csp_engine = "vectorized"
    query_workers: Optional[int] = None

    def __init__(
        self,
        hfc: HFCTopology,
        *,
        method: str = "backtrack",
        cluster_capabilities: Optional[Dict[ClusterId, FrozenSet[ServiceName]]] = None,
        use_numpy: bool = True,
        telemetry: Optional[Telemetry] = None,
        capability_feed=None,
        csp_engine: str = "vectorized",
        query_workers: Optional[int] = None,
    ) -> None:
        """
        Args:
            hfc: the HFC topology (clusters, borders, coordinates).
            method: CSP computation variant; one of ``backtrack``, ``exact``,
                ``external``.
            cluster_capabilities: SCT_C contents; defaults to the exact
                aggregation of the current placement (a converged state
                protocol). Pass protocol-produced tables to study staleness.
            use_numpy: solver choice for the intra-cluster step.
            telemetry: observability scope; defaults to the process-wide
                one (every resolution opens a ``route`` span tree and
                bumps the request counters).
            capability_feed: an optional versioned SCT_C source (anything
                with ``.version`` and ``.capabilities()``, e.g.
                :meth:`repro.state.protocol.StateDistributionProtocol.capability_feed`
                or :class:`repro.core.versioning.MutableCapabilityFeed`).
                When bound, the router re-pulls the view whenever the feed
                version moves — it supersedes *cluster_capabilities*.
            csp_engine: cluster-level relaxation engine for the
                label-setting methods: ``"vectorized"`` (one numpy pass per
                slot over precomputed border tables, the default) or
                ``"reference"`` (the original scalar loop). Both return
                bit-identical cluster-level paths; the ``exact`` method has
                a single implementation.
            query_workers: default process-pool size for the conquer step
                of :meth:`route_many` (None = in-process).
        """
        if method not in METHODS:
            raise RoutingError(f"method must be one of {METHODS}, got {method!r}")
        if csp_engine not in CSP_ENGINES:
            raise RoutingError(
                f"csp_engine must be one of {CSP_ENGINES}, got {csp_engine!r}"
            )
        if query_workers is not None and query_workers < 1:
            raise RoutingError("query_workers must be >= 1 or None")
        self.hfc = hfc
        self.method = method
        self.use_numpy = use_numpy
        self.csp_engine = csp_engine
        self.query_workers = query_workers
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.capability_feed = capability_feed
        self._feed_version: object = self._UNSYNCED
        if cluster_capabilities is None and capability_feed is None:
            cluster_capabilities = {
                cid: aggregate_capability(hfc.overlay.placement, hfc.members(cid))
                for cid in range(hfc.cluster_count)
            }
        self.cluster_capabilities = cluster_capabilities or {}
        self._provider = CoordinateProvider(hfc.space)

    # -- versioned capability view ---------------------------------------------

    def refresh_capabilities(self) -> bool:
        """Synchronise SCT_C with the bound feed; True if the view changed.

        No-op without a feed or when the feed version is unchanged since
        the last sync. On a change, :meth:`_capabilities_changed` runs so
        subclasses can drop derived state (the CSP cache) — callers never
        need to guess when to invalidate.
        """
        feed = self.capability_feed
        if feed is None:
            return False
        version = feed.version
        if version == self._feed_version:
            return False
        self.cluster_capabilities = dict(feed.capabilities())
        self._feed_version = version
        # fire on ANY replacement, the first sync included: a feed can be
        # bound to a router that already cached answers computed from the
        # constructor-default view, and those are stale the moment the
        # feed's content takes over
        self._capabilities_changed()
        return True

    def _capabilities_changed(self) -> None:
        """Hook: the capability view was replaced (subclasses drop caches)."""

    def rebind(self, hfc: HFCTopology) -> None:
        """Point this router at a (possibly rebuilt) HFC topology.

        Recovery flows keep one long-lived router across overlay repairs
        instead of constructing a new one per failure; after a membership
        change rebuilt the topology they rebind. Feed-less routers get the
        ground-truth capability view of the new placement; feed-bound ones
        are forced to resynchronise on the next refresh. Either way
        :meth:`_capabilities_changed` fires, because topology-derived
        caches (CSP keys embed cluster ids, which a rebuild renumbers) are
        all invalid now.
        """
        self.hfc = hfc
        self._provider = CoordinateProvider(hfc.space)
        if self.capability_feed is None:
            self.cluster_capabilities = {
                cid: aggregate_capability(hfc.overlay.placement, hfc.members(cid))
                for cid in range(hfc.cluster_count)
            }
            self._capabilities_changed()
        else:
            self._feed_version = self._UNSYNCED
            self.refresh_capabilities()

    # -- CSP cache hooks (no-ops here; the cached subclass persists CSPs) -------

    def _csp_cache_get(self, key: Hashable) -> Optional["ClusterServicePath"]:
        """Look up a CSP by its identity key; None on a miss."""
        return None

    def _csp_cache_put(self, key: Hashable, csp: "ClusterServicePath") -> None:
        """Store a computed CSP under its identity key."""

    # -- public API -----------------------------------------------------------

    def route(self, request: ServiceRequest) -> ServicePath:
        """Resolve *request* and return the final composed service path."""
        return self.route_detailed(request).path

    def route_detailed(self, request: ServiceRequest) -> HierarchicalResult:
        """Resolve *request*, keeping the CSP and the child decomposition."""
        tracer = self.telemetry.tracer
        registry = self.telemetry.registry
        with tracer.span("route", router="hierarchical", method=self.method):
            try:
                with tracer.span("route.csp"):
                    csp = self.cluster_level_path(request)
                with tracer.span("route.dissect"):
                    children = self.dissect(request, csp)
                with tracer.span("route.conquer", children=len(children)):
                    child_paths = [
                        self.solve_child(request, child) for child in children
                    ]
                with tracer.span("route.compose"):
                    path = self.compose(request, child_paths)
            except NoFeasiblePathError:
                registry.counter(
                    "routing.requests", router="hierarchical", outcome="infeasible"
                ).inc()
                raise
        registry.counter(
            "routing.requests", router="hierarchical", outcome="ok"
        ).inc()
        return HierarchicalResult(
            path=path, csp=csp, child_requests=children, child_paths=child_paths
        )

    # -- batched resolution -----------------------------------------------------

    def route_many(
        self,
        requests: Sequence[ServiceRequest],
        *,
        workers: Optional[int] = None,
    ) -> List[ServicePath]:
        """Resolve a batch of requests through the shared-precompute engine.

        Returns one path per request, in order; raises the first
        :class:`NoFeasiblePathError` (in request order) with the same type
        and message the per-request :meth:`route` call produces. Paths are
        bit-identical to routing each request individually.
        """
        result = self.route_many_detailed(requests, workers=workers)
        result.raise_first()
        return [path for path in result.paths if path is not None]

    def route_many_detailed(
        self,
        requests: Sequence[ServiceRequest],
        *,
        workers: Optional[int] = None,
    ) -> BatchRouteResult:
        """Resolve a batch, capturing per-request outcomes.

        The batch shares everything that does not depend on the individual
        request: one capability sync, the cluster-level border tables, a
        per-(service-graph shape, source-cluster, destination) CSP memo on
        top of whatever version-driven cache a subclass maintains, and a
        per-(cluster, service) candidate index for the conquer step. The
        independent child solves can fan out over a process pool
        (*workers*, defaulting to ``query_workers``), mirroring
        ``embedding_workers``; pooling is result-invariant.

        Subclasses that override :meth:`solve_child` (e.g. the three-level
        router) conquer through their own hook, per child, in-process.
        """
        requests = list(requests)
        tracer = self.telemetry.tracer
        registry = self.telemetry.registry
        if workers is None:
            workers = self.query_workers
        started = time.perf_counter()
        count = len(requests)
        csps: List[Optional[ClusterServicePath]] = [None] * count
        errors: List[Optional[NoFeasiblePathError]] = [None] * count
        children_of: List[Optional[List[ChildRequest]]] = [None] * count
        paths: List[Optional[ServicePath]] = [None] * count
        with tracer.span("route.batch", router="hierarchical", requests=count):
            with tracer.span("route.batch.precompute"):
                precompute_started = time.perf_counter()
                self.refresh_capabilities()
                if self.csp_engine == "vectorized" and self.method != "exact":
                    query_tables(self.hfc)
                context = ConquerContext(self.hfc)
                precompute_seconds = time.perf_counter() - precompute_started

            # map + cluster-level shortest paths, memoized per CSP identity
            csp_memo: Dict[Hashable, Tuple[str, object]] = {}
            chain_engine = self.csp_engine == "vectorized" and self.method != "exact"
            service_clusters: Dict[ServiceName, List[ClusterId]] = {}
            pending: Dict[Hashable, Tuple[ServiceRequest, List[int]]] = {}
            with tracer.span("route.batch.csp"):
                for idx, request in enumerate(requests):
                    key = (
                        service_graph_signature(request.service_graph),
                        self.hfc.cluster_of(request.source_proxy),
                        request.destination_proxy,
                    )
                    hit = csp_memo.get(key)
                    if hit is not None:
                        kind, value = hit
                        if kind == "ok":
                            csps[idx] = value  # type: ignore[assignment]
                        else:
                            # replay the memoized infeasibility verbatim
                            error = value  # type: ignore[assignment]
                            errors[idx] = type(error)(*error.args)
                        continue
                    job = pending.get(key)
                    if job is not None:
                        job[1].append(idx)
                        continue
                    if not (chain_engine and request.service_graph.is_linear):
                        # exact method, reference engine, or a non-chain SG:
                        # resolve per request (subclass caches included)
                        try:
                            csp = self.cluster_level_path(request)
                        except NoFeasiblePathError as err:
                            csp_memo[key] = ("err", err)
                            errors[idx] = err
                        else:
                            csp_memo[key] = ("ok", csp)
                            csps[idx] = csp
                        continue
                    cached = self._csp_cache_get(key)
                    if cached is not None:
                        csp_memo[key] = ("ok", cached)
                        csps[idx] = cached
                        continue
                    pending[key] = (request, [idx])
                if pending:
                    jobs = list(pending.items())
                    solved = self._solve_csp_chains(
                        [(key, job[0]) for key, job in jobs], service_clusters
                    )
                    for (key, (_, indices)), (kind, value) in zip(jobs, solved):
                        csp_memo[key] = (kind, value)
                        if kind == "ok":
                            self._csp_cache_put(key, value)
                            for idx in indices:
                                csps[idx] = value
                        else:
                            for pos, idx in enumerate(indices):
                                errors[idx] = (
                                    value if pos == 0 else type(value)(*value.args)
                                )

            with tracer.span("route.batch.dissect"):
                for idx, request in enumerate(requests):
                    csp = csps[idx]
                    if csp is not None:
                        children_of[idx] = self.dissect(request, csp)

            # conquer: flatten every child across the batch, solve, regroup
            outcomes_of: Dict[int, List[ChildOutcome]] = {}
            custom_conquer = (
                type(self).solve_child is not HierarchicalRouter.solve_child
                or type(self)._conquer_custom
                is not HierarchicalRouter._conquer_custom
            )
            with tracer.span("route.batch.conquer", workers=workers or 1):
                if custom_conquer:
                    self._conquer_custom(requests, children_of, outcomes_of)
                else:
                    specs: List[ChildSpec] = []
                    owners: List[int] = []
                    for idx, request in enumerate(requests):
                        children = children_of[idx]
                        if children is None:
                            continue
                        outcomes_of[idx] = []
                        for child in children:
                            specs.append(context.spec_for(child))
                            owners.append(idx)
                    solved = solve_specs(
                        specs,
                        self._provider,
                        self.use_numpy,
                        workers=workers or 1,
                        space=self.hfc.space
                        if isinstance(self._provider, CoordinateProvider)
                        else None,
                    )
                    for owner, outcome in zip(owners, solved):
                        outcomes_of[owner].append(outcome)

            with tracer.span("route.batch.compose"):
                for idx, request in enumerate(requests):
                    outcomes = outcomes_of.get(idx)
                    if outcomes is None:
                        continue
                    failure = next(
                        (value for kind, value in outcomes if kind == "err"), None
                    )
                    if failure is not None:
                        # pool outcomes carry error args (picklable); the
                        # custom-conquer path keeps the original instance
                        errors[idx] = (
                            failure
                            if isinstance(failure, NoFeasiblePathError)
                            else NoFeasiblePathError(*failure)
                        )
                        continue
                    paths[idx] = self.compose(
                        request, [path for _, path in outcomes]
                    )

        ok = sum(1 for path in paths if path is not None)
        registry.counter("routing.batch.batches", router="hierarchical").inc()
        registry.counter("routing.batch.requests", router="hierarchical").inc(count)
        registry.histogram(
            "routing.batch.size", buckets=BATCH_SIZE_BUCKETS, router="hierarchical"
        ).observe(count)
        registry.gauge(
            "routing.batch.precompute_seconds", router="hierarchical"
        ).set(precompute_seconds)
        if count:
            registry.histogram(
                "routing.batch.request_seconds",
                buckets=WALL_SPAN_BUCKETS,
                router="hierarchical",
            ).observe((time.perf_counter() - started) / count)
        if ok:
            registry.counter(
                "routing.requests", router="hierarchical", outcome="ok"
            ).inc(ok)
        if count - ok:
            registry.counter(
                "routing.requests", router="hierarchical", outcome="infeasible"
            ).inc(count - ok)
        return BatchRouteResult(paths=paths, errors=errors)

    def _conquer_custom(
        self,
        requests: Sequence[ServiceRequest],
        children_of: Sequence[Optional[List[ChildRequest]]],
        outcomes_of: Dict[int, List[ChildOutcome]],
    ) -> None:
        """Conquer hook for routers with a custom :meth:`solve_child`.

        The base implementation replays the scalar semantics per request:
        children are solved in order through :meth:`solve_child`, stopping
        at the first infeasible child. Subclasses may override this to
        batch child solves (the recursive router groups children per
        sub-hierarchy and feeds each group's router one ``route_many``
        call) as long as the recorded outcomes stay identical.
        """
        for idx, request in enumerate(requests):
            children = children_of[idx]
            if children is None:
                continue
            outcomes: List[ChildOutcome] = []
            for child in children:
                try:
                    outcomes.append(("ok", self.solve_child(request, child)))
                except NoFeasiblePathError as err:
                    outcomes.append(("err", err))
                    break
            outcomes_of[idx] = outcomes

    # -- batched cluster-level relaxation ---------------------------------------

    def _solve_csp_chains(
        self,
        jobs: Sequence[Tuple[Hashable, ServiceRequest]],
        service_clusters: Dict[ServiceName, List[ClusterId]],
    ) -> List[Tuple[str, object]]:
        """Cluster-level paths for a batch of linear requests, bucketed by
        chain length and relaxed in padded numpy passes.

        *jobs* carries ``(key, request)`` pairs where ``key[1]`` is the
        source cluster. Returns one ``("ok", ClusterServicePath)`` or
        ``("err", NoFeasiblePathError)`` per job, with exactly the CSPs and
        errors :meth:`cluster_level_path` produces per request.
        """
        hfc = self.hfc
        with_internal = self.method == "backtrack"
        tables = query_tables(hfc)
        caps = self.cluster_capabilities
        cluster_range = range(hfc.cluster_count)
        results: List[Optional[Tuple[str, object]]] = [None] * len(jobs)
        prepared: List[_CspChainRow] = []
        buckets: Dict[int, List[int]] = {}
        for j, (key, request) in enumerate(jobs):
            sg = request.service_graph
            cand_by_slot: Dict[SlotId, List[ClusterId]] = {}
            for slot in sg.slots():
                service = sg.service_of(slot)
                cands = service_clusters.get(service)
                if cands is None:
                    cands = [
                        cid
                        for cid in cluster_range
                        if service in caps.get(cid, frozenset())
                    ]
                    service_clusters[service] = cands
                cand_by_slot[slot] = cands
            if any(not cand_by_slot[s] for s in sg.slots()):
                missing = [
                    sg.service_of(s) for s in sg.slots() if not cand_by_slot[s]
                ]
                results[j] = (
                    "err",
                    NoFeasiblePathError(
                        f"services unavailable in every cluster: {missing}"
                    ),
                )
                continue
            chain = sg.topological_order()
            prepared.append(
                (
                    j,
                    request,
                    chain,
                    [cand_by_slot[s] for s in chain],
                    key[1],  # type: ignore[index]
                    hfc.cluster_of(request.destination_proxy),
                )
            )
            buckets.setdefault(len(chain), []).append(len(prepared) - 1)
        for length, rows in buckets.items():
            self._solve_csp_chain_bucket(
                prepared, rows, length, tables, with_internal, results
            )
        return results  # type: ignore[return-value]

    def _solve_csp_chain_bucket(
        self,
        prepared: Sequence[_CspChainRow],
        rows: List[int],
        length: int,
        tables,
        with_internal: bool,
        results: List[Optional[Tuple[str, object]]],
    ) -> None:
        """One padded relaxation pass per chain position for a length bucket.

        Equivalence with the scalar reference rests on the same three facts
        as :meth:`_solve_label_vectorized` — shared scalar-sourced tables,
        preserved ``(dist + ext) + internal`` association, first-occurrence
        ``argmin`` matching strict-``<`` updates in candidate order — plus
        one batching fact: padding lanes sit after the real candidates and
        carry ``inf`` labels, so they never steal an argmin tie.
        """
        ext = tables.ext
        border_row = tables.border_row
        border_list = tables.border_list
        d_border = tables.d_border
        nb = len(border_list)
        count = len(rows)
        width = max(len(cl) for row in rows for cl in prepared[row][3])
        cand = np.zeros((count, length, width), dtype=np.int64)
        vmask = np.zeros((count, length, width), dtype=bool)
        cs_arr = np.empty(count, dtype=np.int64)
        for b, row in enumerate(rows):
            _, _, _, cand_lists, cs, _ = prepared[row]
            cs_arr[b] = cs
            for t, cl in enumerate(cand_lists):
                m = len(cl)
                cand[b, t, :m] = cl
                vmask[b, t, :m] = True

        # source-slot labels straight from the tables (same floats _start
        # reads back out of external_estimate/border)
        k0 = cand[:, 0]
        at_home = k0 == cs_arr[:, None]
        labels = np.where(at_home, 0.0, ext[cs_arr[:, None], k0])
        entry = np.where(at_home, -1, border_row[k0, cs_arr[:, None]])
        labels = np.where(vmask[:, 0], labels, np.inf)
        parents: List[np.ndarray] = []
        for t in range(1, length):
            kp = cand[:, t - 1]
            kc = cand[:, t]
            same = kp[:, :, None] == kc[:, None, :]
            costs = labels[:, :, None] + ext[kp[:, :, None], kc[:, None, :]]
            if with_internal and nb:
                # back-tracking, batched: entry border of each label to the
                # exit border toward the candidate cluster
                exit_codes = border_row[kp[:, :, None], kc[:, None, :]]
                safe_entry = np.where(entry < 0, 0, entry)
                segments = d_border[
                    safe_entry[:, :, None],
                    np.where(exit_codes < 0, 0, exit_codes),
                ]
                costs = costs + np.where(
                    (entry[:, :, None] < 0) | (entry[:, :, None] == exit_codes),
                    0.0,
                    segments,
                )
            costs = np.where(same, labels[:, :, None], costs)
            entries = np.where(
                same, entry[:, :, None], border_row[kc[:, None, :], kp[:, :, None]]
            )
            win = np.argmin(costs, axis=1)
            gather = win[:, None, :]
            labels = np.take_along_axis(costs, gather, axis=1)[:, 0, :]
            entry = np.take_along_axis(entries, gather, axis=1)[:, 0, :]
            labels = np.where(vmask[:, t], labels, np.inf)
            parents.append(win)

        # scalar sink scan (exact per-destination distances) + backtrack
        for b, row in enumerate(rows):
            job_index, request, chain, cand_lists, cs, cd = prepared[row]
            pd = request.destination_proxy
            last = cand_lists[length - 1]
            best_j = -1
            best_total = float("inf")
            for j, ci in enumerate(last):
                cost = labels[b, j]
                if not math.isfinite(cost):
                    continue
                code = int(entry[b, j])
                ent = None if code < 0 else border_list[code]
                total = cost + self._tail(ci, ent, cd, pd, with_internal)
                if total < best_total:
                    best_total = total
                    best_j = j
            if best_j < 0 or best_total == float("inf"):
                results[job_index] = (
                    "err",
                    NoFeasiblePathError(
                        "no cluster-level configuration satisfies the request"
                    ),
                )
                continue
            assignment: List[Tuple[SlotId, ClusterId]] = []
            j = best_j
            for t in range(length - 1, 0, -1):
                assignment.append((chain[t], cand_lists[t][j]))
                j = int(parents[t - 1][b, j])
            assignment.append((chain[0], cand_lists[0][j]))
            assignment.reverse()
            results[job_index] = (
                "ok",
                ClusterServicePath(
                    assignment=tuple(assignment),
                    source_cluster=cs,
                    destination_cluster=cd,
                    estimated_cost=float(best_total),
                ),
            )

    # -- step 1+2: cluster-level service DAG -----------------------------------

    def cluster_candidates(self, sg: ServiceGraph) -> Dict[SlotId, List[ClusterId]]:
        """Clusters able to fill each slot, per SCT_C (the *map* step)."""
        result: Dict[SlotId, List[ClusterId]] = {}
        for slot in sg.slots():
            service = sg.service_of(slot)
            result[slot] = [
                cid
                for cid in range(self.hfc.cluster_count)
                if service in self.cluster_capabilities.get(cid, frozenset())
            ]
        return result

    def cluster_level_path(self, request: ServiceRequest) -> ClusterServicePath:
        """Compute the CSP with the configured method."""
        self.refresh_capabilities()
        hfc = self.hfc
        cs = hfc.cluster_of(request.source_proxy)
        cd = hfc.cluster_of(request.destination_proxy)
        sg = request.service_graph
        candidates = self.cluster_candidates(sg)
        if any(not c for c in candidates.values()) and not sg.is_linear:
            # Non-linear SGs may route around empty slots; linear ones cannot.
            pass
        if sg.is_linear and any(not candidates[s] for s in sg.slots()):
            missing = [
                sg.service_of(s) for s in sg.slots() if not candidates[s]
            ]
            raise NoFeasiblePathError(
                f"services unavailable in every cluster: {missing}"
            )
        if self.method == "exact":
            cost, assignment = self._solve_exact(request, sg, candidates, cs, cd)
        elif self.csp_engine == "reference":
            cost, assignment = self._solve_label_reference(
                request, sg, candidates, cs, cd, with_internal=self.method == "backtrack"
            )
        else:
            cost, assignment = self._solve_label_vectorized(
                request, sg, candidates, cs, cd, with_internal=self.method == "backtrack"
            )
        return ClusterServicePath(
            assignment=tuple(assignment),
            source_cluster=cs,
            destination_cluster=cd,
            estimated_cost=cost,
        )

    # internal-distance helpers ------------------------------------------------

    def _internal(self, entry: _Entry, exit_border: ProxyId) -> float:
        """Estimated in-cluster segment from the entry border to the exit
        border; zero when unknown (source cluster) or when they coincide."""
        if entry is None or entry == exit_border:
            return 0.0
        return self.hfc.space.distance(entry, exit_border)

    def _tail(
        self, cluster: ClusterId, entry: _Entry, cd: ClusterId, pd: ProxyId,
        with_internal: bool,
    ) -> float:
        """Bound on the remaining distance from the last service cluster to pd."""
        hfc = self.hfc
        if cluster == cd:
            if not with_internal or entry is None:
                return 0.0
            return hfc.space.distance(entry, pd)
        cost = hfc.external_estimate(cluster, cd)
        if with_internal:
            cost += self._internal(entry, hfc.border(cluster, cd))
            cost += hfc.space.distance(hfc.border(cd, cluster), pd)
        return cost

    def _start(
        self, cluster: ClusterId, cs: ClusterId, with_internal: bool
    ) -> Tuple[float, _Entry]:
        """Cost and entry border for reaching the first service cluster."""
        if cluster == cs:
            return 0.0, None
        # pd cannot estimate the segment from ps to the exit border of cs
        # (it has no coordinates for ps), so only the external link counts.
        del with_internal  # the source-side internal segment is unknown either way
        return (
            self.hfc.external_estimate(cs, cluster),
            self.hfc.border(cluster, cs),
        )

    # label-setting with optional back-tracking --------------------------------

    def _solve_label_reference(
        self,
        request: ServiceRequest,
        sg: ServiceGraph,
        candidates: Dict[SlotId, List[ClusterId]],
        cs: ClusterId,
        cd: ClusterId,
        *,
        with_internal: bool,
    ) -> Tuple[float, List[Tuple[SlotId, ClusterId]]]:
        hfc = self.hfc
        dist: Dict[Tuple[SlotId, ClusterId], float] = {}
        entry: Dict[Tuple[SlotId, ClusterId], _Entry] = {}
        parent: Dict[Tuple[SlotId, ClusterId], Optional[Tuple[SlotId, ClusterId]]] = {}

        source_slots = set(sg.source_slots())
        for slot in sg.topological_order():
            for cj in candidates[slot]:
                key = (slot, cj)
                if slot in source_slots:
                    cost, ent = self._start(cj, cs, with_internal)
                    dist[key] = cost
                    entry[key] = ent
                    parent[key] = None
                for pred in sg.predecessors(slot):
                    for ci in candidates[pred]:
                        pkey = (pred, ci)
                        if pkey not in dist:
                            continue
                        if ci == cj:
                            cost = dist[pkey]
                            ent = entry[pkey]
                        else:
                            cost = dist[pkey] + hfc.external_estimate(ci, cj)
                            if with_internal:
                                # The back-tracking step: look up through which
                                # border this label entered ci, and charge the
                                # internal segment to ci's exit border.
                                cost += self._internal(
                                    entry[pkey], hfc.border(ci, cj)
                                )
                            ent = hfc.border(cj, ci)
                        if key not in dist or cost < dist[key]:
                            dist[key] = cost
                            entry[key] = ent
                            parent[key] = pkey

        best_key: Optional[Tuple[SlotId, ClusterId]] = None
        best_total = float("inf")
        for slot in sg.sink_slots():
            for ci in candidates[slot]:
                key = (slot, ci)
                if key not in dist:
                    continue
                total = dist[key] + self._tail(
                    ci, entry[key], cd, request.destination_proxy, with_internal
                )
                if total < best_total:
                    best_total = total
                    best_key = key
        if best_key is None or best_total == float("inf"):
            raise NoFeasiblePathError(
                "no cluster-level configuration satisfies the request"
            )
        assignment: List[Tuple[SlotId, ClusterId]] = []
        node: Optional[Tuple[SlotId, ClusterId]] = best_key
        while node is not None:
            assignment.append(node)
            node = parent[node]
        assignment.reverse()
        return best_total, assignment

    # vectorized relaxation over precomputed border tables -----------------------

    def _solve_label_vectorized(
        self,
        request: ServiceRequest,
        sg: ServiceGraph,
        candidates: Dict[SlotId, List[ClusterId]],
        cs: ClusterId,
        cd: ClusterId,
        *,
        with_internal: bool,
    ) -> Tuple[float, List[Tuple[SlotId, ClusterId]]]:
        """One numpy pass per slot; bit-identical to the reference loop.

        Per slot, all (predecessor-label × candidate-cluster) relaxations
        evaluate at once against the precomputed tables of
        :func:`~repro.routing.batch.query_tables`. Bit-equality holds
        because (a) the tables are filled by the same scalar calls the
        reference makes, (b) the float additions keep the reference's
        association order ``(dist + ext) + internal``, and (c)
        ``np.argmin``'s first-occurrence tie-break equals the reference's
        strict-``<`` update over the same (predecessor, candidate)
        iteration order, with the start label compared first. Missing
        labels are carried as ``inf`` (the reference simply leaves them out
        of its dict): an all-``inf`` column stays unlabeled, and a finite
        winner can never be preceded by an ``inf`` entry in argmin order.
        """
        hfc = self.hfc
        tables = query_tables(hfc)
        ext = tables.ext
        border_row = tables.border_row
        border_list = tables.border_list
        code_of = tables.border_code
        d_border = tables.d_border
        nb = len(border_list)

        # per finalized slot: candidates, label costs (inf = unlabeled),
        # entry-border codes (-1 = None), parent pointers (slot, index)
        info: Dict[
            SlotId,
            Tuple[List[ClusterId], np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        ] = {}
        source_slots = set(sg.source_slots())
        for slot in sg.topological_order():
            cand = candidates[slot]
            n = len(cand)
            if n == 0:
                info[slot] = (
                    cand,
                    np.empty(0, dtype=float),
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                )
                continue
            cand_arr = np.asarray(cand, dtype=np.int64)
            if slot in source_slots:
                init_cost = np.empty(n, dtype=float)
                init_ent = np.empty(n, dtype=np.int64)
                for j, cj in enumerate(cand):
                    cost, ent = self._start(cj, cs, with_internal)
                    init_cost[j] = cost
                    init_ent[j] = -1 if ent is None else code_of[ent]
            else:
                init_cost = np.full(n, np.inf)
                init_ent = np.full(n, -1, dtype=np.int64)

            pred_cluster: List[np.ndarray] = []
            pred_cost: List[np.ndarray] = []
            pred_entry: List[np.ndarray] = []
            pred_slot: List[np.ndarray] = []
            pred_index: List[np.ndarray] = []
            for pred in sg.predecessors(slot):
                pcand, pdist, pent, _, _ = info[pred]
                m = len(pcand)
                if m == 0:
                    continue
                pred_cluster.append(np.asarray(pcand, dtype=np.int64))
                pred_cost.append(pdist)
                pred_entry.append(pent)
                pred_slot.append(np.full(m, pred, dtype=np.int64))
                pred_index.append(np.arange(m, dtype=np.int64))

            if pred_cluster:
                ci_arr = np.concatenate(pred_cluster)
                d_arr = np.concatenate(pred_cost)
                e_arr = np.concatenate(pred_entry)
                ps_arr = np.concatenate(pred_slot)
                pi_arr = np.concatenate(pred_index)

                same = ci_arr[:, None] == cand_arr[None, :]
                cost_diff = d_arr[:, None] + ext[ci_arr[:, None], cand_arr[None, :]]
                if with_internal and nb:
                    # the back-tracking step, batched: from the border each
                    # label entered through to the exit border toward cj
                    exit_codes = border_row[ci_arr[:, None], cand_arr[None, :]]
                    safe_entry = np.where(e_arr < 0, 0, e_arr)
                    segments = d_border[safe_entry[:, None], exit_codes]
                    cost_diff = cost_diff + np.where(
                        (e_arr[:, None] < 0) | (e_arr[:, None] == exit_codes),
                        0.0,
                        segments,
                    )
                costs = np.where(same, d_arr[:, None], cost_diff)
                entries = np.where(
                    same, e_arr[:, None], border_row[cand_arr[None, :], ci_arr[:, None]]
                )
                combined = np.vstack([init_cost[None, :], costs])
                win = np.argmin(combined, axis=0)
                cols = np.arange(n)
                dist_arr = combined[win, cols]
                relaxed = win > 0
                row = np.where(relaxed, win - 1, 0)
                ent_arr = np.where(relaxed, entries[row, cols], init_ent)
                pslot_arr = np.where(relaxed, ps_arr[row], -1)
                pidx_arr = np.where(relaxed, pi_arr[row], -1)
            else:
                dist_arr = init_cost
                ent_arr = init_ent
                pslot_arr = np.full(n, -1, dtype=np.int64)
                pidx_arr = np.full(n, -1, dtype=np.int64)
            info[slot] = (cand, dist_arr, ent_arr, pslot_arr, pidx_arr)

        # the sink scan stays scalar: it needs exact per-destination
        # distances the tables deliberately do not hold
        best_key: Optional[Tuple[SlotId, int]] = None
        best_total = float("inf")
        for slot in sg.sink_slots():
            cand, dist_arr, ent_arr, _, _ = info[slot]
            for j, ci in enumerate(cand):
                cost = dist_arr[j]
                if not math.isfinite(cost):
                    continue
                code = int(ent_arr[j])
                ent = None if code < 0 else border_list[code]
                total = cost + self._tail(
                    ci, ent, cd, request.destination_proxy, with_internal
                )
                if total < best_total:
                    best_total = total
                    best_key = (slot, j)
        if best_key is None or best_total == float("inf"):
            raise NoFeasiblePathError(
                "no cluster-level configuration satisfies the request"
            )
        assignment: List[Tuple[SlotId, ClusterId]] = []
        slot, j = best_key
        while True:
            cand, _, _, pslot_arr, pidx_arr = info[slot]
            assignment.append((slot, cand[j]))
            parent_slot = int(pslot_arr[j])
            if parent_slot < 0:
                break
            slot, j = parent_slot, int(pidx_arr[j])
        assignment.reverse()
        return float(best_total), assignment

    # exact DP over (slot, cluster, entry border) -------------------------------

    def _solve_exact(
        self,
        request: ServiceRequest,
        sg: ServiceGraph,
        candidates: Dict[SlotId, List[ClusterId]],
        cs: ClusterId,
        cd: ClusterId,
    ) -> Tuple[float, List[Tuple[SlotId, ClusterId]]]:
        hfc = self.hfc
        State = Tuple[SlotId, ClusterId, _Entry]
        dist: Dict[State, float] = {}
        parent: Dict[State, Optional[State]] = {}
        # (slot, cluster) -> its states in first-insertion order: replaces
        # the O(|states|) full-dict scan per (pred, ci) pair; the list order
        # equals the dict-comprehension order the scan produced, so
        # tie-breaking is unchanged
        states_by: Dict[Tuple[SlotId, ClusterId], List[State]] = {}

        def _relax(state: State, cost: float, origin: Optional[State]) -> None:
            known = state in dist
            if not known or cost < dist[state]:
                if not known:
                    states_by.setdefault((state[0], state[1]), []).append(state)
                dist[state] = cost
                parent[state] = origin

        source_slots = set(sg.source_slots())
        for slot in sg.topological_order():
            for cj in candidates[slot]:
                if slot in source_slots:
                    cost, ent = self._start(cj, cs, True)
                    _relax((slot, cj, ent), cost, None)
                for pred in sg.predecessors(slot):
                    for ci in candidates[pred]:
                        for pstate in tuple(states_by.get((pred, ci), ())):
                            _, _, ent_i = pstate
                            if ci == cj:
                                cost = dist[pstate]
                                state = (slot, cj, ent_i)
                            else:
                                cost = (
                                    dist[pstate]
                                    + self._internal(ent_i, hfc.border(ci, cj))
                                    + hfc.external_estimate(ci, cj)
                                )
                                state = (slot, cj, hfc.border(cj, ci))
                            _relax(state, cost, pstate)

        best_state: Optional[State] = None
        best_total = float("inf")
        for slot in sg.sink_slots():
            for state, cost in dist.items():
                if state[0] != slot:
                    continue
                total = cost + self._tail(
                    state[1], state[2], cd, request.destination_proxy, True
                )
                if total < best_total:
                    best_total = total
                    best_state = state
        if best_state is None or best_total == float("inf"):
            raise NoFeasiblePathError(
                "no cluster-level configuration satisfies the request"
            )
        assignment: List[Tuple[SlotId, ClusterId]] = []
        node: Optional[State] = best_state
        while node is not None:
            assignment.append((node[0], node[1]))
            node = parent[node]
        assignment.reverse()
        return best_total, assignment

    # -- step 3: divide ---------------------------------------------------------

    def dissect(
        self, request: ServiceRequest, csp: ClusterServicePath
    ) -> List[ChildRequest]:
        """Split the request along the CSP into per-cluster child requests."""
        hfc = self.hfc
        sg = request.service_graph
        runs: List[Tuple[ClusterId, List[SlotId]]] = []
        for slot, cluster in csp.assignment:
            if runs and runs[-1][0] == cluster:
                runs[-1][1].append(slot)
            else:
                runs.append((cluster, [slot]))
        if not runs or runs[0][0] != csp.source_cluster:
            runs.insert(0, (csp.source_cluster, []))
        if runs[-1][0] != csp.destination_cluster:
            runs.append((csp.destination_cluster, []))

        children: List[ChildRequest] = []
        for k, (cluster, slots) in enumerate(runs):
            source = (
                request.source_proxy
                if k == 0
                else hfc.border(cluster, runs[k - 1][0])
            )
            destination = (
                request.destination_proxy
                if k == len(runs) - 1
                else hfc.border(cluster, runs[k + 1][0])
            )
            children.append(
                ChildRequest(
                    cluster=cluster,
                    slots=tuple(slots),
                    services=tuple(sg.service_of(s) for s in slots),
                    source_proxy=source,
                    destination_proxy=destination,
                )
            )
        return children

    # -- step 4: conquer -----------------------------------------------------------

    def solve_child(
        self, request: ServiceRequest, child: ChildRequest
    ) -> ServicePath:
        """Optimal intra-cluster resolution of one child request ([11] flat).

        An empty child (no services) degenerates to the direct intra-cluster
        link between its endpoints.
        """
        if not child.slots:
            hops = merge_consecutive_hops(
                [Hop(proxy=child.source_proxy), Hop(proxy=child.destination_proxy)]
            )
            return ServicePath(hops=tuple(hops))
        sg = request.service_graph
        # Preserve original slot ids so the composed path validates against
        # the original service graph.
        sub_sg = ServiceGraph(
            services={slot: sg.service_of(slot) for slot in child.slots},
            edges=frozenset(zip(child.slots, child.slots[1:])),
        )
        members = set(self.hfc.members(child.cluster))
        router = FlatRouter(
            self.hfc.overlay,
            self._provider,
            candidate_filter=members.__contains__,
            use_numpy=self.use_numpy,
            name=f"intra-cluster-{child.cluster}",
        )
        sub_request = ServiceRequest(
            source_proxy=child.source_proxy,
            service_graph=sub_sg,
            destination_proxy=child.destination_proxy,
        )
        try:
            return router.route(sub_request)
        except NoFeasiblePathError:
            raise NoFeasiblePathError(
                f"cluster {child.cluster} cannot serve child request "
                f"{child.services} (stale aggregate state?)"
            ) from None

    def compose(
        self, request: ServiceRequest, child_paths: Sequence[ServicePath]
    ) -> ServicePath:
        """Concatenate child paths into the final service path."""
        hops: List[Hop] = []
        for child_path in child_paths:
            hops.extend(child_path.hops)
        merged = merge_consecutive_hops(hops)
        if not merged:
            raise RoutingError("composition produced an empty path")
        return ServicePath(hops=tuple(merged))
