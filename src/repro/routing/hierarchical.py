"""Hierarchical service-path finding (paper Section 5).

The destination proxy resolves a request top-down:

1. **map**: from its aggregate table SCT_C it finds, per service slot, the
   *clusters* offering the service, and builds a cluster-level service DAG;
2. **apply shortest-paths**: a modified DAG-shortest-paths run returns the
   Cluster-level Service Path (CSP). The modification is the paper's
   *back-tracking* step: besides external border-link lengths, the
   relaxation accounts for internal border-to-border segments estimated
   from the globally known border coordinates (and, inside the destination
   proxy's own cluster, exact member coordinates);
3. **divide**: the CSP is dissected into child requests — maximal runs of
   consecutive services mapped into the same cluster; a child's endpoints
   are the entry/exit border proxies (original endpoints at the ends);
4. **conquer**: each cluster solves its child optimally with the flat
   algorithm restricted to its members and full local state; the child
   paths are composed into the final concrete service path.

Three variants of step 2 are provided (`method=`):

* ``"backtrack"`` (default, the paper's): labels carry the border through
  which the cluster was entered, found by back-tracking the chosen
  predecessor, and internal segments are added during relaxation;
* ``"exact"``: dynamic programming over (slot, cluster, entry-border) states
  — the imprecision-free version of the same cost model (ablation);
* ``"external"``: unmodified DAG-shortest-paths on external link lengths
  only — the naive baseline the paper's example argues against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.overlay.hfc import HFCTopology
from repro.overlay.network import ProxyId
from repro.routing.flat import FlatRouter, _merge_consecutive
from repro.routing.path import Hop, ServicePath
from repro.routing.providers import CoordinateProvider
from repro.services.catalog import ServiceName
from repro.services.graph import ServiceGraph, SlotId
from repro.services.placement import aggregate_capability
from repro.services.request import ServiceRequest
from repro.telemetry import Telemetry, get_telemetry
from repro.util.errors import NoFeasiblePathError, RoutingError

ClusterId = int
#: a label key at the cluster level
_Entry = Optional[ProxyId]

METHODS = ("backtrack", "exact", "external")


@dataclass(frozen=True)
class ClusterServicePath:
    """The CSP: which cluster serves each slot, plus the estimated bound."""

    assignment: Tuple[Tuple[SlotId, ClusterId], ...]
    source_cluster: ClusterId
    destination_cluster: ClusterId
    estimated_cost: float

    def cluster_sequence(self) -> List[ClusterId]:
        """Clusters in path order with consecutive duplicates collapsed."""
        seq: List[ClusterId] = []
        for _, cluster in self.assignment:
            if not seq or seq[-1] != cluster:
                seq.append(cluster)
        return seq


@dataclass(frozen=True)
class ChildRequest:
    """A dissected piece of the original request, solvable inside one cluster.

    ``slots`` may be empty: the cluster then only relays from
    *source_proxy* to *destination_proxy* (e.g. the source's own cluster
    when no service is mapped there).
    """

    cluster: ClusterId
    slots: Tuple[SlotId, ...]
    services: Tuple[ServiceName, ...]
    source_proxy: ProxyId
    destination_proxy: ProxyId


@dataclass
class HierarchicalResult:
    """Everything produced while resolving one request hierarchically."""

    path: ServicePath
    csp: ClusterServicePath
    child_requests: List[ChildRequest]
    child_paths: List[ServicePath]


class HierarchicalRouter:
    """Divide-and-conquer service routing over an HFC topology."""

    #: sentinel: the router has never synchronised with its feed
    _UNSYNCED = object()

    # class-level defaults so partially wired routers (tests construct
    # them field-by-field around __init__) behave as feed-less
    capability_feed = None
    _feed_version: object = _UNSYNCED

    def __init__(
        self,
        hfc: HFCTopology,
        *,
        method: str = "backtrack",
        cluster_capabilities: Optional[Dict[ClusterId, FrozenSet[ServiceName]]] = None,
        use_numpy: bool = True,
        telemetry: Optional[Telemetry] = None,
        capability_feed=None,
    ) -> None:
        """
        Args:
            hfc: the HFC topology (clusters, borders, coordinates).
            method: CSP computation variant; one of ``backtrack``, ``exact``,
                ``external``.
            cluster_capabilities: SCT_C contents; defaults to the exact
                aggregation of the current placement (a converged state
                protocol). Pass protocol-produced tables to study staleness.
            use_numpy: solver choice for the intra-cluster step.
            telemetry: observability scope; defaults to the process-wide
                one (every resolution opens a ``route`` span tree and
                bumps the request counters).
            capability_feed: an optional versioned SCT_C source (anything
                with ``.version`` and ``.capabilities()``, e.g.
                :meth:`repro.state.protocol.StateDistributionProtocol.capability_feed`
                or :class:`repro.core.versioning.MutableCapabilityFeed`).
                When bound, the router re-pulls the view whenever the feed
                version moves — it supersedes *cluster_capabilities*.
        """
        if method not in METHODS:
            raise RoutingError(f"method must be one of {METHODS}, got {method!r}")
        self.hfc = hfc
        self.method = method
        self.use_numpy = use_numpy
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.capability_feed = capability_feed
        self._feed_version: object = self._UNSYNCED
        if cluster_capabilities is None and capability_feed is None:
            cluster_capabilities = {
                cid: aggregate_capability(hfc.overlay.placement, hfc.members(cid))
                for cid in range(hfc.cluster_count)
            }
        self.cluster_capabilities = cluster_capabilities or {}
        self._provider = CoordinateProvider(hfc.space)

    # -- versioned capability view ---------------------------------------------

    def refresh_capabilities(self) -> bool:
        """Synchronise SCT_C with the bound feed; True if the view changed.

        No-op without a feed or when the feed version is unchanged since
        the last sync. On a change, :meth:`_capabilities_changed` runs so
        subclasses can drop derived state (the CSP cache) — callers never
        need to guess when to invalidate.
        """
        feed = self.capability_feed
        if feed is None:
            return False
        version = feed.version
        if version == self._feed_version:
            return False
        first = self._feed_version is self._UNSYNCED
        self.cluster_capabilities = dict(feed.capabilities())
        self._feed_version = version
        if not first:
            self._capabilities_changed()
        return True

    def _capabilities_changed(self) -> None:
        """Hook: the capability view was replaced (subclasses drop caches)."""

    # -- public API -----------------------------------------------------------

    def route(self, request: ServiceRequest) -> ServicePath:
        """Resolve *request* and return the final composed service path."""
        return self.route_detailed(request).path

    def route_detailed(self, request: ServiceRequest) -> HierarchicalResult:
        """Resolve *request*, keeping the CSP and the child decomposition."""
        tracer = self.telemetry.tracer
        registry = self.telemetry.registry
        with tracer.span("route", router="hierarchical", method=self.method):
            try:
                with tracer.span("route.csp"):
                    csp = self.cluster_level_path(request)
                with tracer.span("route.dissect"):
                    children = self.dissect(request, csp)
                with tracer.span("route.conquer", children=len(children)):
                    child_paths = [
                        self.solve_child(request, child) for child in children
                    ]
                with tracer.span("route.compose"):
                    path = self.compose(request, child_paths)
            except NoFeasiblePathError:
                registry.counter(
                    "routing.requests", router="hierarchical", outcome="infeasible"
                ).inc()
                raise
        registry.counter(
            "routing.requests", router="hierarchical", outcome="ok"
        ).inc()
        return HierarchicalResult(
            path=path, csp=csp, child_requests=children, child_paths=child_paths
        )

    # -- step 1+2: cluster-level service DAG -----------------------------------

    def cluster_candidates(self, sg: ServiceGraph) -> Dict[SlotId, List[ClusterId]]:
        """Clusters able to fill each slot, per SCT_C (the *map* step)."""
        result: Dict[SlotId, List[ClusterId]] = {}
        for slot in sg.slots():
            service = sg.service_of(slot)
            result[slot] = [
                cid
                for cid in range(self.hfc.cluster_count)
                if service in self.cluster_capabilities.get(cid, frozenset())
            ]
        return result

    def cluster_level_path(self, request: ServiceRequest) -> ClusterServicePath:
        """Compute the CSP with the configured method."""
        self.refresh_capabilities()
        hfc = self.hfc
        cs = hfc.cluster_of(request.source_proxy)
        cd = hfc.cluster_of(request.destination_proxy)
        sg = request.service_graph
        candidates = self.cluster_candidates(sg)
        if any(not c for c in candidates.values()) and not sg.is_linear:
            # Non-linear SGs may route around empty slots; linear ones cannot.
            pass
        if sg.is_linear and any(not candidates[s] for s in sg.slots()):
            missing = [
                sg.service_of(s) for s in sg.slots() if not candidates[s]
            ]
            raise NoFeasiblePathError(
                f"services unavailable in every cluster: {missing}"
            )
        if self.method == "exact":
            cost, assignment = self._solve_exact(request, sg, candidates, cs, cd)
        else:
            cost, assignment = self._solve_label(
                request, sg, candidates, cs, cd, with_internal=self.method == "backtrack"
            )
        return ClusterServicePath(
            assignment=tuple(assignment),
            source_cluster=cs,
            destination_cluster=cd,
            estimated_cost=cost,
        )

    # internal-distance helpers ------------------------------------------------

    def _internal(self, entry: _Entry, exit_border: ProxyId) -> float:
        """Estimated in-cluster segment from the entry border to the exit
        border; zero when unknown (source cluster) or when they coincide."""
        if entry is None or entry == exit_border:
            return 0.0
        return self.hfc.space.distance(entry, exit_border)

    def _tail(
        self, cluster: ClusterId, entry: _Entry, cd: ClusterId, pd: ProxyId,
        with_internal: bool,
    ) -> float:
        """Bound on the remaining distance from the last service cluster to pd."""
        hfc = self.hfc
        if cluster == cd:
            if not with_internal or entry is None:
                return 0.0
            return hfc.space.distance(entry, pd)
        cost = hfc.external_estimate(cluster, cd)
        if with_internal:
            cost += self._internal(entry, hfc.border(cluster, cd))
            cost += hfc.space.distance(hfc.border(cd, cluster), pd)
        return cost

    def _start(
        self, cluster: ClusterId, cs: ClusterId, with_internal: bool
    ) -> Tuple[float, _Entry]:
        """Cost and entry border for reaching the first service cluster."""
        if cluster == cs:
            return 0.0, None
        # pd cannot estimate the segment from ps to the exit border of cs
        # (it has no coordinates for ps), so only the external link counts.
        del with_internal  # the source-side internal segment is unknown either way
        return (
            self.hfc.external_estimate(cs, cluster),
            self.hfc.border(cluster, cs),
        )

    # label-setting with optional back-tracking --------------------------------

    def _solve_label(
        self,
        request: ServiceRequest,
        sg: ServiceGraph,
        candidates: Dict[SlotId, List[ClusterId]],
        cs: ClusterId,
        cd: ClusterId,
        *,
        with_internal: bool,
    ) -> Tuple[float, List[Tuple[SlotId, ClusterId]]]:
        hfc = self.hfc
        dist: Dict[Tuple[SlotId, ClusterId], float] = {}
        entry: Dict[Tuple[SlotId, ClusterId], _Entry] = {}
        parent: Dict[Tuple[SlotId, ClusterId], Optional[Tuple[SlotId, ClusterId]]] = {}

        source_slots = set(sg.source_slots())
        for slot in sg.topological_order():
            for cj in candidates[slot]:
                key = (slot, cj)
                if slot in source_slots:
                    cost, ent = self._start(cj, cs, with_internal)
                    dist[key] = cost
                    entry[key] = ent
                    parent[key] = None
                for pred in sg.predecessors(slot):
                    for ci in candidates[pred]:
                        pkey = (pred, ci)
                        if pkey not in dist:
                            continue
                        if ci == cj:
                            cost = dist[pkey]
                            ent = entry[pkey]
                        else:
                            cost = dist[pkey] + hfc.external_estimate(ci, cj)
                            if with_internal:
                                # The back-tracking step: look up through which
                                # border this label entered ci, and charge the
                                # internal segment to ci's exit border.
                                cost += self._internal(
                                    entry[pkey], hfc.border(ci, cj)
                                )
                            ent = hfc.border(cj, ci)
                        if key not in dist or cost < dist[key]:
                            dist[key] = cost
                            entry[key] = ent
                            parent[key] = pkey

        best_key: Optional[Tuple[SlotId, ClusterId]] = None
        best_total = float("inf")
        for slot in sg.sink_slots():
            for ci in candidates[slot]:
                key = (slot, ci)
                if key not in dist:
                    continue
                total = dist[key] + self._tail(
                    ci, entry[key], cd, request.destination_proxy, with_internal
                )
                if total < best_total:
                    best_total = total
                    best_key = key
        if best_key is None or best_total == float("inf"):
            raise NoFeasiblePathError(
                "no cluster-level configuration satisfies the request"
            )
        assignment: List[Tuple[SlotId, ClusterId]] = []
        node: Optional[Tuple[SlotId, ClusterId]] = best_key
        while node is not None:
            assignment.append(node)
            node = parent[node]
        assignment.reverse()
        return best_total, assignment

    # exact DP over (slot, cluster, entry border) -------------------------------

    def _solve_exact(
        self,
        request: ServiceRequest,
        sg: ServiceGraph,
        candidates: Dict[SlotId, List[ClusterId]],
        cs: ClusterId,
        cd: ClusterId,
    ) -> Tuple[float, List[Tuple[SlotId, ClusterId]]]:
        hfc = self.hfc
        State = Tuple[SlotId, ClusterId, _Entry]
        dist: Dict[State, float] = {}
        parent: Dict[State, Optional[State]] = {}

        source_slots = set(sg.source_slots())
        for slot in sg.topological_order():
            for cj in candidates[slot]:
                if slot in source_slots:
                    cost, ent = self._start(cj, cs, True)
                    state = (slot, cj, ent)
                    if state not in dist or cost < dist[state]:
                        dist[state] = cost
                        parent[state] = None
                for pred in sg.predecessors(slot):
                    for ci in candidates[pred]:
                        for pstate in [
                            s for s in dist if s[0] == pred and s[1] == ci
                        ]:
                            _, _, ent_i = pstate
                            if ci == cj:
                                cost = dist[pstate]
                                state = (slot, cj, ent_i)
                            else:
                                cost = (
                                    dist[pstate]
                                    + self._internal(ent_i, hfc.border(ci, cj))
                                    + hfc.external_estimate(ci, cj)
                                )
                                state = (slot, cj, hfc.border(cj, ci))
                            if state not in dist or cost < dist[state]:
                                dist[state] = cost
                                parent[state] = pstate

        best_state: Optional[State] = None
        best_total = float("inf")
        for slot in sg.sink_slots():
            for state, cost in dist.items():
                if state[0] != slot:
                    continue
                total = cost + self._tail(
                    state[1], state[2], cd, request.destination_proxy, True
                )
                if total < best_total:
                    best_total = total
                    best_state = state
        if best_state is None or best_total == float("inf"):
            raise NoFeasiblePathError(
                "no cluster-level configuration satisfies the request"
            )
        assignment: List[Tuple[SlotId, ClusterId]] = []
        node: Optional[State] = best_state
        while node is not None:
            assignment.append((node[0], node[1]))
            node = parent[node]
        assignment.reverse()
        return best_total, assignment

    # -- step 3: divide ---------------------------------------------------------

    def dissect(
        self, request: ServiceRequest, csp: ClusterServicePath
    ) -> List[ChildRequest]:
        """Split the request along the CSP into per-cluster child requests."""
        hfc = self.hfc
        sg = request.service_graph
        runs: List[Tuple[ClusterId, List[SlotId]]] = []
        for slot, cluster in csp.assignment:
            if runs and runs[-1][0] == cluster:
                runs[-1][1].append(slot)
            else:
                runs.append((cluster, [slot]))
        if not runs or runs[0][0] != csp.source_cluster:
            runs.insert(0, (csp.source_cluster, []))
        if runs[-1][0] != csp.destination_cluster:
            runs.append((csp.destination_cluster, []))

        children: List[ChildRequest] = []
        for k, (cluster, slots) in enumerate(runs):
            source = (
                request.source_proxy
                if k == 0
                else hfc.border(cluster, runs[k - 1][0])
            )
            destination = (
                request.destination_proxy
                if k == len(runs) - 1
                else hfc.border(cluster, runs[k + 1][0])
            )
            children.append(
                ChildRequest(
                    cluster=cluster,
                    slots=tuple(slots),
                    services=tuple(sg.service_of(s) for s in slots),
                    source_proxy=source,
                    destination_proxy=destination,
                )
            )
        return children

    # -- step 4: conquer -----------------------------------------------------------

    def solve_child(
        self, request: ServiceRequest, child: ChildRequest
    ) -> ServicePath:
        """Optimal intra-cluster resolution of one child request ([11] flat).

        An empty child (no services) degenerates to the direct intra-cluster
        link between its endpoints.
        """
        if not child.slots:
            hops = _merge_consecutive(
                [Hop(proxy=child.source_proxy), Hop(proxy=child.destination_proxy)]
            )
            return ServicePath(hops=tuple(hops))
        sg = request.service_graph
        # Preserve original slot ids so the composed path validates against
        # the original service graph.
        sub_sg = ServiceGraph(
            services={slot: sg.service_of(slot) for slot in child.slots},
            edges=frozenset(zip(child.slots, child.slots[1:])),
        )
        members = set(self.hfc.members(child.cluster))
        router = FlatRouter(
            self.hfc.overlay,
            self._provider,
            candidate_filter=members.__contains__,
            use_numpy=self.use_numpy,
            name=f"intra-cluster-{child.cluster}",
        )
        sub_request = ServiceRequest(
            source_proxy=child.source_proxy,
            service_graph=sub_sg,
            destination_proxy=child.destination_proxy,
        )
        try:
            return router.route(sub_request)
        except NoFeasiblePathError:
            raise NoFeasiblePathError(
                f"cluster {child.cluster} cannot serve child request "
                f"{child.services} (stale aggregate state?)"
            ) from None

    def compose(
        self, request: ServiceRequest, child_paths: Sequence[ServicePath]
    ) -> ServicePath:
        """Concatenate child paths into the final service path."""
        hops: List[Hop] = []
        for child_path in child_paths:
            hops.extend(child_path.hops)
        merged = _merge_consecutive(hops)
        if not merged:
            raise RoutingError("composition produced an empty path")
        return ServicePath(hops=tuple(merged))
