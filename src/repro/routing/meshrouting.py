"""Routing over the single-level mesh baseline (paper Section 6.2).

A mesh router has global state (the full mesh topology with measured link
delays), so it finds *optimal-within-the-mesh* service paths: instance
distances are mesh shortest-path distances, and chosen hops expand into the
relay proxies along those mesh routes — the paper's core argument for why
statically configured meshes lose to HFC: runtime-defined neighbouring
services end up several overlay hops apart.

Also here: :func:`hfc_full_state_router`, the "HFC without aggregation"
comparison case of Fig. 10 — same HFC topology, but every proxy knows the
whole system, so a single node computes the entire concrete path over the
HFC overlay graph.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.graph.graph import Graph
from repro.graph.shortest_paths import dijkstra, reconstruct_path
from repro.overlay.hfc import HFCTopology
from repro.overlay.network import OverlayNetwork, ProxyId
from repro.routing.flat import FlatRouter
from repro.routing.providers import MatrixProvider
from repro.util.errors import RoutingError


class MeshRouter(FlatRouter):
    """Optimal service routing over an overlay mesh.

    Precomputes all-pairs mesh shortest paths (distances + parent tables) at
    construction, then answers requests through the generic flat solver with
    relay expansion along mesh routes.
    """

    def __init__(self, overlay: OverlayNetwork, mesh: Graph, **kwargs) -> None:
        for proxy in overlay.proxies:
            if proxy not in mesh:
                raise RoutingError(f"proxy {proxy!r} missing from mesh")
        self.mesh = mesh
        index = {p: i for i, p in enumerate(overlay.proxies)}
        n = len(overlay.proxies)
        matrix = np.full((n, n), np.inf)
        self._parents: Dict[ProxyId, Dict[ProxyId, ProxyId]] = {}
        for proxy in overlay.proxies:
            dist, parent = dijkstra(mesh, proxy)
            self._parents[proxy] = parent
            i = index[proxy]
            for other, d in dist.items():
                if other in index:
                    matrix[i, index[other]] = d
        if not np.isfinite(matrix).all():
            raise RoutingError("mesh is disconnected; cannot build mesh router")
        kwargs.setdefault("name", "mesh")
        super().__init__(
            overlay,
            MatrixProvider(index, matrix),
            expander=self._expand,
            **kwargs,
        )

    def _expand(self, u: ProxyId, v: ProxyId) -> List[ProxyId]:
        """The mesh relay chain from *u* to *v* (endpoints included)."""
        if u == v:
            return [u]
        return reconstruct_path(self._parents[u], u, v)

    def mesh_distance(self, u: ProxyId, v: ProxyId) -> float:
        """Shortest mesh distance between two proxies."""
        return self.provider.pair(u, v)


def hfc_full_state_router(hfc: HFCTopology, **kwargs) -> FlatRouter:
    """The "HFC without aggregation" router (Fig. 10's third bar).

    Every proxy holds full state — all coordinates and all service
    capabilities — so one node computes the optimal concrete path over the
    HFC overlay graph directly. Routing distances are coordinate estimates
    along the best HFC route (direct intra-cluster links, border links across
    clusters); chosen hops expand through the border relays actually used.
    """
    overlay = hfc.overlay
    route_matrix, _ = hfc.routing_matrices()
    index = {p: i for i, p in enumerate(overlay.proxies)}
    kwargs.setdefault("name", "hfc-full-state")
    return FlatRouter(
        overlay,
        MatrixProvider(index, route_matrix),
        expander=hfc.expand_hop,
        **kwargs,
    )
