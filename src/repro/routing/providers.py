"""Distance providers: the pluggable metric behind the service-DAG solver.

Every routing strategy is "service-DAG shortest paths over *some* distance",
and the distances differ per strategy:

* flat full-state routing over coordinates → :class:`CoordinateProvider`;
* an oracle upper bound over true delays → :class:`TrueDelayProvider`;
* mesh routing over mesh shortest-path distances, or HFC full-state routing
  over HFC-overlay distances → :class:`MatrixProvider`.

A provider answers single-pair queries and (for the vectorised solver) dense
rectangular blocks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.coords.space import CoordinateSpace
from repro.overlay.network import OverlayNetwork, ProxyId
from repro.util.errors import RoutingError


class _BlockMemo:
    """A small LRU cache of dense distance blocks.

    Query workloads ask for the same blocks over and over (every child
    request inside a cluster shares the same per-service candidate lists),
    so rebuilding the arrays per call dominates the solver itself. The memo
    is guarded by a *token*: when the underlying data object is replaced
    (a new coordinate space, a rebuilt delay matrix), the token no longer
    matches and the memo drops itself. Cached blocks are shared — callers
    must treat them as read-only, which every solver in the repo does (the
    vectorised DAG solver only ever reads blocks).
    """

    __slots__ = ("capacity", "_token", "_blocks")

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._token: object = None
        self._blocks: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()

    def lookup(self, token: object, key: Tuple) -> Optional[np.ndarray]:
        if token is not self._token:
            self._token = token
            self._blocks.clear()
            return None
        block = self._blocks.get(key)
        if block is not None:
            self._blocks.move_to_end(key)
        return block

    def store(self, key: Tuple, block: np.ndarray) -> None:
        self._blocks[key] = block
        if len(self._blocks) > self.capacity:
            self._blocks.popitem(last=False)

    def __len__(self) -> int:
        return len(self._blocks)


class DistanceProvider(ABC):
    """Distance oracle between overlay proxies."""

    @abstractmethod
    def pair(self, u: ProxyId, v: ProxyId) -> float:
        """Distance from *u* to *v*."""

    @abstractmethod
    def block(self, us: Sequence[ProxyId], vs: Sequence[ProxyId]) -> np.ndarray:
        """Dense ``(len(us), len(vs))`` distance block."""


class CoordinateProvider(DistanceProvider):
    """Geometric distances in a coordinate space (estimate-based routing).

    Dense blocks are memoized per (us, vs) pair, keyed on the (immutable)
    space object identity — repeat queries for the same candidate lists
    reuse the array instead of re-stacking and re-reducing coordinates.
    ``memoize=False`` restores the always-rebuild behaviour (used by the
    benchmark's scalar baseline).
    """

    def __init__(self, space: CoordinateSpace, *, memoize: bool = True) -> None:
        self.space = space
        self._memo = _BlockMemo() if memoize else None

    def pair(self, u: ProxyId, v: ProxyId) -> float:
        return self.space.distance(u, v)

    def block(self, us: Sequence[ProxyId], vs: Sequence[ProxyId]) -> np.ndarray:
        memo = self._memo
        if memo is not None:
            key = (tuple(us), tuple(vs))
            cached = memo.lookup(self.space, key)
            if cached is not None:
                return cached
        pts_u = self.space.array(us)
        pts_v = self.space.array(vs)
        diff = pts_u[:, None, :] - pts_v[None, :, :]
        block = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        if memo is not None:
            memo.store(key, block)
        return block


class TrueDelayProvider(DistanceProvider):
    """Ground-truth physical delays (an oracle router for bounds/tests).

    The overlay's delay matrix is already cached by the overlay itself;
    what used to be rebuilt per call are the proxy→row index lists and the
    gathered block. Both are memoized here, guarded by the identity of the
    matrix object so an overlay that re-materialises its matrix drops the
    memo automatically.
    """

    def __init__(self, overlay: OverlayNetwork, *, memoize: bool = True) -> None:
        self.overlay = overlay
        self._memo = _BlockMemo() if memoize else None

    def pair(self, u: ProxyId, v: ProxyId) -> float:
        return self.overlay.true_delay(u, v)

    def block(self, us: Sequence[ProxyId], vs: Sequence[ProxyId]) -> np.ndarray:
        matrix = self.overlay.true_delay_matrix()
        memo = self._memo
        if memo is not None:
            key = (tuple(us), tuple(vs))
            cached = memo.lookup(matrix, key)
            if cached is not None:
                return cached
        ui = [self.overlay.index_of(u) for u in us]
        vi = [self.overlay.index_of(v) for v in vs]
        block = matrix[np.ix_(ui, vi)]
        if memo is not None:
            memo.store(key, block)
        return block


class MatrixProvider(DistanceProvider):
    """Distances read from a precomputed matrix (mesh APSP, HFC overlay)."""

    def __init__(self, index: Dict[ProxyId, int], matrix: np.ndarray) -> None:
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise RoutingError(f"matrix must be square, got shape {matrix.shape}")
        self.index = index
        self.matrix = matrix

    def _i(self, p: ProxyId) -> int:
        try:
            return self.index[p]
        except KeyError:
            raise RoutingError(f"proxy {p!r} not covered by this provider") from None

    def pair(self, u: ProxyId, v: ProxyId) -> float:
        return float(self.matrix[self._i(u), self._i(v)])

    def block(self, us: Sequence[ProxyId], vs: Sequence[ProxyId]) -> np.ndarray:
        ui = [self._i(u) for u in us]
        vi = [self._i(v) for v in vs]
        return self.matrix[np.ix_(ui, vi)]
