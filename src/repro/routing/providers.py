"""Distance providers: the pluggable metric behind the service-DAG solver.

Every routing strategy is "service-DAG shortest paths over *some* distance",
and the distances differ per strategy:

* flat full-state routing over coordinates → :class:`CoordinateProvider`;
* an oracle upper bound over true delays → :class:`TrueDelayProvider`;
* mesh routing over mesh shortest-path distances, or HFC full-state routing
  over HFC-overlay distances → :class:`MatrixProvider`.

A provider answers single-pair queries and (for the vectorised solver) dense
rectangular blocks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Sequence

import numpy as np

from repro.coords.space import CoordinateSpace
from repro.overlay.network import OverlayNetwork, ProxyId
from repro.util.errors import RoutingError


class DistanceProvider(ABC):
    """Distance oracle between overlay proxies."""

    @abstractmethod
    def pair(self, u: ProxyId, v: ProxyId) -> float:
        """Distance from *u* to *v*."""

    @abstractmethod
    def block(self, us: Sequence[ProxyId], vs: Sequence[ProxyId]) -> np.ndarray:
        """Dense ``(len(us), len(vs))`` distance block."""


class CoordinateProvider(DistanceProvider):
    """Geometric distances in a coordinate space (estimate-based routing)."""

    def __init__(self, space: CoordinateSpace) -> None:
        self.space = space

    def pair(self, u: ProxyId, v: ProxyId) -> float:
        return self.space.distance(u, v)

    def block(self, us: Sequence[ProxyId], vs: Sequence[ProxyId]) -> np.ndarray:
        pts_u = self.space.array(us)
        pts_v = self.space.array(vs)
        diff = pts_u[:, None, :] - pts_v[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


class TrueDelayProvider(DistanceProvider):
    """Ground-truth physical delays (an oracle router for bounds/tests)."""

    def __init__(self, overlay: OverlayNetwork) -> None:
        self.overlay = overlay

    def pair(self, u: ProxyId, v: ProxyId) -> float:
        return self.overlay.true_delay(u, v)

    def block(self, us: Sequence[ProxyId], vs: Sequence[ProxyId]) -> np.ndarray:
        matrix = self.overlay.true_delay_matrix()
        ui = [self.overlay.index_of(u) for u in us]
        vi = [self.overlay.index_of(v) for v in vs]
        return matrix[np.ix_(ui, vi)]


class MatrixProvider(DistanceProvider):
    """Distances read from a precomputed matrix (mesh APSP, HFC overlay)."""

    def __init__(self, index: Dict[ProxyId, int], matrix: np.ndarray) -> None:
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise RoutingError(f"matrix must be square, got shape {matrix.shape}")
        self.index = index
        self.matrix = matrix

    def _i(self, p: ProxyId) -> int:
        try:
            return self.index[p]
        except KeyError:
            raise RoutingError(f"proxy {p!r} not covered by this provider") from None

    def pair(self, u: ProxyId, v: ProxyId) -> float:
        return float(self.matrix[self._i(u), self._i(v)])

    def block(self, us: Sequence[ProxyId], vs: Sequence[ProxyId]) -> np.ndarray:
        ui = [self._i(u) for u in us]
        vi = [self._i(v) for v in vs]
        return self.matrix[np.ix_(ui, vi)]
