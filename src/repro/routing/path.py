"""Concrete service paths and their evaluation.

A concrete service path has the paper's form
``sp = <-/p0, s1/p1, ..., sn/pn, -/p(n+1)>``: a sequence of hops where each
hop maps a service onto a proxy, or maps *no* service (``-/p``) onto a proxy
acting as a pure message relay (mesh intermediaries, border proxies).

Evaluation is uniform across all routing strategies: the **true delay** of a
path is the sum of ground-truth physical delays between consecutive distinct
proxies — strategies route on whatever estimates they maintain, but are
always judged on ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.overlay.network import OverlayNetwork, ProxyId
from repro.services.catalog import ServiceName
from repro.services.request import ServiceRequest
from repro.util.errors import RoutingError


@dataclass(frozen=True)
class Hop:
    """One step of a concrete service path.

    Attributes:
        proxy: the proxy visited.
        service: the service applied at this hop, or ``None`` for a relay
            (the paper's ``-/p`` notation).
        slot: the service-graph slot this hop fills, or ``None`` for relays.
    """

    proxy: ProxyId
    service: Optional[ServiceName] = None
    slot: Optional[int] = None

    def __repr__(self) -> str:
        label = self.service if self.service is not None else "-"
        return f"{label}/{self.proxy}"


@dataclass(frozen=True)
class ServicePath:
    """An ordered sequence of hops from source proxy to destination proxy."""

    hops: Tuple[Hop, ...]

    def __post_init__(self) -> None:
        if len(self.hops) < 1:
            raise RoutingError("a service path needs at least one hop")

    # -- structure ----------------------------------------------------------

    @property
    def source(self) -> ProxyId:
        """First proxy on the path."""
        return self.hops[0].proxy

    @property
    def destination(self) -> ProxyId:
        """Last proxy on the path."""
        return self.hops[-1].proxy

    def proxies(self) -> List[ProxyId]:
        """Proxies in hop order (consecutive duplicates collapsed)."""
        result: List[ProxyId] = []
        for hop in self.hops:
            if not result or result[-1] != hop.proxy:
                result.append(hop.proxy)
        return result

    def service_hops(self) -> List[Hop]:
        """Only the hops that apply a service, in order."""
        return [h for h in self.hops if h.service is not None]

    def relay_count(self) -> int:
        """Number of pure-relay hops (excluding the two endpoints)."""
        return sum(1 for h in self.hops[1:-1] if h.service is None)

    @property
    def overlay_hop_count(self) -> int:
        """Number of overlay links traversed."""
        return len(self.proxies()) - 1

    # -- evaluation -----------------------------------------------------------

    def true_delay(self, overlay: OverlayNetwork) -> float:
        """Ground-truth end-to-end delay of the path (Fig. 10's metric)."""
        proxies = self.proxies()
        return sum(overlay.true_delay(u, v) for u, v in zip(proxies, proxies[1:]))

    def estimated_length(self, overlay: OverlayNetwork) -> float:
        """Coordinate-space length of the path (what estimate-based routing saw)."""
        proxies = self.proxies()
        return sum(
            overlay.coordinate_distance(u, v) for u, v in zip(proxies, proxies[1:])
        )

    def __repr__(self) -> str:
        return "<" + ", ".join(repr(h) for h in self.hops) + ">"


def merge_consecutive_hops(hops: Sequence[Hop]) -> List[Hop]:
    """Drop relay hops that duplicate an adjacent hop on the same proxy."""
    result: List[Hop] = []
    for hop in hops:
        if result and result[-1].proxy == hop.proxy:
            if result[-1].service is None and hop.service is not None:
                result[-1] = hop  # the service hop subsumes the relay
            elif hop.service is None:
                continue  # relay after a service hop on the same proxy
            else:
                result.append(hop)  # two services on the same proxy: keep both
        else:
            result.append(hop)
    return result


def path_from_assignment(
    request: ServiceRequest,
    assignment: Sequence[Tuple[int, ProxyId]],
) -> ServicePath:
    """Build a :class:`ServicePath` from a slot→proxy assignment.

    *assignment* lists ``(slot, proxy)`` pairs along the chosen configuration
    in dependency order; endpoint relay hops are added automatically.
    """
    hops: List[Hop] = [Hop(proxy=request.source_proxy)]
    for slot, proxy in assignment:
        hops.append(
            Hop(proxy=proxy, service=request.service_graph.service_of(slot), slot=slot)
        )
    hops.append(Hop(proxy=request.destination_proxy))
    return ServicePath(hops=tuple(hops))


def validate_path(
    path: ServicePath,
    request: ServiceRequest,
    overlay: OverlayNetwork,
) -> None:
    """Assert that *path* is a valid answer to *request*.

    Checks: endpoints match; every service hop's proxy actually hosts the
    service; and the sequence of filled slots is a feasible configuration of
    the request's service graph. Raises :class:`RoutingError` on violation.
    """
    if path.source != request.source_proxy:
        raise RoutingError(
            f"path starts at {path.source!r}, request at {request.source_proxy!r}"
        )
    if path.destination != request.destination_proxy:
        raise RoutingError(
            f"path ends at {path.destination!r}, "
            f"request at {request.destination_proxy!r}"
        )
    sg = request.service_graph
    slots: List[int] = []
    for hop in path.service_hops():
        if hop.slot is None:
            raise RoutingError(f"service hop {hop!r} carries no slot id")
        expected = sg.service_of(hop.slot)
        if hop.service != expected:
            raise RoutingError(
                f"hop {hop!r} fills slot {hop.slot} but that slot wants {expected!r}"
            )
        if hop.service not in overlay.services_of(hop.proxy):
            raise RoutingError(
                f"proxy {hop.proxy!r} does not host service {hop.service!r}"
            )
        slots.append(hop.slot)
    if not sg.is_configuration(slots):
        raise RoutingError(
            f"slot sequence {slots} is not a feasible configuration of the SG"
        )
