"""Multi-level hierarchy extension: recursive HFC hierarchies and routing.

:mod:`repro.hierarchy.levels` is the level-generic core (any depth);
:mod:`repro.hierarchy.multilevel` keeps the original three-level surface,
its construction now a thin shim over :func:`build_levels` at depth 3.
"""

from repro.hierarchy.levels import (
    HierarchyLevels,
    RecursiveRouter,
    build_levels,
    levels_from_columnar,
)
from repro.hierarchy.multilevel import (
    MultiLevelHFC,
    ThreeLevelRouter,
    build_multilevel,
)

__all__ = [
    "HierarchyLevels",
    "MultiLevelHFC",
    "RecursiveRouter",
    "ThreeLevelRouter",
    "build_levels",
    "build_multilevel",
    "levels_from_columnar",
]
