"""Multi-level hierarchy extension: three-level HFC topologies and routing."""

from repro.hierarchy.multilevel import (
    MultiLevelHFC,
    ThreeLevelRouter,
    build_multilevel,
)

__all__ = ["MultiLevelHFC", "ThreeLevelRouter", "build_multilevel"]
